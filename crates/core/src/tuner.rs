//! The tuning driver.
//!
//! [`Tuner::run`] reproduces the paper's per-program session: measure the
//! default configuration, then repeat *propose → evaluate (in parallel) →
//! learn* until the tuning-time budget is exhausted, and report the best
//! configuration found with its full trial history.
//!
//! Evaluation flows through [`jtune_harness::EvalPipeline`]: with
//! [`TunerOptions::cache`] set, re-proposed configurations are served
//! from the trial cache (and within-batch duplicates run once); with a
//! [`Racing`] policy on the protocol, statistically hopeless candidates
//! are abandoned early. Both features default off, in which case the
//! session is bit-identical to the legacy fixed-repeat pipeline.

use std::collections::HashSet;

use jtune_flags::JvmConfig;
use jtune_harness::{
    Budget, CachePolicy, EvalPipeline, Evaluation, Executor, Protocol, Racing, SessionRecord,
    TrialRecord,
};
use jtune_telemetry::{TelemetryBus, TraceEvent};
use jtune_util::{stats, SimDuration, Xoshiro256pp};

use crate::manipulator::{
    ConfigManipulator, FlatManipulator, HierarchicalManipulator, SubsetManipulator,
};
use crate::techniques::{SearchState, Technique, TechniqueSet};

/// Which configuration-space manipulator the tuner uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ManipulatorKind {
    /// Flag-hierarchy-aware moves (the paper's tuner).
    Hierarchical,
    /// Whole flat space, no dependency knowledge (ablation baseline).
    Flat,
    /// GC + heap flags only (prior-work baseline).
    GcSubset,
}

impl ManipulatorKind {
    /// Stable label for telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            ManipulatorKind::Hierarchical => "hierarchical",
            ManipulatorKind::Flat => "flat",
            ManipulatorKind::GcSubset => "gc-subset",
        }
    }
}

/// Tuner configuration.
///
/// Construct via [`TunerOptions::builder`] for validation at build time,
/// or as a struct literal (legacy style) — in which case invalid values
/// surface as clamps or panics inside [`Tuner::run`].
#[derive(Clone, Debug)]
pub struct TunerOptions {
    /// Tuning-time budget (the paper: 200 minutes).
    pub budget: SimDuration,
    /// Measurement protocol per candidate (racing policy included).
    pub protocol: Protocol,
    /// Parallel evaluation workers.
    pub workers: usize,
    /// Candidates proposed per round (defaults to `workers`).
    pub batch: usize,
    /// Master seed: tuning is fully deterministic given it.
    pub seed: u64,
    /// Search-space manipulator.
    pub manipulator: ManipulatorKind,
    /// Technique name (`"ensemble"` or any of [`TechniqueSet::names`]).
    pub technique: String,
    /// Optional hard cap on evaluations (tests use small caps).
    pub max_evaluations: Option<u64>,
    /// Trial memoization policy; `None` (default) disables the cache and
    /// within-batch duplicate suppression — the legacy byte-stable path.
    pub cache: Option<CachePolicy>,
}

impl Default for TunerOptions {
    fn default() -> Self {
        TunerOptions {
            budget: SimDuration::from_mins(200),
            protocol: Protocol::default(),
            workers: 4,
            batch: 4,
            seed: 0x4a_5455_4e45,
            manipulator: ManipulatorKind::Hierarchical,
            technique: "ensemble".to_string(),
            max_evaluations: None,
            cache: None,
        }
    }
}

impl TunerOptions {
    /// A validating builder (rejects zero batch/workers/repeats, unknown
    /// technique names, and out-of-range cache/racing parameters at
    /// construction instead of deep in [`Tuner::run`]).
    pub fn builder() -> TunerOptionsBuilder {
        TunerOptionsBuilder {
            opts: TunerOptions::default(),
        }
    }

    /// Check every invariant the builder enforces.
    pub fn validate(&self) -> Result<(), OptionsError> {
        if self.batch == 0 {
            return Err(OptionsError::ZeroBatch);
        }
        if self.workers == 0 {
            return Err(OptionsError::ZeroWorkers);
        }
        if self.protocol.repeats == 0 {
            return Err(OptionsError::ZeroRepeats);
        }
        if TechniqueSet::by_name(&self.technique).is_none() {
            return Err(OptionsError::UnknownTechnique(self.technique.clone()));
        }
        if let Some(policy) = self.cache {
            if !(0.0..=1.0).contains(&policy.recharge) {
                return Err(OptionsError::InvalidRecharge(policy.recharge));
            }
        }
        if let Some(racing) = self.protocol.racing {
            if racing.min_repeats == 0 {
                return Err(OptionsError::ZeroMinRepeats);
            }
            if !(racing.alpha > 0.0 && racing.alpha < 1.0) {
                return Err(OptionsError::InvalidAlpha(racing.alpha));
            }
        }
        Ok(())
    }
}

/// A [`TunerOptions`] construction error.
#[derive(Clone, Debug, PartialEq)]
pub enum OptionsError {
    /// `batch` must be at least 1.
    ZeroBatch,
    /// `workers` must be at least 1.
    ZeroWorkers,
    /// The protocol's repeat count must be at least 1.
    ZeroRepeats,
    /// The technique name is not in [`TechniqueSet`].
    UnknownTechnique(String),
    /// The cache re-charge fraction must lie in `[0, 1]`.
    InvalidRecharge(f64),
    /// Racing `min_repeats` must be at least 1.
    ZeroMinRepeats,
    /// Racing `alpha` must lie strictly between 0 and 1.
    InvalidAlpha(f64),
}

impl std::fmt::Display for OptionsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptionsError::ZeroBatch => write!(f, "batch must be at least 1"),
            OptionsError::ZeroWorkers => write!(f, "workers must be at least 1"),
            OptionsError::ZeroRepeats => write!(f, "protocol repeats must be at least 1"),
            OptionsError::UnknownTechnique(name) => {
                write!(f, "unknown technique {name:?} (try \"ensemble\")")
            }
            OptionsError::InvalidRecharge(r) => {
                write!(f, "cache recharge fraction {r} outside [0, 1]")
            }
            OptionsError::ZeroMinRepeats => write!(f, "racing min repeats must be at least 1"),
            OptionsError::InvalidAlpha(a) => {
                write!(f, "racing alpha {a} outside (0, 1)")
            }
        }
    }
}

impl std::error::Error for OptionsError {}

/// Builder for [`TunerOptions`]; see [`TunerOptions::builder`].
#[derive(Clone, Debug)]
pub struct TunerOptionsBuilder {
    opts: TunerOptions,
}

impl TunerOptionsBuilder {
    /// Tuning-time budget.
    pub fn budget(mut self, budget: SimDuration) -> Self {
        self.opts.budget = budget;
        self
    }

    /// Measurement protocol (overwrites any racing policy set earlier).
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.opts.protocol = protocol;
        self
    }

    /// Parallel evaluation workers.
    pub fn workers(mut self, workers: usize) -> Self {
        self.opts.workers = workers;
        self
    }

    /// Candidates proposed per round.
    pub fn batch(mut self, batch: usize) -> Self {
        self.opts.batch = batch;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Search-space manipulator.
    pub fn manipulator(mut self, kind: ManipulatorKind) -> Self {
        self.opts.manipulator = kind;
        self
    }

    /// Technique name (validated at [`TunerOptionsBuilder::build`]).
    pub fn technique(mut self, name: impl Into<String>) -> Self {
        self.opts.technique = name.into();
        self
    }

    /// Hard cap on evaluations.
    pub fn max_evaluations(mut self, cap: u64) -> Self {
        self.opts.max_evaluations = Some(cap);
        self
    }

    /// Enable trial memoization with the given policy.
    pub fn cache(mut self, policy: CachePolicy) -> Self {
        self.opts.cache = Some(policy);
        self
    }

    /// Enable sequential racing with the given policy.
    pub fn racing(mut self, racing: Racing) -> Self {
        self.opts.protocol.racing = Some(racing);
        self
    }

    /// Validate and produce the options.
    pub fn build(self) -> Result<TunerOptions, OptionsError> {
        self.opts.validate()?;
        Ok(self.opts)
    }
}

/// Outcome of one tuning session.
#[derive(Clone, Debug)]
pub struct TuningResult {
    /// Full session record (trials, scores, budget accounting).
    pub session: SessionRecord,
    /// The best configuration found.
    pub best_config: JvmConfig,
}

impl TuningResult {
    /// Improvement over the default, the paper's headline number.
    pub fn improvement_percent(&self) -> f64 {
        self.session.improvement_percent()
    }
}

/// The HotSpot Auto-tuner.
pub struct Tuner {
    opts: TunerOptions,
}

impl Tuner {
    /// Build a tuner.
    pub fn new(opts: TunerOptions) -> Tuner {
        Tuner { opts }
    }

    /// The paper's configuration: hierarchical manipulator, ensemble
    /// search, 200-minute budget.
    pub fn paper_default() -> Tuner {
        Tuner::new(TunerOptions::default())
    }

    fn build_manipulator(&self) -> Box<dyn ConfigManipulator> {
        match self.opts.manipulator {
            ManipulatorKind::Hierarchical => Box::new(HierarchicalManipulator::new()),
            ManipulatorKind::Flat => Box::new(FlatManipulator::new()),
            ManipulatorKind::GcSubset => Box::new(SubsetManipulator::gc_and_heap()),
        }
    }

    /// Run one tuning session for `program` against `executor`, emitting
    /// every proposal, evaluation, budget charge and best-update on
    /// `bus` as a [`TraceEvent`]. Pass [`TelemetryBus::disabled`] to run
    /// unobserved.
    ///
    /// The stream is bit-deterministic given `opts.seed`: events are
    /// emitted in candidate order regardless of `opts.workers` (the
    /// evaluation pipeline buffers per-slot and flushes after each
    /// batch), and every trial's budget charge appears exactly once, so
    /// the charges in the stream sum to the session's spent budget.
    ///
    /// # Panics
    /// Panics if the technique name in the options is unknown (use
    /// [`TunerOptions::builder`] to reject that at construction).
    pub fn run(&self, executor: &dyn Executor, program: &str, bus: &TelemetryBus) -> TuningResult {
        let opts = &self.opts;
        let manipulator = self.build_manipulator();
        let mut technique: Box<dyn Technique> = TechniqueSet::by_name(&opts.technique)
            .unwrap_or_else(|| panic!("unknown technique {:?}", opts.technique));
        let budget = Budget::new(opts.budget);
        let mut rng = Xoshiro256pp::seed_from_u64(opts.seed);
        let registry = executor.registry();
        let mut pipeline = EvalPipeline::new(opts.protocol, opts.cache);
        let racing = opts.protocol.racing.is_some();

        bus.emit(&TraceEvent::SessionStarted {
            program: program.to_string(),
            executor: executor.describe(),
            technique: opts.technique.clone(),
            manipulator: opts.manipulator.label().to_string(),
            budget_secs: opts.budget.as_secs_f64(),
            seed: opts.seed,
            workers: opts.workers as u64,
            batch: opts.batch as u64,
            repeats: opts.protocol.repeats.max(1) as u64,
        });

        let mut trials: Vec<TrialRecord> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut eval_index: u64 = 0;
        let mut last_technique: Option<String> = None;

        // ---- baseline: the default configuration ----
        let mut default_config = JvmConfig::default_for(registry);
        manipulator.canonicalize(&mut default_config);
        seen.insert(default_config.fingerprint());
        let ev0 = pipeline.prime(executor, &default_config, opts.seed);
        let charge0 = budget.charge_observed(ev0.cost);
        emit_trial(bus, 0, "default", &[], &ev0, charge0.spent_after);
        if charge0.crossed_limit {
            bus.emit(&TraceEvent::BudgetExhausted {
                spent_secs: charge0.spent_after.as_secs_f64(),
                total_secs: opts.budget.as_secs_f64(),
                evaluations: 1,
            });
        }
        let default_score = match ev0.score {
            Some(s) => s.as_secs_f64(),
            None => {
                // The default JVM fails the workload (can genuinely happen:
                // live set over the default heap). Report a degenerate
                // session; callers see default == best == infinity-ish.
                bus.emit(&TraceEvent::SessionFinished {
                    program: program.to_string(),
                    default_secs: f64::INFINITY,
                    best_secs: f64::INFINITY,
                    improvement_percent: 0.0,
                    evaluations: 1,
                    spent_secs: charge0.spent_after.as_secs_f64(),
                    best_delta: Vec::new(),
                });
                bus.flush();
                let session = SessionRecord {
                    program: program.to_string(),
                    executor: executor.describe(),
                    budget_mins: opts.budget.as_mins_f64(),
                    default_secs: f64::INFINITY,
                    best_secs: f64::INFINITY,
                    best_delta: Vec::new(),
                    evaluations: 1,
                    distinct: 1,
                    cache_hits: 0,
                    aborted: 0,
                    trials,
                };
                return TuningResult {
                    session,
                    best_config: default_config,
                };
            }
        };
        trials.push(TrialRecord {
            index: 0,
            at_secs: charge0.spent_after.as_secs_f64(),
            score_secs: Some(default_score),
            technique: "default".to_string(),
            delta: Vec::new(),
        });
        eval_index += 1;

        let mut best: (JvmConfig, f64) = (default_config.clone(), default_score);
        // Racing baseline: the best-so-far candidate's raw samples,
        // frozen at the start of each batch so abort decisions are
        // independent of worker scheduling.
        let mut best_samples: Vec<f64> = ev0.samples.iter().map(|s| s.as_secs_f64()).collect();

        // ---- structural priming ----
        // A structure-aware manipulator enumerates its selector
        // combinations; measuring them first captures the collector/JIT-
        // mode headroom deterministically before free search begins.
        let primers: Vec<JvmConfig> = manipulator
            .primers()
            .into_iter()
            .filter(|c| seen.insert(c.fingerprint()))
            .collect();
        if !primers.is_empty() && budget.has_remaining() {
            bus.emit(&TraceEvent::RoundProposed {
                round: 0,
                technique: "primer".to_string(),
                candidates: primers.len() as u64,
            });
            let baseline = best_samples.clone();
            let report = pipeline.evaluate_batch(
                executor,
                &primers,
                opts.seed ^ 0x5052_494d,
                opts.workers,
                racing.then_some(baseline.as_slice()),
                bus,
            );
            for (candidate, ev) in primers.iter().zip(report.evals.iter()) {
                let charge = budget.charge_observed(ev.cost);
                let score_secs = ev.score.map(|s| s.as_secs_f64());
                let delta = candidate.to_args(registry);
                emit_trial(bus, eval_index, "primer", &delta, ev, charge.spent_after);
                if charge.crossed_limit {
                    bus.emit(&TraceEvent::BudgetExhausted {
                        spent_secs: charge.spent_after.as_secs_f64(),
                        total_secs: opts.budget.as_secs_f64(),
                        evaluations: eval_index + 1,
                    });
                }
                trials.push(TrialRecord {
                    index: eval_index,
                    at_secs: charge.spent_after.as_secs_f64(),
                    score_secs,
                    technique: "primer".to_string(),
                    delta,
                });
                eval_index += 1;
                if let Some(s) = score_secs {
                    if s < best.1 {
                        best = (candidate.clone(), s);
                        best_samples = ev.samples.iter().map(|x| x.as_secs_f64()).collect();
                        bus.emit(&TraceEvent::BestImproved {
                            index: eval_index - 1,
                            score_secs: s,
                            improvement_percent: stats::improvement_percent(default_score, s),
                            delta: best.0.to_args(registry),
                        });
                    }
                }
            }
        }

        // ---- search rounds ----
        let cache_enabled = opts.cache.is_some();
        let mut round: u64 = 0;
        'outer: while budget.has_remaining() {
            if let Some(cap) = opts.max_evaluations {
                if eval_index >= cap {
                    break;
                }
            }
            round += 1;
            let batch_size = opts.batch.max(1);
            // With the cache on, a technique re-proposing a measured
            // config gets it served from memory instead of a random
            // substitute — but at most half a round, so every round
            // still spends real budget (no zero-cost livelock).
            let reuse_cap = batch_size.div_ceil(2);
            let mut reused = 0usize;
            let mut candidates: Vec<JvmConfig> = Vec::with_capacity(batch_size);
            {
                let state = SearchState {
                    manipulator: manipulator.as_ref(),
                    best: Some(&best),
                    default_score,
                    budget_fraction: budget.fraction_spent(),
                    reuse_fraction: pipeline.stats().reuse_fraction(),
                };
                for _ in 0..batch_size {
                    let mut fresh = None;
                    let mut last_dup = None;
                    for _attempt in 0..8 {
                        let c = technique.propose(&state, &mut rng);
                        if seen.insert(c.fingerprint()) {
                            fresh = Some(c);
                            break;
                        }
                        last_dup = Some(c);
                    }
                    let c = match fresh {
                        Some(c) => c,
                        None if cache_enabled && reused < reuse_cap => {
                            reused += 1;
                            last_dup.expect("eight attempts, all duplicates")
                        }
                        None => {
                            // The technique is stuck on duplicates: inject
                            // fresh randomness.
                            let c = manipulator.random(&mut rng);
                            seen.insert(c.fingerprint());
                            c
                        }
                    };
                    candidates.push(c);
                }
            }
            bus.emit(&TraceEvent::RoundProposed {
                round,
                technique: technique.name().to_string(),
                candidates: candidates.len() as u64,
            });

            let baseline = best_samples.clone();
            let report = pipeline.evaluate_batch(
                executor,
                &candidates,
                opts.seed ^ eval_index,
                opts.workers,
                racing.then_some(baseline.as_slice()),
                bus,
            );

            for (candidate, ev) in candidates.iter().zip(report.evals.iter()) {
                let charge = budget.charge_observed(ev.cost);
                let score_secs = ev.score.map(|s| s.as_secs_f64());
                // Attribute the trial to the proposing arm (the ensemble
                // routes to inner techniques) before feedback clears the
                // routing entry.
                let label = technique.proposer(candidate).to_string();
                if let Some(prev) = &last_technique {
                    if *prev != label {
                        bus.emit(&TraceEvent::TechniqueSwitched {
                            index: eval_index,
                            from: prev.clone(),
                            to: label.clone(),
                        });
                    }
                }
                last_technique = Some(label.clone());
                let delta = candidate.to_args(registry);
                emit_trial(bus, eval_index, &label, &delta, ev, charge.spent_after);
                if charge.crossed_limit {
                    bus.emit(&TraceEvent::BudgetExhausted {
                        spent_secs: charge.spent_after.as_secs_f64(),
                        total_secs: opts.budget.as_secs_f64(),
                        evaluations: eval_index + 1,
                    });
                }
                trials.push(TrialRecord {
                    index: eval_index,
                    at_secs: charge.spent_after.as_secs_f64(),
                    score_secs,
                    technique: label,
                    delta,
                });
                eval_index += 1;
                {
                    let state = SearchState {
                        manipulator: manipulator.as_ref(),
                        best: Some(&best),
                        default_score,
                        budget_fraction: budget.fraction_spent(),
                        reuse_fraction: pipeline.stats().reuse_fraction(),
                    };
                    technique.feedback(candidate, score_secs, &state);
                }
                if let Some(s) = score_secs {
                    if s < best.1 {
                        best = (candidate.clone(), s);
                        best_samples = ev.samples.iter().map(|x| x.as_secs_f64()).collect();
                        bus.emit(&TraceEvent::BestImproved {
                            index: eval_index - 1,
                            score_secs: s,
                            improvement_percent: stats::improvement_percent(default_score, s),
                            delta: best.0.to_args(registry),
                        });
                    }
                }
                if let Some(cap) = opts.max_evaluations {
                    if eval_index >= cap {
                        break 'outer;
                    }
                }
            }
        }

        let stats = pipeline.stats();
        let session = SessionRecord {
            program: program.to_string(),
            executor: executor.describe(),
            budget_mins: opts.budget.as_mins_f64(),
            default_secs: default_score,
            best_secs: best.1,
            best_delta: best.0.to_args(registry),
            evaluations: eval_index,
            distinct: stats.fresh,
            cache_hits: stats.cache_hits,
            aborted: stats.aborted,
            trials,
        };
        bus.emit(&TraceEvent::SessionFinished {
            program: program.to_string(),
            default_secs: default_score,
            best_secs: best.1,
            improvement_percent: session.improvement_percent(),
            evaluations: eval_index,
            spent_secs: budget.spent().as_secs_f64(),
            best_delta: session.best_delta.clone(),
        });
        bus.flush();
        TuningResult {
            session,
            best_config: best.0,
        }
    }
}

/// Emit one [`TraceEvent::TrialEvaluated`] for an evaluation.
fn emit_trial(
    bus: &TelemetryBus,
    index: u64,
    technique: &str,
    delta: &[String],
    ev: &Evaluation,
    spent_after: SimDuration,
) {
    if !bus.is_enabled() {
        return;
    }
    bus.emit(&TraceEvent::TrialEvaluated {
        index,
        technique: technique.to_string(),
        delta: delta.to_vec(),
        repeat_secs: ev.samples.iter().map(|s| s.as_secs_f64()).collect(),
        score_secs: ev.score.map(|s| s.as_secs_f64()),
        cost_secs: ev.cost.as_secs_f64(),
        budget_spent_secs: spent_after.as_secs_f64(),
        gc_pause_total_ms: ev.counters.map(|c| c.gc_pause_total.as_millis_f64()),
        gc_collections: ev.counters.map(|c| c.gc_collections),
        jit_compile_ms: ev.counters.map(|c| c.jit_compile_time.as_millis_f64()),
        jit_compiles: ev.counters.map(|c| c.jit_compiles),
        error: ev.error.as_ref().map(|e| e.message().to_string()),
        error_kind: ev.error.as_ref().map(|e| e.kind().to_string()),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_harness::SimExecutor;
    use jtune_jvmsim::Workload;

    fn quick_opts() -> TunerOptions {
        TunerOptions {
            budget: SimDuration::from_mins(3),
            workers: 4,
            batch: 4,
            seed: 1,
            ..TunerOptions::default()
        }
    }

    fn startup_workload() -> Workload {
        let mut w = Workload::baseline("tuner-test");
        w.total_work = 4e8;
        w.hot_methods = 1500;
        w.hotness_skew = 0.6;
        w.alloc_rate = 2.5;
        w
    }

    fn run_quiet(opts: TunerOptions, ex: &SimExecutor) -> TuningResult {
        Tuner::new(opts).run(ex, "t", &TelemetryBus::disabled())
    }

    #[test]
    fn tuner_never_reports_worse_than_default() {
        let ex = SimExecutor::new(startup_workload());
        let result = run_quiet(quick_opts(), &ex);
        assert!(result.session.best_secs <= result.session.default_secs);
        assert!(result.improvement_percent() >= 0.0);
        assert!(result.session.evaluations > 1);
        assert_eq!(
            result.session.trials.len() as u64,
            result.session.evaluations
        );
        // Legacy sessions measure every trial.
        assert_eq!(result.session.distinct, result.session.evaluations);
        assert_eq!(result.session.cache_hits, 0);
        assert_eq!(result.session.aborted, 0);
    }

    #[test]
    fn tuner_finds_real_improvement_on_startup_workload() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.budget = SimDuration::from_mins(15);
        let result = run_quiet(opts, &ex);
        assert!(
            result.improvement_percent() > 3.0,
            "only {:.1}% improvement",
            result.improvement_percent()
        );
        assert!(!result.session.best_delta.is_empty());
    }

    #[test]
    fn tuning_is_deterministic_given_seed() {
        let ex = SimExecutor::new(startup_workload());
        let a = run_quiet(quick_opts(), &ex);
        let b = run_quiet(quick_opts(), &ex);
        assert_eq!(a.session.best_secs, b.session.best_secs);
        assert_eq!(a.session.evaluations, b.session.evaluations);
        assert_eq!(a.session.best_delta, b.session.best_delta);
        let mut opts = quick_opts();
        opts.seed = 2;
        let c = run_quiet(opts, &ex);
        assert_ne!(a.session.best_delta, c.session.best_delta);
    }

    #[test]
    fn max_evaluations_caps_the_session() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.max_evaluations = Some(9);
        let result = run_quiet(opts, &ex);
        assert!(result.session.evaluations <= 9);
    }

    #[test]
    fn budget_is_respected() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.budget = SimDuration::from_secs(30);
        let batch = opts.batch;
        let result = run_quiet(opts, &ex);
        // All but the last in-flight batch must finish within budget; the
        // recorded spend can straddle by at most one batch.
        let last = result.session.trials.last().unwrap();
        assert!(
            last.at_secs < 30.0 + 5.0 * (batch as f64 + 1.0) * 60.0,
            "spent {} s",
            last.at_secs
        );
        assert!(result.session.evaluations < 500);
    }

    #[test]
    fn every_manipulator_kind_runs() {
        let ex = SimExecutor::new(startup_workload());
        for kind in [
            ManipulatorKind::Hierarchical,
            ManipulatorKind::Flat,
            ManipulatorKind::GcSubset,
        ] {
            let mut opts = quick_opts();
            opts.manipulator = kind;
            opts.max_evaluations = Some(12);
            let result = run_quiet(opts, &ex);
            assert!(result.session.best_secs <= result.session.default_secs);
        }
    }

    #[test]
    fn solo_techniques_run() {
        let ex = SimExecutor::new(startup_workload());
        for name in TechniqueSet::names() {
            let mut opts = quick_opts();
            opts.technique = name.to_string();
            opts.max_evaluations = Some(10);
            let result = run_quiet(opts, &ex);
            assert!(
                result.session.best_secs <= result.session.default_secs,
                "{name} regressed"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown technique")]
    fn unknown_technique_panics() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.technique = "alchemy".to_string();
        let _ = run_quiet(opts, &ex);
    }

    #[test]
    fn default_failing_workload_reports_degenerate_session() {
        let mut w = startup_workload();
        // Live set far beyond the default 1 GB heap, with enough allocation
        // to actually reach it: the default config OOMs.
        w.live_set = 3e9;
        w.nursery_survival = 0.6;
        w.alloc_rate = 10.0;
        w.total_work = 2e9;
        let ex = SimExecutor::new(w);
        let result = run_quiet(quick_opts(), &ex);
        assert!(result.session.default_secs.is_infinite());
        assert_eq!(result.session.evaluations, 1);
    }

    #[test]
    fn builder_validates_at_construction() {
        assert!(TunerOptions::builder().build().is_ok());
        assert_eq!(
            TunerOptions::builder().batch(0).build().unwrap_err(),
            OptionsError::ZeroBatch
        );
        assert_eq!(
            TunerOptions::builder().workers(0).build().unwrap_err(),
            OptionsError::ZeroWorkers
        );
        assert_eq!(
            TunerOptions::builder()
                .technique("alchemy")
                .build()
                .unwrap_err(),
            OptionsError::UnknownTechnique("alchemy".into())
        );
        assert_eq!(
            TunerOptions::builder()
                .cache(CachePolicy { recharge: 1.5 })
                .build()
                .unwrap_err(),
            OptionsError::InvalidRecharge(1.5)
        );
        assert_eq!(
            TunerOptions::builder()
                .racing(Racing {
                    min_repeats: 0,
                    alpha: 0.2
                })
                .build()
                .unwrap_err(),
            OptionsError::ZeroMinRepeats
        );
        assert_eq!(
            TunerOptions::builder()
                .racing(Racing {
                    min_repeats: 2,
                    alpha: 1.0
                })
                .build()
                .unwrap_err(),
            OptionsError::InvalidAlpha(1.0)
        );
        let opts = TunerOptions::builder()
            .budget(SimDuration::from_mins(5))
            .workers(2)
            .batch(8)
            .seed(9)
            .technique("random")
            .cache(CachePolicy::default())
            .racing(Racing::default())
            .max_evaluations(40)
            .build()
            .expect("valid options");
        assert_eq!(opts.workers, 2);
        assert_eq!(opts.batch, 8);
        assert!(opts.cache.is_some());
        assert!(opts.protocol.racing.is_some());
    }

    #[test]
    fn pipeline_features_stretch_the_budget() {
        let ex = SimExecutor::new(startup_workload());
        let mut legacy_opts = quick_opts();
        legacy_opts.budget = SimDuration::from_mins(10);
        let legacy = run_quiet(legacy_opts.clone(), &ex);

        let mut adaptive_opts = legacy_opts.clone();
        adaptive_opts.cache = Some(CachePolicy::default());
        adaptive_opts.protocol.racing = Some(Racing::default());
        let adaptive = run_quiet(adaptive_opts, &ex);

        // Same budget, more distinct configurations measured, and a
        // result no worse than what the fixed pipeline found.
        assert!(
            adaptive.session.distinct > legacy.session.distinct,
            "adaptive {} vs legacy {}",
            adaptive.session.distinct,
            legacy.session.distinct
        );
        assert!(adaptive.session.aborted > 0, "racing never fired");
        assert!(adaptive.session.best_secs <= adaptive.session.default_secs);
    }

    #[test]
    fn racing_only_session_still_improves_and_reports_aborts() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.budget = SimDuration::from_mins(10);
        opts.protocol.racing = Some(Racing::default());
        let result = run_quiet(opts, &ex);
        assert!(result.session.best_secs <= result.session.default_secs);
        assert!(result.session.aborted > 0, "racing never fired");
        // Aborted trials are censored, never best.
        assert!(result.session.best_secs.is_finite());
        // Every trial was measured (no cache): distinct == evaluations.
        assert_eq!(result.session.distinct, result.session.evaluations);
    }
}
