//! The tuning driver.
//!
//! [`Tuner::run`] reproduces the paper's per-program session: measure the
//! default configuration, then repeat *propose → evaluate (in parallel) →
//! learn* until the tuning-time budget is exhausted, and report the best
//! configuration found with its full trial history.

use std::collections::HashSet;

use jtune_flags::JvmConfig;
use jtune_harness::{
    evaluate_batch_observed, Budget, Evaluation, Executor, Protocol, SessionRecord, TrialRecord,
};
use jtune_telemetry::{TelemetryBus, TraceEvent};
use jtune_util::{stats, SimDuration, Xoshiro256pp};

use crate::manipulator::{
    ConfigManipulator, FlatManipulator, HierarchicalManipulator, SubsetManipulator,
};
use crate::techniques::{SearchState, Technique, TechniqueSet};

/// Which configuration-space manipulator the tuner uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ManipulatorKind {
    /// Flag-hierarchy-aware moves (the paper's tuner).
    Hierarchical,
    /// Whole flat space, no dependency knowledge (ablation baseline).
    Flat,
    /// GC + heap flags only (prior-work baseline).
    GcSubset,
}

impl ManipulatorKind {
    /// Stable label for telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            ManipulatorKind::Hierarchical => "hierarchical",
            ManipulatorKind::Flat => "flat",
            ManipulatorKind::GcSubset => "gc-subset",
        }
    }
}

/// Tuner configuration.
#[derive(Clone, Debug)]
pub struct TunerOptions {
    /// Tuning-time budget (the paper: 200 minutes).
    pub budget: SimDuration,
    /// Measurement protocol per candidate.
    pub protocol: Protocol,
    /// Parallel evaluation workers.
    pub workers: usize,
    /// Candidates proposed per round (defaults to `workers`).
    pub batch: usize,
    /// Master seed: tuning is fully deterministic given it.
    pub seed: u64,
    /// Search-space manipulator.
    pub manipulator: ManipulatorKind,
    /// Technique name (`"ensemble"` or any of [`TechniqueSet::names`]).
    pub technique: String,
    /// Optional hard cap on evaluations (tests use small caps).
    pub max_evaluations: Option<u64>,
}

impl Default for TunerOptions {
    fn default() -> Self {
        TunerOptions {
            budget: SimDuration::from_mins(200),
            protocol: Protocol::default(),
            workers: 4,
            batch: 4,
            seed: 0x4a_5455_4e45,
            manipulator: ManipulatorKind::Hierarchical,
            technique: "ensemble".to_string(),
            max_evaluations: None,
        }
    }
}

/// Outcome of one tuning session.
#[derive(Clone, Debug)]
pub struct TuningResult {
    /// Full session record (trials, scores, budget accounting).
    pub session: SessionRecord,
    /// The best configuration found.
    pub best_config: JvmConfig,
}

impl TuningResult {
    /// Improvement over the default, the paper's headline number.
    pub fn improvement_percent(&self) -> f64 {
        self.session.improvement_percent()
    }
}

/// The HotSpot Auto-tuner.
pub struct Tuner {
    opts: TunerOptions,
}

impl Tuner {
    /// Build a tuner.
    pub fn new(opts: TunerOptions) -> Tuner {
        Tuner { opts }
    }

    /// The paper's configuration: hierarchical manipulator, ensemble
    /// search, 200-minute budget.
    pub fn paper_default() -> Tuner {
        Tuner::new(TunerOptions::default())
    }

    fn build_manipulator(&self) -> Box<dyn ConfigManipulator> {
        match self.opts.manipulator {
            ManipulatorKind::Hierarchical => Box::new(HierarchicalManipulator::new()),
            ManipulatorKind::Flat => Box::new(FlatManipulator::new()),
            ManipulatorKind::GcSubset => Box::new(SubsetManipulator::gc_and_heap()),
        }
    }

    /// Run one tuning session for `program` against `executor`.
    ///
    /// # Panics
    /// Panics if the technique name in the options is unknown.
    pub fn run(&self, executor: &dyn Executor, program: &str) -> TuningResult {
        self.run_observed(executor, program, &TelemetryBus::new())
    }

    /// [`Tuner::run`] with telemetry: every proposal, evaluation, budget
    /// charge and best-update is emitted on `bus` as a [`TraceEvent`].
    ///
    /// The stream is bit-deterministic given `opts.seed`: events are
    /// emitted in candidate order regardless of `opts.workers` (the
    /// evaluation pool buffers per-slot and flushes after each batch),
    /// and every trial's budget charge appears exactly once, so the
    /// charges in the stream sum to the session's spent budget.
    ///
    /// # Panics
    /// Panics if the technique name in the options is unknown.
    pub fn run_observed(
        &self,
        executor: &dyn Executor,
        program: &str,
        bus: &TelemetryBus,
    ) -> TuningResult {
        let opts = &self.opts;
        let manipulator = self.build_manipulator();
        let mut technique: Box<dyn Technique> = TechniqueSet::by_name(&opts.technique)
            .unwrap_or_else(|| panic!("unknown technique {:?}", opts.technique));
        let budget = Budget::new(opts.budget);
        let mut rng = Xoshiro256pp::seed_from_u64(opts.seed);
        let registry = executor.registry();

        bus.emit(&TraceEvent::SessionStarted {
            program: program.to_string(),
            executor: executor.describe(),
            technique: opts.technique.clone(),
            manipulator: opts.manipulator.label().to_string(),
            budget_secs: opts.budget.as_secs_f64(),
            seed: opts.seed,
            workers: opts.workers as u64,
            batch: opts.batch as u64,
            repeats: opts.protocol.repeats.max(1) as u64,
        });

        let mut trials: Vec<TrialRecord> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut eval_index: u64 = 0;
        let mut last_technique: Option<String> = None;

        // ---- baseline: the default configuration ----
        let mut default_config = JvmConfig::default_for(registry);
        manipulator.canonicalize(&mut default_config);
        seen.insert(default_config.fingerprint());
        let ev0 = opts.protocol.evaluate(executor, &default_config, opts.seed);
        let charge0 = budget.charge_observed(ev0.cost);
        emit_trial(bus, 0, "default", &[], &ev0, charge0.spent_after);
        if charge0.crossed_limit {
            bus.emit(&TraceEvent::BudgetExhausted {
                spent_secs: charge0.spent_after.as_secs_f64(),
                total_secs: opts.budget.as_secs_f64(),
                evaluations: 1,
            });
        }
        let default_score = match ev0.score {
            Some(s) => s.as_secs_f64(),
            None => {
                // The default JVM fails the workload (can genuinely happen:
                // live set over the default heap). Report a degenerate
                // session; callers see default == best == infinity-ish.
                bus.emit(&TraceEvent::SessionFinished {
                    program: program.to_string(),
                    default_secs: f64::INFINITY,
                    best_secs: f64::INFINITY,
                    improvement_percent: 0.0,
                    evaluations: 1,
                    spent_secs: charge0.spent_after.as_secs_f64(),
                    best_delta: Vec::new(),
                });
                bus.flush();
                let session = SessionRecord {
                    program: program.to_string(),
                    executor: executor.describe(),
                    budget_mins: opts.budget.as_mins_f64(),
                    default_secs: f64::INFINITY,
                    best_secs: f64::INFINITY,
                    best_delta: Vec::new(),
                    evaluations: 1,
                    trials,
                };
                return TuningResult {
                    session,
                    best_config: default_config,
                };
            }
        };
        trials.push(TrialRecord {
            index: 0,
            at_secs: charge0.spent_after.as_secs_f64(),
            score_secs: Some(default_score),
            technique: "default".to_string(),
            delta: Vec::new(),
        });
        eval_index += 1;

        let mut best: (JvmConfig, f64) = (default_config.clone(), default_score);

        // ---- structural priming ----
        // A structure-aware manipulator enumerates its selector
        // combinations; measuring them first captures the collector/JIT-
        // mode headroom deterministically before free search begins.
        let primers: Vec<JvmConfig> = manipulator
            .primers()
            .into_iter()
            .filter(|c| seen.insert(c.fingerprint()))
            .collect();
        if !primers.is_empty() && budget.has_remaining() {
            bus.emit(&TraceEvent::RoundProposed {
                round: 0,
                technique: "primer".to_string(),
                candidates: primers.len() as u64,
            });
            let evals = evaluate_batch_observed(
                executor,
                opts.protocol,
                &primers,
                opts.seed ^ 0x5052_494d,
                opts.workers,
                Some(bus),
            );
            for (candidate, ev) in primers.iter().zip(evals.iter()) {
                let charge = budget.charge_observed(ev.cost);
                let score_secs = ev.score.map(|s| s.as_secs_f64());
                let delta = candidate.to_args(registry);
                emit_trial(bus, eval_index, "primer", &delta, ev, charge.spent_after);
                if charge.crossed_limit {
                    bus.emit(&TraceEvent::BudgetExhausted {
                        spent_secs: charge.spent_after.as_secs_f64(),
                        total_secs: opts.budget.as_secs_f64(),
                        evaluations: eval_index + 1,
                    });
                }
                trials.push(TrialRecord {
                    index: eval_index,
                    at_secs: charge.spent_after.as_secs_f64(),
                    score_secs,
                    technique: "primer".to_string(),
                    delta,
                });
                eval_index += 1;
                if let Some(s) = score_secs {
                    if s < best.1 {
                        best = (candidate.clone(), s);
                        bus.emit(&TraceEvent::BestImproved {
                            index: eval_index - 1,
                            score_secs: s,
                            improvement_percent: stats::improvement_percent(default_score, s),
                            delta: best.0.to_args(registry),
                        });
                    }
                }
            }
        }

        // ---- search rounds ----
        let mut round: u64 = 0;
        'outer: while budget.has_remaining() {
            if let Some(cap) = opts.max_evaluations {
                if eval_index >= cap {
                    break;
                }
            }
            round += 1;
            let batch_size = opts.batch.max(1);
            let mut candidates: Vec<JvmConfig> = Vec::with_capacity(batch_size);
            {
                let state = SearchState {
                    manipulator: manipulator.as_ref(),
                    best: Some(&best),
                    default_score,
                    budget_fraction: budget.fraction_spent(),
                };
                for _ in 0..batch_size {
                    let mut candidate = None;
                    for _attempt in 0..8 {
                        let c = technique.propose(&state, &mut rng);
                        if seen.insert(c.fingerprint()) {
                            candidate = Some(c);
                            break;
                        }
                    }
                    let c = candidate.unwrap_or_else(|| {
                        // The technique is stuck on duplicates: inject
                        // fresh randomness.
                        let c = manipulator.random(&mut rng);
                        seen.insert(c.fingerprint());
                        c
                    });
                    candidates.push(c);
                }
            }
            bus.emit(&TraceEvent::RoundProposed {
                round,
                technique: technique.name().to_string(),
                candidates: candidates.len() as u64,
            });

            let evals = evaluate_batch_observed(
                executor,
                opts.protocol,
                &candidates,
                opts.seed ^ eval_index,
                opts.workers,
                Some(bus),
            );

            for (candidate, ev) in candidates.iter().zip(evals.iter()) {
                let charge = budget.charge_observed(ev.cost);
                let score_secs = ev.score.map(|s| s.as_secs_f64());
                // Attribute the trial to the proposing arm (the ensemble
                // routes to inner techniques) before feedback clears the
                // routing entry.
                let label = technique.proposer(candidate).to_string();
                if let Some(prev) = &last_technique {
                    if *prev != label {
                        bus.emit(&TraceEvent::TechniqueSwitched {
                            index: eval_index,
                            from: prev.clone(),
                            to: label.clone(),
                        });
                    }
                }
                last_technique = Some(label.clone());
                let delta = candidate.to_args(registry);
                emit_trial(bus, eval_index, &label, &delta, ev, charge.spent_after);
                if charge.crossed_limit {
                    bus.emit(&TraceEvent::BudgetExhausted {
                        spent_secs: charge.spent_after.as_secs_f64(),
                        total_secs: opts.budget.as_secs_f64(),
                        evaluations: eval_index + 1,
                    });
                }
                trials.push(TrialRecord {
                    index: eval_index,
                    at_secs: charge.spent_after.as_secs_f64(),
                    score_secs,
                    technique: label,
                    delta,
                });
                eval_index += 1;
                {
                    let state = SearchState {
                        manipulator: manipulator.as_ref(),
                        best: Some(&best),
                        default_score,
                        budget_fraction: budget.fraction_spent(),
                    };
                    technique.feedback(candidate, score_secs, &state);
                }
                if let Some(s) = score_secs {
                    if s < best.1 {
                        best = (candidate.clone(), s);
                        bus.emit(&TraceEvent::BestImproved {
                            index: eval_index - 1,
                            score_secs: s,
                            improvement_percent: stats::improvement_percent(default_score, s),
                            delta: best.0.to_args(registry),
                        });
                    }
                }
                if let Some(cap) = opts.max_evaluations {
                    if eval_index >= cap {
                        break 'outer;
                    }
                }
            }
        }

        let session = SessionRecord {
            program: program.to_string(),
            executor: executor.describe(),
            budget_mins: opts.budget.as_mins_f64(),
            default_secs: default_score,
            best_secs: best.1,
            best_delta: best.0.to_args(registry),
            evaluations: eval_index,
            trials,
        };
        bus.emit(&TraceEvent::SessionFinished {
            program: program.to_string(),
            default_secs: default_score,
            best_secs: best.1,
            improvement_percent: session.improvement_percent(),
            evaluations: eval_index,
            spent_secs: budget.spent().as_secs_f64(),
            best_delta: session.best_delta.clone(),
        });
        bus.flush();
        TuningResult {
            session,
            best_config: best.0,
        }
    }
}

/// Emit one [`TraceEvent::TrialEvaluated`] for an evaluation.
fn emit_trial(
    bus: &TelemetryBus,
    index: u64,
    technique: &str,
    delta: &[String],
    ev: &Evaluation,
    spent_after: SimDuration,
) {
    if !bus.is_enabled() {
        return;
    }
    bus.emit(&TraceEvent::TrialEvaluated {
        index,
        technique: technique.to_string(),
        delta: delta.to_vec(),
        repeat_secs: ev.samples.iter().map(|s| s.as_secs_f64()).collect(),
        score_secs: ev.score.map(|s| s.as_secs_f64()),
        cost_secs: ev.cost.as_secs_f64(),
        budget_spent_secs: spent_after.as_secs_f64(),
        gc_pause_total_ms: ev.counters.map(|c| c.gc_pause_total.as_millis_f64()),
        gc_collections: ev.counters.map(|c| c.gc_collections),
        jit_compile_ms: ev.counters.map(|c| c.jit_compile_time.as_millis_f64()),
        jit_compiles: ev.counters.map(|c| c.jit_compiles),
        error: ev.error.clone(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_harness::SimExecutor;
    use jtune_jvmsim::Workload;

    fn quick_opts() -> TunerOptions {
        TunerOptions {
            budget: SimDuration::from_mins(3),
            workers: 4,
            batch: 4,
            seed: 1,
            ..TunerOptions::default()
        }
    }

    fn startup_workload() -> Workload {
        let mut w = Workload::baseline("tuner-test");
        w.total_work = 4e8;
        w.hot_methods = 1500;
        w.hotness_skew = 0.6;
        w.alloc_rate = 2.5;
        w
    }

    #[test]
    fn tuner_never_reports_worse_than_default() {
        let ex = SimExecutor::new(startup_workload());
        let result = Tuner::new(quick_opts()).run(&ex, "t");
        assert!(result.session.best_secs <= result.session.default_secs);
        assert!(result.improvement_percent() >= 0.0);
        assert!(result.session.evaluations > 1);
        assert_eq!(
            result.session.trials.len() as u64,
            result.session.evaluations
        );
    }

    #[test]
    fn tuner_finds_real_improvement_on_startup_workload() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.budget = SimDuration::from_mins(15);
        let result = Tuner::new(opts).run(&ex, "t");
        assert!(
            result.improvement_percent() > 3.0,
            "only {:.1}% improvement",
            result.improvement_percent()
        );
        assert!(!result.session.best_delta.is_empty());
    }

    #[test]
    fn tuning_is_deterministic_given_seed() {
        let ex = SimExecutor::new(startup_workload());
        let a = Tuner::new(quick_opts()).run(&ex, "t");
        let b = Tuner::new(quick_opts()).run(&ex, "t");
        assert_eq!(a.session.best_secs, b.session.best_secs);
        assert_eq!(a.session.evaluations, b.session.evaluations);
        assert_eq!(a.session.best_delta, b.session.best_delta);
        let mut opts = quick_opts();
        opts.seed = 2;
        let c = Tuner::new(opts).run(&ex, "t");
        assert_ne!(a.session.best_delta, c.session.best_delta);
    }

    #[test]
    fn max_evaluations_caps_the_session() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.max_evaluations = Some(9);
        let result = Tuner::new(opts).run(&ex, "t");
        assert!(result.session.evaluations <= 9);
    }

    #[test]
    fn budget_is_respected() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.budget = SimDuration::from_secs(30);
        let batch = opts.batch;
        let result = Tuner::new(opts).run(&ex, "t");
        // All but the last in-flight batch must finish within budget; the
        // recorded spend can straddle by at most one batch.
        let last = result.session.trials.last().unwrap();
        assert!(
            last.at_secs < 30.0 + 5.0 * (batch as f64 + 1.0) * 60.0,
            "spent {} s",
            last.at_secs
        );
        assert!(result.session.evaluations < 500);
    }

    #[test]
    fn every_manipulator_kind_runs() {
        let ex = SimExecutor::new(startup_workload());
        for kind in [
            ManipulatorKind::Hierarchical,
            ManipulatorKind::Flat,
            ManipulatorKind::GcSubset,
        ] {
            let mut opts = quick_opts();
            opts.manipulator = kind;
            opts.max_evaluations = Some(12);
            let result = Tuner::new(opts).run(&ex, "t");
            assert!(result.session.best_secs <= result.session.default_secs);
        }
    }

    #[test]
    fn solo_techniques_run() {
        let ex = SimExecutor::new(startup_workload());
        for name in TechniqueSet::names() {
            let mut opts = quick_opts();
            opts.technique = name.to_string();
            opts.max_evaluations = Some(10);
            let result = Tuner::new(opts).run(&ex, "t");
            assert!(
                result.session.best_secs <= result.session.default_secs,
                "{name} regressed"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown technique")]
    fn unknown_technique_panics() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.technique = "alchemy".to_string();
        let _ = Tuner::new(opts).run(&ex, "t");
    }

    #[test]
    fn default_failing_workload_reports_degenerate_session() {
        let mut w = startup_workload();
        // Live set far beyond the default 1 GB heap, with enough allocation
        // to actually reach it: the default config OOMs.
        w.live_set = 3e9;
        w.nursery_survival = 0.6;
        w.alloc_rate = 10.0;
        w.total_work = 2e9;
        let ex = SimExecutor::new(w);
        let result = Tuner::new(quick_opts()).run(&ex, "t");
        assert!(result.session.default_secs.is_infinite());
        assert_eq!(result.session.evaluations, 1);
    }
}
