//! The tuning driver.
//!
//! [`Tuner::run`] reproduces the paper's per-program session: measure the
//! default configuration, then repeat *propose → evaluate (in parallel) →
//! learn* until the tuning-time budget is exhausted, and report the best
//! configuration found with its full trial history.
//!
//! Evaluation flows through [`jtune_harness::EvalPipeline`]: with
//! [`TunerOptions::cache`] set, re-proposed configurations are served
//! from the trial cache (and within-batch duplicates run once); with a
//! [`Racing`] policy on the protocol, statistically hopeless candidates
//! are abandoned early. Both features default off, in which case the
//! session is bit-identical to the legacy fixed-repeat pipeline.
//!
//! Fault tolerance rides on the same pipeline: a
//! [`jtune_harness::RetryPolicy`] on the protocol repeats transient
//! failures, [`TunerOptions::quarantine`]
//! stops re-proposing deterministically-failing fingerprints (and ends
//! the session gracefully when whole batches keep failing), and
//! [`TunerOptions::checkpoint`] / [`TunerOptions::resume`] make a killed
//! session resumable with a byte-identical trace.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;

use jtune_flags::JvmConfig;
use jtune_harness::{
    journal, Budget, CachePolicy, EvalPipeline, Evaluation, Executor, JournalWriter, Protocol,
    QuarantinePolicy, Racing, ReplayLog, SessionHeader, SessionRecord, TrialRecord,
};
use jtune_model::{screen, FeatureEncoder, ModelPolicy, Surrogate};
use jtune_telemetry::{phase, TelemetryBus, TraceEvent};
use jtune_util::{stats, SimDuration, Xoshiro256pp};

use crate::manipulator::{
    ConfigManipulator, FlatManipulator, HierarchicalManipulator, SubsetManipulator,
};
use crate::techniques::{SearchState, Technique, TechniqueSet};

/// Which configuration-space manipulator the tuner uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ManipulatorKind {
    /// Flag-hierarchy-aware moves (the paper's tuner).
    Hierarchical,
    /// Whole flat space, no dependency knowledge (ablation baseline).
    Flat,
    /// GC + heap flags only (prior-work baseline).
    GcSubset,
}

impl ManipulatorKind {
    /// Stable label for telemetry and reports.
    pub fn label(self) -> &'static str {
        match self {
            ManipulatorKind::Hierarchical => "hierarchical",
            ManipulatorKind::Flat => "flat",
            ManipulatorKind::GcSubset => "gc-subset",
        }
    }
}

/// Tuner configuration.
///
/// Construct via [`TunerOptions::builder`] for validation at build time,
/// or as a struct literal (legacy style) — in which case invalid values
/// surface as clamps or panics inside [`Tuner::run`].
#[derive(Clone, Debug)]
pub struct TunerOptions {
    /// Tuning-time budget (the paper: 200 minutes).
    pub budget: SimDuration,
    /// Measurement protocol per candidate (racing policy included).
    pub protocol: Protocol,
    /// Parallel evaluation workers.
    pub workers: usize,
    /// Candidates proposed per round (defaults to `workers`).
    pub batch: usize,
    /// Master seed: tuning is fully deterministic given it.
    pub seed: u64,
    /// Search-space manipulator.
    pub manipulator: ManipulatorKind,
    /// Technique name (`"ensemble"` or any of [`TechniqueSet::names`]).
    pub technique: String,
    /// Optional hard cap on evaluations (tests use small caps).
    pub max_evaluations: Option<u64>,
    /// Trial memoization policy; `None` (default) disables the cache and
    /// within-batch duplicate suppression — the legacy byte-stable path.
    pub cache: Option<CachePolicy>,
    /// Quarantine policy for deterministically-failing configurations;
    /// `None` (default) never quarantines — the legacy byte-stable path.
    pub quarantine: Option<QuarantinePolicy>,
    /// Surrogate-screening policy: techniques over-propose, the model
    /// scores the candidates, and only the top acquisition-ranked
    /// `batch` are measured. `None` (default) runs model-free — the
    /// legacy byte-stable path. A `model:`-prefixed technique name
    /// implies the default policy.
    pub model: Option<ModelPolicy>,
    /// Write-ahead trial journal path; every completed evaluation is
    /// flushed there so a killed session can be resumed.
    pub checkpoint: Option<PathBuf>,
    /// Journal to resume from: completed trials replay from it instead
    /// of being re-measured, reconstructing budget, cache, RNG and
    /// technique state. Usually the same path as `checkpoint`.
    pub resume: Option<PathBuf>,
    /// Cooperative suspension flag, checked at batch boundaries. When an
    /// owner (e.g. a draining daemon) sets it, the session stops cleanly
    /// after the current batch with [`TuningResult::suspended`] `true`;
    /// with `checkpoint` set, resuming later completes the session with
    /// a trace byte-identical to an uninterrupted run. Like `workers`,
    /// the flag never changes results, so it is excluded from
    /// [`TunerOptions::signature`].
    pub stop: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl Default for TunerOptions {
    fn default() -> Self {
        TunerOptions {
            budget: SimDuration::from_mins(200),
            protocol: Protocol::default(),
            workers: 4,
            batch: 4,
            seed: 0x4a_5455_4e45,
            manipulator: ManipulatorKind::Hierarchical,
            technique: "ensemble".to_string(),
            max_evaluations: None,
            cache: None,
            quarantine: None,
            model: None,
            checkpoint: None,
            resume: None,
            stop: None,
        }
    }
}

impl TunerOptions {
    /// A validating builder (rejects zero batch/workers/repeats, unknown
    /// technique names, and out-of-range cache/racing parameters at
    /// construction instead of deep in [`Tuner::run`]).
    pub fn builder() -> TunerOptionsBuilder {
        TunerOptionsBuilder {
            opts: TunerOptions::default(),
        }
    }

    /// Check every invariant the builder enforces.
    pub fn validate(&self) -> Result<(), OptionsError> {
        if self.batch == 0 {
            return Err(OptionsError::ZeroBatch);
        }
        if self.workers == 0 {
            return Err(OptionsError::ZeroWorkers);
        }
        if self.protocol.repeats == 0 {
            return Err(OptionsError::ZeroRepeats);
        }
        if TechniqueSet::by_name(&self.technique).is_none() {
            return Err(OptionsError::UnknownTechnique(self.technique.clone()));
        }
        if let Some(policy) = self.cache {
            if !(0.0..=1.0).contains(&policy.recharge) {
                return Err(OptionsError::InvalidRecharge(policy.recharge));
            }
        }
        if let Some(racing) = self.protocol.racing {
            if racing.min_repeats == 0 {
                return Err(OptionsError::ZeroMinRepeats);
            }
            if !(racing.alpha > 0.0 && racing.alpha < 1.0) {
                return Err(OptionsError::InvalidAlpha(racing.alpha));
            }
        }
        if let Some(retry) = self.protocol.retry {
            if !(retry.backoff.is_finite() && retry.backoff >= 1.0) {
                return Err(OptionsError::InvalidBackoff(retry.backoff));
            }
        }
        if let Some(q) = self.quarantine {
            if q.streak == 0 {
                return Err(OptionsError::ZeroQuarantineStreak);
            }
        }
        if let Some(m) = self.model {
            m.validate().map_err(OptionsError::InvalidModel)?;
        }
        Ok(())
    }

    /// Canonical rendering of every option that affects the trial
    /// stream. The worker count is deliberately excluded: it never
    /// changes results. This string pins a checkpoint journal to its
    /// session — resuming under different options is refused.
    pub fn signature(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(
            s,
            "v1 technique={} manipulator={} batch={} repeats={} fail_fast={}",
            self.technique,
            self.manipulator.label(),
            self.batch,
            self.protocol.repeats,
            self.protocol.fail_fast,
        );
        if let Some(r) = self.protocol.retry {
            let _ = write!(s, " retry={}x{}", r.max_retries, r.backoff);
        }
        if let Some(r) = self.protocol.racing {
            let _ = write!(s, " racing={}a{}", r.min_repeats, r.alpha);
        }
        if let Some(c) = self.cache {
            let _ = write!(s, " cache={}", c.recharge);
        }
        if let Some(q) = self.quarantine {
            let _ = write!(s, " quarantine={}", q.streak);
        }
        if let Some(m) = self.model {
            let _ = write!(s, " model={}w{}k{}", m.screen_ratio, m.warmup, m.kappa);
        }
        if let Some(m) = self.max_evaluations {
            let _ = write!(s, " max_evals={m}");
        }
        s
    }
}

/// A [`TunerOptions`] construction error.
#[derive(Clone, Debug, PartialEq)]
pub enum OptionsError {
    /// `batch` must be at least 1.
    ZeroBatch,
    /// `workers` must be at least 1.
    ZeroWorkers,
    /// The protocol's repeat count must be at least 1.
    ZeroRepeats,
    /// The technique name is not in [`TechniqueSet`].
    UnknownTechnique(String),
    /// The cache re-charge fraction must lie in `[0, 1]`.
    InvalidRecharge(f64),
    /// Racing `min_repeats` must be at least 1.
    ZeroMinRepeats,
    /// Racing `alpha` must lie strictly between 0 and 1.
    InvalidAlpha(f64),
    /// Retry backoff must be a finite factor of at least 1.
    InvalidBackoff(f64),
    /// Quarantine streak must be at least 1.
    ZeroQuarantineStreak,
    /// The surrogate-screening policy is out of range (the message is
    /// [`ModelPolicy::validate`]'s).
    InvalidModel(String),
}

impl std::fmt::Display for OptionsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptionsError::ZeroBatch => write!(f, "batch must be at least 1"),
            OptionsError::ZeroWorkers => write!(f, "workers must be at least 1"),
            OptionsError::ZeroRepeats => write!(f, "protocol repeats must be at least 1"),
            OptionsError::UnknownTechnique(name) => {
                write!(f, "unknown technique {name:?} (try \"ensemble\")")
            }
            OptionsError::InvalidRecharge(r) => {
                write!(f, "cache recharge fraction {r} outside [0, 1]")
            }
            OptionsError::ZeroMinRepeats => write!(f, "racing min repeats must be at least 1"),
            OptionsError::InvalidAlpha(a) => {
                write!(f, "racing alpha {a} outside (0, 1)")
            }
            OptionsError::InvalidBackoff(b) => {
                write!(f, "retry backoff {b} must be a finite factor >= 1")
            }
            OptionsError::ZeroQuarantineStreak => {
                write!(f, "quarantine streak must be at least 1")
            }
            OptionsError::InvalidModel(msg) => {
                write!(f, "invalid model policy: {msg}")
            }
        }
    }
}

impl std::error::Error for OptionsError {}

/// A tuning-session startup failure: the conditions [`Tuner::run`]
/// panics on, surfaced as typed errors by [`Tuner::try_run`] so a
/// long-running daemon can reject a bad session without dying.
#[derive(Debug)]
pub enum SessionError {
    /// The technique name is not in [`TechniqueSet`].
    UnknownTechnique(String),
    /// The resume journal could not be read (or is not a journal).
    ResumeLoad {
        /// The journal path.
        path: PathBuf,
        /// The underlying journal failure.
        error: jtune_harness::JournalError,
    },
    /// The resume journal's header pins a different session.
    ResumeMismatch {
        /// The journal path.
        path: PathBuf,
        /// What the journal's header says.
        journal: Box<SessionHeader>,
        /// What this session's header is.
        session: Box<SessionHeader>,
    },
    /// The checkpoint journal could not be created.
    CheckpointCreate {
        /// The checkpoint path.
        path: PathBuf,
        /// The underlying filesystem failure.
        error: std::io::Error,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::UnknownTechnique(name) => write!(f, "unknown technique {name:?}"),
            SessionError::ResumeLoad { path, error } => {
                write!(f, "cannot resume from {}: {error}", path.display())
            }
            SessionError::ResumeMismatch {
                path,
                journal,
                session,
            } => write!(
                f,
                "refusing to resume from {}: the journal belongs to a different session\n  \
                 journal: {journal:?}\n  session: {session:?}",
                path.display(),
            ),
            SessionError::CheckpointCreate { path, error } => {
                write!(f, "cannot create checkpoint at {}: {error}", path.display())
            }
        }
    }
}

impl std::error::Error for SessionError {}

/// Builder for [`TunerOptions`]; see [`TunerOptions::builder`].
#[derive(Clone, Debug)]
pub struct TunerOptionsBuilder {
    opts: TunerOptions,
}

impl TunerOptionsBuilder {
    /// Tuning-time budget.
    pub fn budget(mut self, budget: SimDuration) -> Self {
        self.opts.budget = budget;
        self
    }

    /// Measurement protocol (overwrites any racing policy set earlier).
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.opts.protocol = protocol;
        self
    }

    /// Parallel evaluation workers.
    pub fn workers(mut self, workers: usize) -> Self {
        self.opts.workers = workers;
        self
    }

    /// Candidates proposed per round.
    pub fn batch(mut self, batch: usize) -> Self {
        self.opts.batch = batch;
        self
    }

    /// Master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.opts.seed = seed;
        self
    }

    /// Search-space manipulator.
    pub fn manipulator(mut self, kind: ManipulatorKind) -> Self {
        self.opts.manipulator = kind;
        self
    }

    /// Technique name (validated at [`TunerOptionsBuilder::build`]).
    pub fn technique(mut self, name: impl Into<String>) -> Self {
        self.opts.technique = name.into();
        self
    }

    /// Hard cap on evaluations.
    pub fn max_evaluations(mut self, cap: u64) -> Self {
        self.opts.max_evaluations = Some(cap);
        self
    }

    /// Enable trial memoization with the given policy.
    pub fn cache(mut self, policy: CachePolicy) -> Self {
        self.opts.cache = Some(policy);
        self
    }

    /// Enable sequential racing with the given policy.
    pub fn racing(mut self, racing: Racing) -> Self {
        self.opts.protocol.racing = Some(racing);
        self
    }

    /// Stop a candidate's remaining repeats after its first failure
    /// (`true`, the default) or keep measuring (`false`).
    pub fn fail_fast(mut self, fail_fast: bool) -> Self {
        self.opts.protocol.fail_fast = fail_fast;
        self
    }

    /// Retry transiently-failing runs under the given policy.
    pub fn retry(mut self, retry: jtune_harness::RetryPolicy) -> Self {
        self.opts.protocol.retry = Some(retry);
        self
    }

    /// Quarantine deterministically-failing configurations.
    pub fn quarantine(mut self, policy: QuarantinePolicy) -> Self {
        self.opts.quarantine = Some(policy);
        self
    }

    /// Enable surrogate-guided candidate screening with the given policy.
    pub fn model(mut self, policy: ModelPolicy) -> Self {
        self.opts.model = Some(policy);
        self
    }

    /// Write a crash-safe trial journal to `path`.
    pub fn checkpoint(mut self, path: impl Into<PathBuf>) -> Self {
        self.opts.checkpoint = Some(path.into());
        self
    }

    /// Resume from the journal at `path` (usually the checkpoint path).
    pub fn resume(mut self, path: impl Into<PathBuf>) -> Self {
        self.opts.resume = Some(path.into());
        self
    }

    /// Suspend cooperatively when `flag` becomes true (checked at batch
    /// boundaries); see [`TunerOptions::stop`].
    pub fn stop(mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) -> Self {
        self.opts.stop = Some(flag);
        self
    }

    /// Validate and produce the options.
    pub fn build(self) -> Result<TunerOptions, OptionsError> {
        self.opts.validate()?;
        Ok(self.opts)
    }
}

/// Outcome of one tuning session.
#[derive(Clone, Debug)]
pub struct TuningResult {
    /// Full session record (trials, scores, budget accounting).
    pub session: SessionRecord,
    /// The best configuration found.
    pub best_config: JvmConfig,
    /// `true` when the session stopped early because [`TunerOptions::stop`]
    /// was raised; the record covers only the work done so far and the
    /// session can be completed later via checkpoint + resume.
    pub suspended: bool,
}

impl TuningResult {
    /// Improvement over the default, the paper's headline number.
    pub fn improvement_percent(&self) -> f64 {
        self.session.improvement_percent()
    }
}

/// The HotSpot Auto-tuner.
pub struct Tuner {
    opts: TunerOptions,
}

impl Tuner {
    /// Build a tuner.
    pub fn new(opts: TunerOptions) -> Tuner {
        Tuner { opts }
    }

    /// The paper's configuration: hierarchical manipulator, ensemble
    /// search, 200-minute budget.
    pub fn paper_default() -> Tuner {
        Tuner::new(TunerOptions::default())
    }

    fn build_manipulator(&self) -> Box<dyn ConfigManipulator> {
        match self.opts.manipulator {
            ManipulatorKind::Hierarchical => Box::new(HierarchicalManipulator::new()),
            ManipulatorKind::Flat => Box::new(FlatManipulator::new()),
            ManipulatorKind::GcSubset => Box::new(SubsetManipulator::gc_and_heap()),
        }
    }

    /// Run one tuning session for `program` against `executor`, emitting
    /// every proposal, evaluation, budget charge and best-update on
    /// `bus` as a [`TraceEvent`]. Pass [`TelemetryBus::disabled`] to run
    /// unobserved.
    ///
    /// The stream is bit-deterministic given `opts.seed`: events are
    /// emitted in candidate order regardless of `opts.workers` (the
    /// evaluation pipeline buffers per-slot and flushes after each
    /// batch), and every trial's budget charge appears exactly once, so
    /// the charges in the stream sum to the session's spent budget.
    ///
    /// # Panics
    /// Panics if the technique name in the options is unknown (use
    /// [`TunerOptions::builder`] to reject that at construction), if the
    /// resume journal cannot be read or belongs to a different session
    /// (its header pins program, executor, seed, budget and the options
    /// signature), or if the checkpoint journal cannot be created.
    /// [`Tuner::try_run`] surfaces the same conditions as typed errors.
    pub fn run(&self, executor: &dyn Executor, program: &str, bus: &TelemetryBus) -> TuningResult {
        self.try_run(executor, program, bus)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Tuner::run`], but session-startup failures (unknown technique,
    /// unreadable or foreign resume journal, uncreatable checkpoint) come
    /// back as a [`SessionError`] instead of a panic — the entry point a
    /// long-running service uses so one bad submission cannot kill it.
    pub fn try_run(
        &self,
        executor: &dyn Executor,
        program: &str,
        bus: &TelemetryBus,
    ) -> Result<TuningResult, SessionError> {
        let opts = &self.opts;
        let manipulator = self.build_manipulator();
        let mut technique: Box<dyn Technique> = TechniqueSet::by_name(&opts.technique)
            .ok_or_else(|| SessionError::UnknownTechnique(opts.technique.clone()))?;
        let budget = Budget::new(opts.budget);
        let mut rng = Xoshiro256pp::seed_from_u64(opts.seed);
        let registry = executor.registry();
        let mut pipeline = EvalPipeline::new(opts.protocol, opts.cache);
        let racing = opts.protocol.racing.is_some();

        // Surrogate screening: enabled by an explicit policy or by the
        // `model:` technique-name prefix (default policy). The surrogate
        // seed is derived from — not equal to — the master seed, so its
        // bootstrap streams are independent of the search RNG.
        let model_policy = match (opts.model, opts.technique.starts_with("model:")) {
            (Some(p), _) => Some(p),
            (None, true) => Some(ModelPolicy::default()),
            (None, false) => None,
        };
        let mut model = model_policy.map(|policy| ModelGuide {
            policy,
            encoder: FeatureEncoder::new(registry, jtune_flagtree::hotspot_tree()),
            surrogate: Surrogate::new(opts.seed ^ 0x004d_4f44_454c),
            screened: 0,
            fits: 0,
        });

        // Crash-safety wiring. The resume journal is loaded *before* the
        // checkpoint writer is created: with both on the same path (the
        // normal kill-and-restart cycle) creating the writer truncates
        // the file, and replayed trials are re-recorded as they are
        // served, rebuilding a complete journal.
        let header = SessionHeader {
            program: program.to_string(),
            executor: executor.describe(),
            seed: opts.seed,
            budget_nanos: opts.budget.as_nanos(),
            signature: opts.signature(),
        };
        let mut trials_replayed: u64 = 0;
        if let Some(path) = &opts.resume {
            // Compact while loading: the journal is rewritten as exactly
            // the header plus the complete trial prefix, so repeated
            // kill/resume cycles never accumulate torn tails or dead
            // bytes — even when this session does not checkpoint again.
            let (found, entries) =
                journal::compact(path).map_err(|e| SessionError::ResumeLoad {
                    path: path.clone(),
                    error: e,
                })?;
            if found != header {
                return Err(SessionError::ResumeMismatch {
                    path: path.clone(),
                    journal: Box::new(found),
                    session: Box::new(header),
                });
            }
            trials_replayed = entries.len() as u64;
            pipeline.set_replay(ReplayLog::new(entries));
        }
        if let Some(path) = &opts.checkpoint {
            let writer = JournalWriter::create(path, &header).map_err(|e| {
                SessionError::CheckpointCreate {
                    path: path.clone(),
                    error: e,
                }
            })?;
            pipeline.set_journal(writer);
        }

        bus.emit(&TraceEvent::SessionStarted {
            program: program.to_string(),
            executor: executor.describe(),
            technique: opts.technique.clone(),
            manipulator: opts.manipulator.label().to_string(),
            budget_secs: opts.budget.as_secs_f64(),
            seed: opts.seed,
            workers: opts.workers as u64,
            batch: opts.batch as u64,
            repeats: opts.protocol.repeats.max(1) as u64,
        });
        if opts.resume.is_some() {
            // Ephemeral: tells live observers this process is replaying,
            // but is never serialised (the resumed trace must stay
            // byte-identical to an uninterrupted run's).
            bus.emit(&TraceEvent::SessionResumed { trials_replayed });
        }

        let mut trials: Vec<TrialRecord> = Vec::new();
        let mut seen: HashSet<u64> = HashSet::new();
        let mut eval_index: u64 = 0;
        let mut last_technique: Option<String> = None;
        // Quarantine bookkeeping: consecutive deterministic-failure runs
        // per fingerprint, the quarantined set, and how many batches in a
        // row produced no usable score at all.
        let mut fail_streak: HashMap<u64, u32> = HashMap::new();
        let mut quarantined: HashSet<u64> = HashSet::new();
        let mut all_failed_batches: u32 = 0;

        // ---- baseline: the default configuration ----
        let mut default_config = JvmConfig::default_for(registry);
        manipulator.canonicalize(&mut default_config);
        seen.insert(default_config.fingerprint());
        let ev0 = pipeline.prime(executor, &default_config, opts.seed);
        let charge0 = budget.charge_observed(ev0.cost);
        emit_trial(bus, 0, "default", &[], &ev0, charge0.spent_after);
        if charge0.crossed_limit {
            bus.emit(&TraceEvent::BudgetExhausted {
                spent_secs: charge0.spent_after.as_secs_f64(),
                total_secs: opts.budget.as_secs_f64(),
                evaluations: 1,
            });
        }
        let default_score = match ev0.score {
            Some(s) => s.as_secs_f64(),
            None => {
                // The default JVM fails the workload (can genuinely happen:
                // live set over the default heap). Report a degenerate
                // session; callers see default == best == infinity-ish.
                bus.emit(&TraceEvent::SessionFinished {
                    program: program.to_string(),
                    default_secs: f64::INFINITY,
                    best_secs: f64::INFINITY,
                    improvement_percent: 0.0,
                    evaluations: 1,
                    spent_secs: charge0.spent_after.as_secs_f64(),
                    best_delta: Vec::new(),
                });
                bus.flush();
                let session = SessionRecord {
                    program: program.to_string(),
                    executor: executor.describe(),
                    budget_mins: opts.budget.as_mins_f64(),
                    default_secs: f64::INFINITY,
                    best_secs: f64::INFINITY,
                    best_delta: Vec::new(),
                    evaluations: 1,
                    distinct: 1,
                    cache_hits: 0,
                    aborted: 0,
                    retried: pipeline.stats().retried,
                    quarantined: 0,
                    suppressed: 0,
                    saved_secs: 0.0,
                    screened: 0,
                    model_fits: 0,
                    trials,
                };
                return Ok(TuningResult {
                    session,
                    best_config: default_config,
                    suspended: false,
                });
            }
        };
        trials.push(TrialRecord {
            index: 0,
            at_secs: charge0.spent_after.as_secs_f64(),
            score_secs: Some(default_score),
            technique: "default".to_string(),
            delta: Vec::new(),
        });
        if let Some(g) = model.as_mut() {
            g.observe(&default_config, Some(default_score), default_score);
        }
        eval_index += 1;
        emit_checkpoint(opts, &pipeline, &budget, bus);

        let mut best: (JvmConfig, f64) = (default_config.clone(), default_score);
        // Racing baseline: the best-so-far candidate's raw samples,
        // frozen at the start of each batch so abort decisions are
        // independent of worker scheduling.
        let mut best_samples: Vec<f64> = ev0.samples.iter().map(|s| s.as_secs_f64()).collect();

        // ---- structural priming ----
        // A structure-aware manipulator enumerates its selector
        // combinations; measuring them first captures the collector/JIT-
        // mode headroom deterministically before free search begins.
        let primers: Vec<JvmConfig> = manipulator
            .primers()
            .into_iter()
            .filter(|c| seen.insert(c.fingerprint()))
            .collect();
        if !primers.is_empty() && budget.has_remaining() {
            bus.emit(&TraceEvent::RoundProposed {
                round: 0,
                technique: "primer".to_string(),
                candidates: primers.len() as u64,
            });
            let baseline = best_samples.clone();
            let report = {
                let _span = bus.span(phase::MEASURE, 0);
                pipeline.evaluate_batch(
                    executor,
                    &primers,
                    opts.seed ^ 0x5052_494d,
                    opts.workers,
                    racing.then_some(baseline.as_slice()),
                    bus,
                )
            };
            for (candidate, ev) in primers.iter().zip(report.evals.iter()) {
                let charge = budget.charge_observed(ev.cost);
                let score_secs = ev.score.map(|s| s.as_secs_f64());
                let delta = candidate.to_args(registry);
                emit_trial(bus, eval_index, "primer", &delta, ev, charge.spent_after);
                if charge.crossed_limit {
                    bus.emit(&TraceEvent::BudgetExhausted {
                        spent_secs: charge.spent_after.as_secs_f64(),
                        total_secs: opts.budget.as_secs_f64(),
                        evaluations: eval_index + 1,
                    });
                }
                trials.push(TrialRecord {
                    index: eval_index,
                    at_secs: charge.spent_after.as_secs_f64(),
                    score_secs,
                    technique: "primer".to_string(),
                    delta,
                });
                eval_index += 1;
                if let Some(g) = model.as_mut() {
                    g.observe(candidate, score_secs, default_score);
                }
                if let Some(s) = score_secs {
                    if s < best.1 {
                        best = (candidate.clone(), s);
                        best_samples = ev.samples.iter().map(|x| x.as_secs_f64()).collect();
                        bus.emit(&TraceEvent::BestImproved {
                            index: eval_index - 1,
                            score_secs: s,
                            improvement_percent: stats::improvement_percent(default_score, s),
                            delta: best.0.to_args(registry),
                        });
                    }
                }
                note_quarantine(
                    opts.quarantine,
                    candidate.fingerprint(),
                    ev,
                    &mut fail_streak,
                    &mut quarantined,
                    bus,
                );
            }
            emit_checkpoint(opts, &pipeline, &budget, bus);
        }

        // ---- search rounds ----
        let cache_enabled = opts.cache.is_some();
        let mut round: u64 = 0;
        let mut suspended = false;
        'outer: while budget.has_remaining() {
            // Cooperative suspension (daemon drain): stop cleanly at a
            // batch boundary. Everything measured so far is journaled, so
            // a later resume completes the session byte-identically.
            if let Some(flag) = &opts.stop {
                if flag.load(std::sync::atomic::Ordering::SeqCst) {
                    suspended = true;
                    break 'outer;
                }
            }
            if let Some(cap) = opts.max_evaluations {
                if eval_index >= cap {
                    break;
                }
            }
            round += 1;
            let batch_size = opts.batch.max(1);
            // With the surrogate warmed up, techniques over-propose and
            // the model keeps the best `batch_size`. Before warmup (and
            // with the model off) proposals equal measurement slots, so
            // the RNG stream matches a model-free session exactly until
            // the first screened round.
            let screening = model
                .as_ref()
                .is_some_and(|g| g.surrogate.ready(g.policy.warmup));
            let propose_n = match (&model, screening) {
                (Some(g), true) => g.policy.proposals_for(batch_size),
                _ => batch_size,
            };
            // With the cache on, a technique re-proposing a measured
            // config gets it served from memory instead of a random
            // substitute — but at most half a round, so every round
            // still spends real budget (no zero-cost livelock).
            let reuse_cap = batch_size.div_ceil(2);
            let mut reused = 0usize;
            let mut candidates: Vec<JvmConfig> = Vec::with_capacity(propose_n);
            {
                let _span = bus.span(phase::PROPOSE, round);
                let state = SearchState {
                    manipulator: manipulator.as_ref(),
                    best: Some(&best),
                    default_score,
                    budget_fraction: budget.fraction_spent(),
                    reuse_fraction: pipeline.stats().reuse_fraction(),
                };
                for _ in 0..propose_n {
                    let mut fresh = None;
                    let mut last_dup = None;
                    for _attempt in 0..8 {
                        let c = technique.propose(&state, &mut rng);
                        if seen.insert(c.fingerprint()) {
                            fresh = Some(c);
                            break;
                        }
                        last_dup = Some(c);
                    }
                    // Re-serving a duplicate from cache is only worth it
                    // when the config is not quarantined: a fingerprint
                    // that keeps failing deterministically must not be
                    // re-proposed.
                    let dup_allowed = cache_enabled
                        && reused < reuse_cap
                        && last_dup
                            .as_ref()
                            .is_some_and(|c| !quarantined.contains(&c.fingerprint()));
                    let c = match fresh {
                        Some(c) => c,
                        None if dup_allowed => {
                            reused += 1;
                            last_dup.expect("eight attempts, all duplicates")
                        }
                        None => {
                            // The technique is stuck on duplicates: inject
                            // fresh randomness.
                            let c = manipulator.random(&mut rng);
                            seen.insert(c.fingerprint());
                            c
                        }
                    };
                    candidates.push(c);
                }
            }
            if screening {
                let _span = bus.span(phase::SCREEN, round);
                let g = model.as_mut().expect("screening implies a model");
                let fit = {
                    let _fit_span = bus.span(phase::FIT, round);
                    g.surrogate.fit()
                };
                if fit.refit {
                    g.fits += 1;
                }
                bus.emit(&TraceEvent::ModelFit {
                    round,
                    samples: fit.samples as u64,
                    refit: fit.refit,
                });
                if candidates.len() > batch_size {
                    let scores: Vec<_> = candidates
                        .iter()
                        .map(|c| g.surrogate.predict(&g.encoder.encode(c)))
                        .collect();
                    let outcome = screen(&scores, batch_size, g.policy.kappa);
                    for r in &outcome.rejected {
                        let rejected = &candidates[r.index];
                        bus.emit(&TraceEvent::CandidateScreened {
                            round,
                            fingerprint: rejected.fingerprint(),
                            predicted_secs: r.predicted_secs,
                            acquisition: r.acquisition,
                        });
                        // The technique will never get feedback for this
                        // proposal; let it forget the pending state.
                        technique.retract(rejected);
                        g.screened += 1;
                    }
                    candidates = outcome
                        .kept
                        .into_iter()
                        .map(|i| candidates[i].clone())
                        .collect();
                }
            }
            bus.emit(&TraceEvent::RoundProposed {
                round,
                technique: technique.name().to_string(),
                candidates: candidates.len() as u64,
            });

            let baseline = best_samples.clone();
            let report = {
                let _span = bus.span(phase::MEASURE, round);
                pipeline.evaluate_batch(
                    executor,
                    &candidates,
                    opts.seed ^ eval_index,
                    opts.workers,
                    racing.then_some(baseline.as_slice()),
                    bus,
                )
            };

            for (candidate, ev) in candidates.iter().zip(report.evals.iter()) {
                let charge = budget.charge_observed(ev.cost);
                let score_secs = ev.score.map(|s| s.as_secs_f64());
                // Attribute the trial to the proposing arm (the ensemble
                // routes to inner techniques) before feedback clears the
                // routing entry.
                let label = technique.proposer(candidate).to_string();
                if let Some(prev) = &last_technique {
                    if *prev != label {
                        bus.emit(&TraceEvent::TechniqueSwitched {
                            index: eval_index,
                            from: prev.clone(),
                            to: label.clone(),
                        });
                    }
                }
                last_technique = Some(label.clone());
                let delta = candidate.to_args(registry);
                emit_trial(bus, eval_index, &label, &delta, ev, charge.spent_after);
                if charge.crossed_limit {
                    bus.emit(&TraceEvent::BudgetExhausted {
                        spent_secs: charge.spent_after.as_secs_f64(),
                        total_secs: opts.budget.as_secs_f64(),
                        evaluations: eval_index + 1,
                    });
                }
                trials.push(TrialRecord {
                    index: eval_index,
                    at_secs: charge.spent_after.as_secs_f64(),
                    score_secs,
                    technique: label,
                    delta,
                });
                eval_index += 1;
                {
                    let state = SearchState {
                        manipulator: manipulator.as_ref(),
                        best: Some(&best),
                        default_score,
                        budget_fraction: budget.fraction_spent(),
                        reuse_fraction: pipeline.stats().reuse_fraction(),
                    };
                    technique.feedback(candidate, score_secs, &state);
                }
                if let Some(g) = model.as_mut() {
                    g.observe(candidate, score_secs, default_score);
                }
                if let Some(s) = score_secs {
                    if s < best.1 {
                        best = (candidate.clone(), s);
                        best_samples = ev.samples.iter().map(|x| x.as_secs_f64()).collect();
                        bus.emit(&TraceEvent::BestImproved {
                            index: eval_index - 1,
                            score_secs: s,
                            improvement_percent: stats::improvement_percent(default_score, s),
                            delta: best.0.to_args(registry),
                        });
                    }
                }
                note_quarantine(
                    opts.quarantine,
                    candidate.fingerprint(),
                    ev,
                    &mut fail_streak,
                    &mut quarantined,
                    bus,
                );
                if let Some(cap) = opts.max_evaluations {
                    if eval_index >= cap {
                        break 'outer;
                    }
                }
            }
            emit_checkpoint(opts, &pipeline, &budget, bus);

            // Graceful degradation (quarantine sessions only, to keep
            // legacy traces byte-stable): when whole batches keep
            // producing no usable score — a broken executor, not an
            // unlucky candidate — stop searching and keep the incumbent
            // rather than burning the rest of the budget on failures.
            if opts.quarantine.is_some() {
                if report.evals.iter().all(|ev| ev.score.is_none()) {
                    all_failed_batches += 1;
                    if all_failed_batches >= 3 {
                        break 'outer;
                    }
                } else {
                    all_failed_batches = 0;
                }
            }
        }

        let stats = pipeline.stats();
        let session = SessionRecord {
            program: program.to_string(),
            executor: executor.describe(),
            budget_mins: opts.budget.as_mins_f64(),
            default_secs: default_score,
            best_secs: best.1,
            best_delta: best.0.to_args(registry),
            evaluations: eval_index,
            distinct: stats.fresh,
            cache_hits: stats.cache_hits,
            aborted: stats.aborted,
            retried: stats.retried,
            quarantined: quarantined.len() as u64,
            suppressed: stats.suppressed,
            saved_secs: stats.saved.as_secs_f64(),
            screened: model.as_ref().map_or(0, |g| g.screened),
            model_fits: model.as_ref().map_or(0, |g| g.fits),
            trials,
        };
        if !suspended {
            // A suspended session is not finished: the terminal event is
            // withheld so the eventual resumed completion emits it in the
            // right place and the final trace stays byte-identical to an
            // uninterrupted run's.
            bus.emit(&TraceEvent::SessionFinished {
                program: program.to_string(),
                default_secs: default_score,
                best_secs: best.1,
                improvement_percent: session.improvement_percent(),
                evaluations: eval_index,
                spent_secs: budget.spent().as_secs_f64(),
                best_delta: session.best_delta.clone(),
            });
        }
        bus.flush();
        Ok(TuningResult {
            session,
            best_config: best.0,
            suspended,
        })
    }
}

/// Per-session surrogate-screening state: the policy, the encoder over
/// the executor's registry, the surrogate itself, and the counters that
/// land in the [`SessionRecord`].
struct ModelGuide<'a> {
    policy: ModelPolicy,
    encoder: FeatureEncoder<'a>,
    surrogate: Surrogate,
    screened: u64,
    fits: u64,
}

impl ModelGuide<'_> {
    /// Feed one completed trial to the surrogate. Failed candidates are
    /// recorded at twice the default score — "much worse than stock" —
    /// so the model learns to avoid their neighbourhood instead of
    /// treating them as unexplored.
    fn observe(&mut self, config: &JvmConfig, score_secs: Option<f64>, default_score: f64) {
        let y = score_secs.unwrap_or(2.0 * default_score);
        self.surrogate.observe(self.encoder.encode(config), y);
    }
}

/// Emit a [`TraceEvent::CheckpointWritten`] marker when the session is
/// checkpointing. Emitted at the same loop points in an original and a
/// resumed run, so the marker survives in the (byte-identical) trace.
fn emit_checkpoint(
    opts: &TunerOptions,
    pipeline: &EvalPipeline,
    budget: &Budget,
    bus: &TelemetryBus,
) {
    if opts.checkpoint.is_some() {
        let _span = bus.span(phase::CHECKPOINT, pipeline.journal_trials());
        bus.emit(&TraceEvent::CheckpointWritten {
            trials: pipeline.journal_trials(),
            spent_secs: budget.spent().as_secs_f64(),
        });
    }
}

/// Update quarantine bookkeeping after one evaluated candidate. Runs
/// that failed with a *deterministic* error extend the fingerprint's
/// streak; a scored evaluation clears it; crossing the policy threshold
/// quarantines the fingerprint and emits [`TraceEvent::Quarantined`]
/// once. Transient failures (even retry-exhausted ones) never count:
/// they are bad luck, not proof the configuration is broken.
fn note_quarantine(
    policy: Option<QuarantinePolicy>,
    fingerprint: u64,
    ev: &Evaluation,
    fail_streak: &mut HashMap<u64, u32>,
    quarantined: &mut HashSet<u64>,
    bus: &TelemetryBus,
) {
    let Some(policy) = policy else { return };
    if quarantined.contains(&fingerprint) {
        return;
    }
    match &ev.error {
        Some(e) if !e.is_transient() => {
            let failed = ev.runs.saturating_sub(ev.samples.len() as u32).max(1);
            let streak = fail_streak.entry(fingerprint).or_insert(0);
            *streak += failed;
            if *streak >= policy.streak {
                quarantined.insert(fingerprint);
                bus.emit(&TraceEvent::Quarantined {
                    fingerprint,
                    failures: *streak as u64,
                    error_kind: e.kind().to_string(),
                });
            }
        }
        Some(_) => {}
        None => {
            fail_streak.remove(&fingerprint);
        }
    }
}

/// Emit one [`TraceEvent::TrialEvaluated`] for an evaluation.
fn emit_trial(
    bus: &TelemetryBus,
    index: u64,
    technique: &str,
    delta: &[String],
    ev: &Evaluation,
    spent_after: SimDuration,
) {
    if !bus.is_enabled() {
        return;
    }
    bus.emit(&TraceEvent::TrialEvaluated {
        index,
        technique: technique.to_string(),
        delta: delta.to_vec(),
        repeat_secs: ev.samples.iter().map(|s| s.as_secs_f64()).collect(),
        score_secs: ev.score.map(|s| s.as_secs_f64()),
        cost_secs: ev.cost.as_secs_f64(),
        budget_spent_secs: spent_after.as_secs_f64(),
        gc_pause_total_ms: ev.counters.map(|c| c.gc_pause_total.as_millis_f64()),
        gc_collections: ev.counters.map(|c| c.gc_collections),
        jit_compile_ms: ev.counters.map(|c| c.jit_compile_time.as_millis_f64()),
        jit_compiles: ev.counters.map(|c| c.jit_compiles),
        error: ev.error.as_ref().map(|e| e.message().to_string()),
        error_kind: ev.error.as_ref().map(|e| e.kind().to_string()),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_harness::SimExecutor;
    use jtune_jvmsim::Workload;

    fn quick_opts() -> TunerOptions {
        TunerOptions {
            budget: SimDuration::from_mins(3),
            workers: 4,
            batch: 4,
            seed: 1,
            ..TunerOptions::default()
        }
    }

    fn startup_workload() -> Workload {
        let mut w = Workload::baseline("tuner-test");
        w.total_work = 4e8;
        w.hot_methods = 1500;
        w.hotness_skew = 0.6;
        w.alloc_rate = 2.5;
        w
    }

    fn run_quiet(opts: TunerOptions, ex: &SimExecutor) -> TuningResult {
        Tuner::new(opts).run(ex, "t", &TelemetryBus::disabled())
    }

    #[test]
    fn tuner_never_reports_worse_than_default() {
        let ex = SimExecutor::new(startup_workload());
        let result = run_quiet(quick_opts(), &ex);
        assert!(result.session.best_secs <= result.session.default_secs);
        assert!(result.improvement_percent() >= 0.0);
        assert!(result.session.evaluations > 1);
        assert_eq!(
            result.session.trials.len() as u64,
            result.session.evaluations
        );
        // Legacy sessions measure every trial.
        assert_eq!(result.session.distinct, result.session.evaluations);
        assert_eq!(result.session.cache_hits, 0);
        assert_eq!(result.session.aborted, 0);
    }

    #[test]
    fn tuner_finds_real_improvement_on_startup_workload() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.budget = SimDuration::from_mins(15);
        let result = run_quiet(opts, &ex);
        assert!(
            result.improvement_percent() > 3.0,
            "only {:.1}% improvement",
            result.improvement_percent()
        );
        assert!(!result.session.best_delta.is_empty());
    }

    #[test]
    fn tuning_is_deterministic_given_seed() {
        let ex = SimExecutor::new(startup_workload());
        let a = run_quiet(quick_opts(), &ex);
        let b = run_quiet(quick_opts(), &ex);
        assert_eq!(a.session.best_secs, b.session.best_secs);
        assert_eq!(a.session.evaluations, b.session.evaluations);
        assert_eq!(a.session.best_delta, b.session.best_delta);
        let mut opts = quick_opts();
        opts.seed = 2;
        let c = run_quiet(opts, &ex);
        assert_ne!(a.session.best_delta, c.session.best_delta);
    }

    #[test]
    fn max_evaluations_caps_the_session() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.max_evaluations = Some(9);
        let result = run_quiet(opts, &ex);
        assert!(result.session.evaluations <= 9);
    }

    #[test]
    fn budget_is_respected() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.budget = SimDuration::from_secs(30);
        let batch = opts.batch;
        let result = run_quiet(opts, &ex);
        // All but the last in-flight batch must finish within budget; the
        // recorded spend can straddle by at most one batch.
        let last = result.session.trials.last().unwrap();
        assert!(
            last.at_secs < 30.0 + 5.0 * (batch as f64 + 1.0) * 60.0,
            "spent {} s",
            last.at_secs
        );
        assert!(result.session.evaluations < 500);
    }

    #[test]
    fn every_manipulator_kind_runs() {
        let ex = SimExecutor::new(startup_workload());
        for kind in [
            ManipulatorKind::Hierarchical,
            ManipulatorKind::Flat,
            ManipulatorKind::GcSubset,
        ] {
            let mut opts = quick_opts();
            opts.manipulator = kind;
            opts.max_evaluations = Some(12);
            let result = run_quiet(opts, &ex);
            assert!(result.session.best_secs <= result.session.default_secs);
        }
    }

    #[test]
    fn solo_techniques_run() {
        let ex = SimExecutor::new(startup_workload());
        for name in TechniqueSet::names() {
            let mut opts = quick_opts();
            opts.technique = name.to_string();
            opts.max_evaluations = Some(10);
            let result = run_quiet(opts, &ex);
            assert!(
                result.session.best_secs <= result.session.default_secs,
                "{name} regressed"
            );
        }
    }

    #[test]
    #[should_panic(expected = "unknown technique")]
    fn unknown_technique_panics() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.technique = "alchemy".to_string();
        let _ = run_quiet(opts, &ex);
    }

    #[test]
    fn default_failing_workload_reports_degenerate_session() {
        let mut w = startup_workload();
        // Live set far beyond the default 1 GB heap, with enough allocation
        // to actually reach it: the default config OOMs.
        w.live_set = 3e9;
        w.nursery_survival = 0.6;
        w.alloc_rate = 10.0;
        w.total_work = 2e9;
        let ex = SimExecutor::new(w);
        let result = run_quiet(quick_opts(), &ex);
        assert!(result.session.default_secs.is_infinite());
        assert_eq!(result.session.evaluations, 1);
    }

    #[test]
    fn builder_validates_at_construction() {
        assert!(TunerOptions::builder().build().is_ok());
        assert_eq!(
            TunerOptions::builder().batch(0).build().unwrap_err(),
            OptionsError::ZeroBatch
        );
        assert_eq!(
            TunerOptions::builder().workers(0).build().unwrap_err(),
            OptionsError::ZeroWorkers
        );
        assert_eq!(
            TunerOptions::builder()
                .technique("alchemy")
                .build()
                .unwrap_err(),
            OptionsError::UnknownTechnique("alchemy".into())
        );
        assert_eq!(
            TunerOptions::builder()
                .cache(CachePolicy { recharge: 1.5 })
                .build()
                .unwrap_err(),
            OptionsError::InvalidRecharge(1.5)
        );
        assert_eq!(
            TunerOptions::builder()
                .racing(Racing {
                    min_repeats: 0,
                    alpha: 0.2
                })
                .build()
                .unwrap_err(),
            OptionsError::ZeroMinRepeats
        );
        assert_eq!(
            TunerOptions::builder()
                .racing(Racing {
                    min_repeats: 2,
                    alpha: 1.0
                })
                .build()
                .unwrap_err(),
            OptionsError::InvalidAlpha(1.0)
        );
        let opts = TunerOptions::builder()
            .budget(SimDuration::from_mins(5))
            .workers(2)
            .batch(8)
            .seed(9)
            .technique("random")
            .cache(CachePolicy::default())
            .racing(Racing::default())
            .max_evaluations(40)
            .build()
            .expect("valid options");
        assert_eq!(opts.workers, 2);
        assert_eq!(opts.batch, 8);
        assert!(opts.cache.is_some());
        assert!(opts.protocol.racing.is_some());
    }

    #[test]
    fn fault_tolerance_options_validate() {
        assert_eq!(
            TunerOptions::builder()
                .retry(jtune_harness::RetryPolicy {
                    max_retries: 2,
                    backoff: 0.5,
                })
                .build()
                .unwrap_err(),
            OptionsError::InvalidBackoff(0.5)
        );
        assert_eq!(
            TunerOptions::builder()
                .quarantine(QuarantinePolicy { streak: 0 })
                .build()
                .unwrap_err(),
            OptionsError::ZeroQuarantineStreak
        );
        let opts = TunerOptions::builder()
            .fail_fast(false)
            .retry(jtune_harness::RetryPolicy::default())
            .quarantine(QuarantinePolicy::default())
            .checkpoint("/tmp/j.jsonl")
            .resume("/tmp/j.jsonl")
            .build()
            .expect("valid fault-tolerance options");
        assert!(!opts.protocol.fail_fast);
        assert!(opts.protocol.retry.is_some());
        assert!(opts.quarantine.is_some());
        assert_eq!(opts.checkpoint, opts.resume);
    }

    #[test]
    fn signature_tracks_stream_affecting_options() {
        let base = TunerOptions::default().signature();
        let mut opts = TunerOptions {
            workers: 16,
            ..TunerOptions::default()
        };
        assert_eq!(
            opts.signature(),
            base,
            "workers must not change the signature"
        );
        opts.quarantine = Some(QuarantinePolicy::default());
        assert_ne!(opts.signature(), base);
        let mut opts = TunerOptions::default();
        opts.protocol.retry = Some(jtune_harness::RetryPolicy::default());
        assert_ne!(opts.signature(), base);
        let mut opts = TunerOptions::default();
        opts.protocol.fail_fast = false;
        assert_ne!(opts.signature(), base);
        let opts = TunerOptions {
            model: Some(ModelPolicy::default()),
            ..TunerOptions::default()
        };
        assert_ne!(
            opts.signature(),
            base,
            "screening changes the trial stream, so the journal must be pinned to it"
        );
    }

    fn temp_journal(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("jtune-tuner-{}-{name}.jsonl", std::process::id()))
    }

    #[test]
    fn killed_session_resumes_to_the_same_result() {
        let ex = SimExecutor::new(startup_workload());
        let path = temp_journal("resume");
        let mut opts = quick_opts();
        opts.max_evaluations = Some(20);
        opts.checkpoint = Some(path.clone());
        let original = run_quiet(opts.clone(), &ex);

        // Kill the session at trial 7: truncate the journal to a prefix.
        let full = std::fs::read_to_string(&path).unwrap();
        let prefix: Vec<&str> = full.lines().take(8).collect(); // header + 7 trials
        std::fs::write(&path, prefix.join("\n") + "\n").unwrap();

        opts.resume = Some(path.clone());
        let resumed = run_quiet(opts, &ex);
        assert_eq!(resumed.session, original.session);
        assert_eq!(
            resumed.best_config.fingerprint(),
            original.best_config.fingerprint()
        );
        // The same-path checkpoint rebuilt a complete journal.
        let rebuilt = std::fs::read_to_string(&path).unwrap();
        assert_eq!(rebuilt, full, "rebuilt journal should be byte-identical");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn suspended_session_resumes_to_the_same_result() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        let ex = SimExecutor::new(startup_workload());
        let path = temp_journal("suspend");
        let mut opts = quick_opts();
        opts.max_evaluations = Some(20);
        opts.checkpoint = Some(path.clone());
        let original = run_quiet(opts.clone(), &ex);
        assert!(!original.suspended);

        // Drain: the stop flag is already up, so the session measures the
        // baseline + primer batch and suspends at the first batch boundary.
        let flag = Arc::new(AtomicBool::new(true));
        opts.stop = Some(flag);
        let drained = run_quiet(opts.clone(), &ex);
        assert!(drained.suspended);
        assert!(drained.session.evaluations < original.session.evaluations);

        // Restart: resume the journal with the flag down; the completed
        // session must be indistinguishable from the uninterrupted one.
        opts.stop = None;
        opts.resume = Some(path.clone());
        let resumed = run_quiet(opts, &ex);
        assert!(!resumed.suspended);
        assert_eq!(resumed.session, original.session);
        assert_eq!(
            resumed.best_config.fingerprint(),
            original.best_config.fingerprint()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn twice_resumed_journal_retains_no_dead_bytes() {
        let ex = SimExecutor::new(startup_workload());
        let path = temp_journal("compact");
        let mut opts = quick_opts();
        opts.max_evaluations = Some(20);
        opts.checkpoint = Some(path.clone());
        let original = run_quiet(opts.clone(), &ex);
        let full = std::fs::read_to_string(&path).unwrap();

        // Kill #1: 7 complete trials plus a torn line of dead bytes.
        let prefix: Vec<&str> = full.lines().take(8).collect();
        std::fs::write(
            &path,
            prefix.join("\n") + "\n{\"type\":\"Trial\",\"fp\":9,\"sc",
        )
        .unwrap();
        opts.resume = Some(path.clone());
        let first = run_quiet(opts.clone(), &ex);
        assert_eq!(first.session, original.session);

        // Kill #2: again, on the rebuilt journal.
        let rebuilt = std::fs::read_to_string(&path).unwrap();
        assert_eq!(rebuilt, full, "checkpoint+resume rebuilds the journal");
        let prefix: Vec<&str> = rebuilt.lines().take(12).collect();
        std::fs::write(&path, prefix.join("\n") + "\n{torn").unwrap();

        // Resume #2 without checkpointing: only the on-load compaction
        // rewrites the file, and it must leave exactly the complete
        // prefix — the dead tail bytes are gone.
        opts.checkpoint = None;
        let second = run_quiet(opts, &ex);
        assert_eq!(second.session, original.session);
        let compacted = std::fs::read_to_string(&path).unwrap();
        assert_eq!(compacted, prefix.join("\n") + "\n");
        assert!(!compacted.contains("{torn"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn try_run_surfaces_session_errors_without_panicking() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.technique = "alchemy".to_string();
        let err = Tuner::new(opts)
            .try_run(&ex, "t", &TelemetryBus::disabled())
            .unwrap_err();
        assert!(matches!(err, SessionError::UnknownTechnique(_)));
        assert!(err.to_string().contains("unknown technique"));

        let mut opts = quick_opts();
        opts.resume = Some(std::path::PathBuf::from("/nonexistent/journal.jsonl"));
        let err = Tuner::new(opts)
            .try_run(&ex, "t", &TelemetryBus::disabled())
            .unwrap_err();
        assert!(matches!(err, SessionError::ResumeLoad { .. }));
    }

    #[test]
    fn resume_refuses_a_foreign_journal() {
        let ex = SimExecutor::new(startup_workload());
        let path = temp_journal("foreign");
        let mut opts = quick_opts();
        opts.max_evaluations = Some(6);
        opts.checkpoint = Some(path.clone());
        let _ = run_quiet(opts.clone(), &ex);

        // A different seed is a different session: the header mismatch
        // must refuse to resume rather than silently fork the trace.
        opts.seed = 999;
        opts.checkpoint = None;
        opts.resume = Some(path.clone());
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_quiet(opts, &ex);
        }));
        assert!(caught.is_err(), "foreign journal accepted");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pipeline_features_stretch_the_budget() {
        let ex = SimExecutor::new(startup_workload());
        let mut legacy_opts = quick_opts();
        legacy_opts.budget = SimDuration::from_mins(10);
        let legacy = run_quiet(legacy_opts.clone(), &ex);

        let mut adaptive_opts = legacy_opts.clone();
        adaptive_opts.cache = Some(CachePolicy::default());
        adaptive_opts.protocol.racing = Some(Racing::default());
        let adaptive = run_quiet(adaptive_opts, &ex);

        // Same budget, more distinct configurations measured, and a
        // result no worse than what the fixed pipeline found.
        assert!(
            adaptive.session.distinct > legacy.session.distinct,
            "adaptive {} vs legacy {}",
            adaptive.session.distinct,
            legacy.session.distinct
        );
        assert!(adaptive.session.aborted > 0, "racing never fired");
        assert!(adaptive.session.best_secs <= adaptive.session.default_secs);
    }

    #[test]
    fn racing_only_session_still_improves_and_reports_aborts() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.budget = SimDuration::from_mins(10);
        opts.protocol.racing = Some(Racing::default());
        let result = run_quiet(opts, &ex);
        assert!(result.session.best_secs <= result.session.default_secs);
        assert!(result.session.aborted > 0, "racing never fired");
        // Aborted trials are censored, never best.
        assert!(result.session.best_secs.is_finite());
        // Every trial was measured (no cache): distinct == evaluations.
        assert_eq!(result.session.distinct, result.session.evaluations);
    }

    #[test]
    fn model_screening_fires_and_is_deterministic_across_worker_counts() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.budget = SimDuration::from_mins(15);
        opts.model = Some(ModelPolicy::default());
        let narrow = run_quiet(opts.clone(), &ex);
        assert!(narrow.session.model_fits > 0, "surrogate never fitted");
        assert!(narrow.session.screened > 0, "screening never rejected");
        // Screening trims over-proposals back to the batch size, so the
        // number of real measurements is untouched by the model layer.
        assert_eq!(
            narrow.session.trials.len() as u64,
            narrow.session.evaluations
        );

        opts.workers = 8;
        let wide = run_quiet(opts, &ex);
        assert_eq!(
            wide.session, narrow.session,
            "screened trial stream must not depend on worker count"
        );
    }

    #[test]
    fn model_prefix_on_the_technique_enables_default_screening() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.budget = SimDuration::from_mins(15);
        opts.technique = "model:ensemble".to_string();
        assert!(opts.model.is_none());
        let result = run_quiet(opts, &ex);
        assert!(result.session.screened > 0, "prefix did not enable model");
    }

    #[test]
    fn killed_model_session_resumes_to_the_same_screening_decisions() {
        let ex = SimExecutor::new(startup_workload());
        let path = temp_journal("model-resume");
        let mut opts = quick_opts();
        opts.budget = SimDuration::from_mins(15);
        opts.model = Some(ModelPolicy {
            warmup: 6,
            ..ModelPolicy::default()
        });
        opts.checkpoint = Some(path.clone());
        let original = run_quiet(opts.clone(), &ex);
        assert!(original.session.screened > 0, "screening never rejected");

        // Kill mid-run: keep the header plus a prefix of trials. The
        // resumed session refits the surrogate from the replayed trials,
        // so every later screening decision must replay identically.
        let full = std::fs::read_to_string(&path).unwrap();
        let prefix: Vec<&str> = full.lines().take(12).collect();
        std::fs::write(&path, prefix.join("\n") + "\n").unwrap();

        opts.resume = Some(path.clone());
        let resumed = run_quiet(opts, &ex);
        assert_eq!(resumed.session, original.session);
        assert_eq!(resumed.session.screened, original.session.screened);
        assert_eq!(
            resumed.best_config.fingerprint(),
            original.best_config.fingerprint()
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn spans_are_live_only_and_leave_the_results_unchanged() {
        use jtune_telemetry::MemoryRecorder;
        use std::sync::Arc;

        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.max_evaluations = Some(12);

        let rec = Arc::new(MemoryRecorder::new());
        let bus = TelemetryBus::new().with(rec.clone()).with_spans(true);
        let spanned = Tuner::new(opts.clone()).run(&ex, "t", &bus);

        let events = rec.events();
        let opened = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::PhaseStarted { .. }))
            .count();
        let closed = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::PhaseEnded { .. }))
            .count();
        assert!(opened > 0, "no spans opened");
        assert!(
            closed >= opened,
            "unclosed spans (close-only spans may add more)"
        );
        let phases: std::collections::HashSet<&str> = events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::PhaseStarted { phase, .. } => Some(phase.as_str()),
                _ => None,
            })
            .collect();
        assert!(phases.contains("propose"));
        assert!(phases.contains("measure"));

        // Span events never reach the serialised trace, and never change
        // the session's results.
        assert!(events
            .iter()
            .filter(|e| matches!(
                e,
                TraceEvent::PhaseStarted { .. } | TraceEvent::PhaseEnded { .. }
            ))
            .all(|e| e.is_ephemeral()));
        let plain = run_quiet(opts, &ex);
        assert_eq!(spanned.session, plain.session);
    }

    #[test]
    fn portfolio_technique_runs_and_improves() {
        let ex = SimExecutor::new(startup_workload());
        let mut opts = quick_opts();
        opts.budget = SimDuration::from_mins(10);
        opts.technique = "portfolio".to_string();
        let result = run_quiet(opts, &ex);
        assert!(result.session.best_secs <= result.session.default_secs);
        assert!(result.session.evaluations > 1);
    }
}
