//! Simulated annealing.
//!
//! Accepts worse points with probability `exp(−Δ/T)` where Δ is the
//! *relative* regression (so the schedule is workload-scale-free) and the
//! temperature follows the tuning budget: hot early (wide exploration,
//! strong mutations), cold late (pure descent).

use jtune_flags::JvmConfig;

use crate::manipulator::RngDyn;
use crate::techniques::{SearchState, Technique};

/// Initial temperature: a 10 % regression is accepted with p ≈ e⁻¹ at t=0.
const T0: f64 = 0.10;
/// Final temperature at budget exhaustion.
const T1: f64 = 0.002;

/// Budget-scheduled simulated annealing.
pub struct SimulatedAnnealing {
    current: Option<(JvmConfig, f64)>,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        Self::new()
    }
}

impl SimulatedAnnealing {
    /// Fresh annealer.
    pub fn new() -> Self {
        SimulatedAnnealing { current: None }
    }

    fn temperature(state: &SearchState<'_>) -> f64 {
        let f = state.budget_fraction.clamp(0.0, 1.0);
        // Geometric interpolation from T0 to T1.
        T0 * (T1 / T0).powf(f)
    }
}

impl Technique for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn propose(&mut self, state: &SearchState<'_>, rng: &mut dyn RngDyn) -> JvmConfig {
        let t = Self::temperature(state);
        // Mutation strength cools with the temperature.
        let strength = (0.2 + 6.0 * t).min(1.0);
        let base = match &self.current {
            Some((c, _)) => c.clone(),
            None => state.anchor(),
        };
        state.manipulator.mutate(&base, rng, strength)
    }

    fn feedback(&mut self, config: &JvmConfig, score: Option<f64>, state: &SearchState<'_>) {
        let Some(s) = score else { return };
        let cur = self
            .current
            .as_ref()
            .map(|(_, c)| *c)
            .unwrap_or(state.default_score);
        let accept = if s <= cur {
            true
        } else {
            let delta = (s - cur) / cur.max(1e-9);
            let t = Self::temperature(state);
            // Metropolis criterion on relative regression. The acceptance
            // draw must be deterministic given the feedback sequence, so we
            // hash the candidate rather than consuming the shared RNG here.
            let u = (config.fingerprint() as f64 / u64::MAX as f64).clamp(0.0, 1.0);
            u < (-delta / t).exp()
        };
        if accept {
            self.current = Some((config.clone(), s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manipulator::HierarchicalManipulator;
    use jtune_util::Xoshiro256pp;

    fn state(m: &HierarchicalManipulator, frac: f64) -> SearchState<'_> {
        SearchState {
            manipulator: m,
            best: None,
            default_score: 10.0,
            budget_fraction: frac,
            reuse_fraction: 0.0,
        }
    }

    #[test]
    fn temperature_cools_with_budget() {
        let m = HierarchicalManipulator::new();
        let hot = SimulatedAnnealing::temperature(&state(&m, 0.0));
        let cold = SimulatedAnnealing::temperature(&state(&m, 1.0));
        assert!((hot - T0).abs() < 1e-12);
        assert!((cold - T1).abs() < 1e-12);
        assert!(hot > cold * 10.0);
    }

    #[test]
    fn always_accepts_improvements() {
        let m = HierarchicalManipulator::new();
        let st = state(&m, 0.9);
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut t = SimulatedAnnealing::new();
        let c = t.propose(&st, &mut rng);
        t.feedback(&c, Some(5.0), &st);
        assert_eq!(t.current.as_ref().unwrap().1, 5.0);
        let c2 = t.propose(&st, &mut rng);
        t.feedback(&c2, Some(4.0), &st);
        assert_eq!(t.current.as_ref().unwrap().1, 4.0);
    }

    #[test]
    fn cold_phase_rejects_large_regressions() {
        let m = HierarchicalManipulator::new();
        let st = state(&m, 1.0);
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut t = SimulatedAnnealing::new();
        let c = t.propose(&st, &mut rng);
        t.feedback(&c, Some(5.0), &st);
        // A 40 % regression at T1 has acceptance p ≈ e^-200 ≈ 0: never
        // accepted regardless of the hash draw.
        let mut rejected = true;
        for _ in 0..20 {
            let cand = t.propose(&st, &mut rng);
            t.feedback(&cand, Some(7.0), &st);
            if t.current.as_ref().unwrap().1 == 7.0 {
                rejected = false;
            }
        }
        assert!(rejected, "cold annealer accepted a 40% regression");
    }

    #[test]
    fn failures_are_ignored_not_adopted() {
        let m = HierarchicalManipulator::new();
        let st = state(&m, 0.5);
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut t = SimulatedAnnealing::new();
        let c = t.propose(&st, &mut rng);
        t.feedback(&c, None, &st);
        assert!(t.current.is_none());
    }
}
