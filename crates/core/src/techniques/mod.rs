//! Search techniques.
//!
//! Every technique implements [`Technique`]: the tuner asks it to
//! *propose* a candidate, evaluates the candidate (possibly in parallel
//! with others), and then *feeds back* the measured score. Techniques are
//! deliberately proposal-oriented rather than loop-oriented so the
//! AUC-bandit ensemble ([`ensemble`]) can interleave them and the tuner
//! can batch evaluations.
//!
//! Scores are run times in seconds — lower is better; `None` means the
//! candidate failed (crash / OOM), which techniques treat as "very bad"
//! rather than ignoring (a tuner that keeps proposing OOM configs burns
//! its budget, as it would on a real testbed).

pub mod anneal;
pub mod diffevo;
pub mod ensemble;
pub mod genetic;
pub mod hillclimb;
pub mod ils;
pub mod neldermead;
pub mod portfolio;
pub mod random;

use jtune_flags::{Domain, FlagId, FlagValue, JvmConfig};

use crate::manipulator::{ConfigManipulator, RngDyn};

/// Shared, read-only view of search progress handed to techniques.
pub struct SearchState<'a> {
    /// Move generator.
    pub manipulator: &'a dyn ConfigManipulator,
    /// Best configuration found so far with its score (seconds).
    pub best: Option<&'a (JvmConfig, f64)>,
    /// Score of the default configuration (seconds).
    pub default_score: f64,
    /// Fraction of the tuning budget already spent, in `[0, 1]`.
    pub budget_fraction: f64,
    /// Fraction of evaluation slots served from memory so far (cache
    /// hits + suppressed duplicates), in `[0, 1]`. Always 0 with the
    /// trial cache off. A rising value tells a technique its proposals
    /// are collapsing onto already-measured configurations — a
    /// convergence/stagnation signal it may use to widen exploration.
    pub reuse_fraction: f64,
}

impl SearchState<'_> {
    /// The configuration to improve on: best-so-far, else the default.
    pub fn anchor(&self) -> JvmConfig {
        match self.best {
            Some((c, _)) => c.clone(),
            None => JvmConfig::default_for(self.manipulator.registry()),
        }
    }
}

/// One search technique.
pub trait Technique: Send {
    /// Stable display name.
    fn name(&self) -> &'static str;

    /// Propose the next candidate.
    fn propose(&mut self, state: &SearchState<'_>, rng: &mut dyn RngDyn) -> JvmConfig;

    /// Learn from an evaluated candidate this technique proposed.
    /// `score` is `None` on failure.
    fn feedback(&mut self, config: &JvmConfig, score: Option<f64>, state: &SearchState<'_>);

    /// Which technique actually proposed `config`. Composite techniques
    /// (the AUC-bandit ensemble) attribute the inner arm so telemetry can
    /// trace technique switches; plain techniques return their own name.
    /// Only meaningful between [`Technique::propose`] and the matching
    /// [`Technique::feedback`].
    fn proposer(&self, config: &JvmConfig) -> &'static str {
        let _ = config;
        self.name()
    }

    /// Forget a proposal that will never be evaluated: the surrogate
    /// screened it out, so no [`Technique::feedback`] call will follow.
    /// Stateless techniques need no action (the default). Composite
    /// techniques drop their routing entry and delegate inward;
    /// techniques holding per-proposal state (Nelder-Mead's pending
    /// vertices) release it so screening cannot leak memory or
    /// misattribute a later identical fingerprint.
    fn retract(&mut self, config: &JvmConfig) {
        let _ = config;
    }
}

/// The standard technique roster (what the ensemble runs over).
pub struct TechniqueSet;

impl TechniqueSet {
    /// The simple techniques the AUC-bandit ensemble runs over. The
    /// ensemble and the portfolio are built *from* this roster, so it
    /// must never contain a composite (that would recurse).
    pub fn ensemble_arms() -> Vec<Box<dyn Technique>> {
        vec![
            Box::new(random::RandomSearch::new()),
            Box::new(hillclimb::HillClimb::new()),
            Box::new(ils::IteratedLocalSearch::new()),
            Box::new(anneal::SimulatedAnnealing::new()),
            Box::new(genetic::GeneticAlgorithm::new()),
            Box::new(diffevo::DifferentialEvolution::new()),
            Box::new(neldermead::NelderMead::new()),
        ]
    }

    /// Every registered technique, fresh, in [`TechniqueSet::names`]
    /// order (the solo roster plus the composite portfolio).
    pub fn standard() -> Vec<Box<dyn Technique>> {
        let mut all = Self::ensemble_arms();
        all.push(Box::new(portfolio::Portfolio::standard()));
        all
    }

    /// Construct one technique by name (experiment E8 runs them solo).
    ///
    /// A `model:` prefix names the surrogate-screened variant of the
    /// inner technique: it constructs identically (screening lives in
    /// the tuner, not the technique), and the tuner enables the default
    /// model policy when it sees the prefix.
    pub fn by_name(name: &str) -> Option<Box<dyn Technique>> {
        if let Some(inner) = name.strip_prefix("model:") {
            return Self::by_name(inner);
        }
        Some(match name {
            "random" => Box::new(random::RandomSearch::new()),
            "hillclimb" => Box::new(hillclimb::HillClimb::new()),
            "ils" => Box::new(ils::IteratedLocalSearch::new()),
            "anneal" => Box::new(anneal::SimulatedAnnealing::new()),
            "genetic" => Box::new(genetic::GeneticAlgorithm::new()),
            "diffevo" => Box::new(diffevo::DifferentialEvolution::new()),
            "neldermead" => Box::new(neldermead::NelderMead::new()),
            "ensemble" => Box::new(ensemble::AucBandit::standard()),
            "portfolio" => Box::new(portfolio::Portfolio::standard()),
            _ => return None,
        })
    }

    /// Names of the registered techniques, in [`TechniqueSet::standard`]
    /// order (the composite ensemble is additionally reachable through
    /// [`TechniqueSet::by_name`]).
    pub fn names() -> &'static [&'static str] {
        &[
            "random",
            "hillclimb",
            "ils",
            "anneal",
            "genetic",
            "diffevo",
            "neldermead",
            "portfolio",
        ]
    }
}

// ---- numeric-subspace helpers shared by DE and Nelder-Mead ----

/// Map a flag value to `[0, 1]` within its domain (log scale respected).
pub(crate) fn normalize(domain: &Domain, value: FlagValue) -> f64 {
    match (domain, value) {
        (Domain::IntRange { lo, hi, log_scale }, FlagValue::Int(v)) => {
            if *log_scale && *lo >= 0 {
                let lo_f = (*lo as f64).max(1.0);
                let hi_f = (*hi as f64).max(lo_f + 1.0);
                ((v as f64).max(lo_f).ln() - lo_f.ln()) / (hi_f.ln() - lo_f.ln())
            } else {
                (v - lo) as f64 / ((*hi - *lo).max(1)) as f64
            }
        }
        (Domain::DoubleRange { lo, hi }, FlagValue::Double(v)) => {
            (v - lo) / (hi - lo).max(f64::MIN_POSITIVE)
        }
        _ => 0.5,
    }
    .clamp(0.0, 1.0)
}

/// Map `[0, 1]` back to a flag value in `domain`.
pub(crate) fn denormalize(domain: &Domain, x: f64) -> FlagValue {
    let x = x.clamp(0.0, 1.0);
    match domain {
        Domain::IntRange { lo, hi, log_scale } => {
            let v = if *log_scale && *lo >= 0 {
                let lo_f = (*lo as f64).max(1.0);
                let hi_f = (*hi as f64).max(lo_f + 1.0);
                (lo_f.ln() + x * (hi_f.ln() - lo_f.ln())).exp().round() as i64
            } else {
                lo + (x * (*hi - *lo) as f64).round() as i64
            };
            FlagValue::Int(v.clamp(*lo, *hi))
        }
        Domain::DoubleRange { lo, hi } => FlagValue::Double(lo + x * (hi - lo)),
        Domain::Bool => FlagValue::Bool(x >= 0.5),
        Domain::Enum { variants } => {
            let n = variants.len().max(1);
            FlagValue::Enum(((x * n as f64) as usize).min(n - 1) as u16)
        }
    }
}

/// Project a configuration onto a numeric-dimension vector.
pub(crate) fn project(
    manipulator: &dyn ConfigManipulator,
    dims: &[FlagId],
    config: &JvmConfig,
) -> Vec<f64> {
    dims.iter()
        .map(|&id| normalize(&manipulator.registry().spec(id).domain, config.get(id)))
        .collect()
}

/// Write a numeric vector back into a configuration (then canonicalise).
pub(crate) fn embed(
    manipulator: &dyn ConfigManipulator,
    dims: &[FlagId],
    base: &JvmConfig,
    x: &[f64],
) -> JvmConfig {
    let mut c = base.clone();
    for (&id, &xi) in dims.iter().zip(x.iter()) {
        let v = denormalize(&manipulator.registry().spec(id).domain, xi);
        c.set(id, v);
    }
    manipulator.canonicalize(&mut c);
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manipulator::HierarchicalManipulator;

    #[test]
    fn normalize_round_trips_endpoints() {
        let d = Domain::IntRange {
            lo: 100,
            hi: 1_000_000,
            log_scale: true,
        };
        assert_eq!(denormalize(&d, 0.0), FlagValue::Int(100));
        assert_eq!(denormalize(&d, 1.0), FlagValue::Int(1_000_000));
        assert!((normalize(&d, FlagValue::Int(100)) - 0.0).abs() < 1e-9);
        assert!((normalize(&d, FlagValue::Int(1_000_000)) - 1.0).abs() < 1e-9);
        // Log scaling: the geometric midpoint maps near 0.5.
        let mid = denormalize(&d, 0.5).as_int().unwrap();
        assert!((9_000..12_000).contains(&mid), "geometric mid {mid}");
    }

    #[test]
    fn normalize_linear_and_double() {
        let d = Domain::IntRange {
            lo: 0,
            hi: 10,
            log_scale: false,
        };
        assert!((normalize(&d, FlagValue::Int(5)) - 0.5).abs() < 1e-9);
        let dd = Domain::DoubleRange { lo: 1.0, hi: 3.0 };
        assert!((normalize(&dd, FlagValue::Double(2.0)) - 0.5).abs() < 1e-9);
        assert_eq!(denormalize(&dd, 0.25), FlagValue::Double(1.5));
    }

    #[test]
    fn project_embed_round_trip() {
        let m = HierarchicalManipulator::new();
        let mut c = JvmConfig::default_for(m.registry());
        m.canonicalize(&mut c);
        let dims = m.numeric_flags(&c);
        let x = project(&m, &dims, &c);
        let c2 = embed(&m, &dims, &c, &x);
        let x2 = project(&m, &dims, &c2);
        for (a, b) in x.iter().zip(x2.iter()) {
            assert!((a - b).abs() < 0.02, "{a} vs {b}");
        }
    }

    #[test]
    fn technique_set_has_all_names() {
        for name in TechniqueSet::names() {
            assert!(TechniqueSet::by_name(name).is_some(), "missing {name}");
        }
        assert!(TechniqueSet::by_name("ensemble").is_some());
        assert!(TechniqueSet::by_name("nope").is_none());
        // The registry is closed: standard() and names() must agree
        // element by element, so adding a technique to one without the
        // other (or reordering) fails here, not in an experiment.
        let standard = TechniqueSet::standard();
        assert_eq!(standard.len(), TechniqueSet::names().len());
        for (technique, name) in standard.iter().zip(TechniqueSet::names()) {
            assert_eq!(technique.name(), *name);
        }
        // The portfolio's arms are the solo roster plus the ensemble —
        // and the solo roster must stay composite-free (a composite arm
        // would recurse on construction).
        for arm in TechniqueSet::ensemble_arms() {
            assert!(
                !matches!(arm.name(), "ensemble" | "portfolio"),
                "composite {} in ensemble_arms()",
                arm.name()
            );
        }
    }

    #[test]
    fn model_prefix_resolves_to_the_inner_technique() {
        for name in TechniqueSet::names() {
            let wrapped = format!("model:{name}");
            let t = TechniqueSet::by_name(&wrapped).expect("model-wrapped variant");
            assert_eq!(t.name(), *name);
        }
        assert_eq!(
            TechniqueSet::by_name("model:ensemble").unwrap().name(),
            "ensemble"
        );
        assert!(TechniqueSet::by_name("model:nope").is_none());
        assert!(TechniqueSet::by_name("model:").is_none());
    }

    #[test]
    fn default_retract_is_a_no_op_and_stateful_retract_forgets() {
        use crate::manipulator::HierarchicalManipulator;
        use jtune_util::Xoshiro256pp;

        let m = HierarchicalManipulator::new();
        let st = SearchState {
            manipulator: &m,
            best: None,
            default_score: 10.0,
            budget_fraction: 0.2,
            reuse_fraction: 0.0,
        };
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        for mut t in TechniqueSet::standard() {
            let c = t.propose(&st, &mut rng);
            // Retract then feed back: the feedback must be ignored (no
            // panic, no misattribution) for every registered technique.
            t.retract(&c);
            t.feedback(&c, Some(1.0), &st);
        }
    }
}
