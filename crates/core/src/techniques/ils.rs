//! Iterated local search (ParamILS-style).
//!
//! The algorithm-configuration classic: run first-improvement local search
//! to a local optimum, then *perturb* (a handful of strong random moves —
//! stronger than a mutation, weaker than a restart) and search again,
//! accepting the new local optimum if it is at least as good. Compared
//! with the plain hill climber it escapes local optima without discarding
//! everything it has learned, which suits flag landscapes where good
//! configurations share most coordinates.

use jtune_flags::JvmConfig;

use crate::manipulator::RngDyn;
use crate::techniques::{SearchState, Technique};

/// Consecutive non-improving proposals that end a local-search phase.
const LOCAL_STALL: u32 = 8;
/// Perturbation strength (fraction handed to the manipulator).
const KICK_STRENGTH: f64 = 0.9;
/// Local-move strength.
const STEP_STRENGTH: f64 = 0.2;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Descending from the current incumbent.
    Descend,
    /// The next proposal is the perturbation kick.
    Kick,
}

/// ParamILS-style iterated local search.
pub struct IteratedLocalSearch {
    /// Incumbent local optimum (accept criterion compares against this).
    incumbent: Option<(JvmConfig, f64)>,
    /// Point the current descent walks from.
    current: Option<(JvmConfig, f64)>,
    stall: u32,
    phase: Phase,
}

impl Default for IteratedLocalSearch {
    fn default() -> Self {
        Self::new()
    }
}

impl IteratedLocalSearch {
    /// Fresh searcher.
    pub fn new() -> Self {
        IteratedLocalSearch {
            incumbent: None,
            current: None,
            stall: 0,
            phase: Phase::Descend,
        }
    }

    /// Current phase name (test hook).
    pub fn in_kick_phase(&self) -> bool {
        self.phase == Phase::Kick
    }
}

impl Technique for IteratedLocalSearch {
    fn name(&self) -> &'static str {
        "ils"
    }

    fn propose(&mut self, state: &SearchState<'_>, rng: &mut dyn RngDyn) -> JvmConfig {
        let base = match &self.current {
            Some((c, _)) => c.clone(),
            None => state.anchor(),
        };
        match self.phase {
            Phase::Descend => state.manipulator.mutate(&base, rng, STEP_STRENGTH),
            Phase::Kick => {
                self.phase = Phase::Descend;
                self.stall = 0;
                state.manipulator.mutate(&base, rng, KICK_STRENGTH)
            }
        }
    }

    fn feedback(&mut self, config: &JvmConfig, score: Option<f64>, state: &SearchState<'_>) {
        let Some(s) = score else {
            self.stall += 1;
            if self.stall >= LOCAL_STALL {
                self.end_descent();
            }
            return;
        };
        let cur = self
            .current
            .as_ref()
            .map(|(_, c)| *c)
            .unwrap_or(state.default_score);
        if s < cur {
            self.current = Some((config.clone(), s));
            self.stall = 0;
        } else {
            self.stall += 1;
            if self.stall >= LOCAL_STALL {
                self.end_descent();
            }
        }
    }
}

impl IteratedLocalSearch {
    /// Local optimum reached: apply the ILS accept criterion and schedule
    /// the perturbation kick.
    fn end_descent(&mut self) {
        match (&self.current, &self.incumbent) {
            (Some((c, s)), Some((_, inc))) if *s <= *inc => {
                self.incumbent = Some((c.clone(), *s));
            }
            (Some((c, s)), None) => {
                self.incumbent = Some((c.clone(), *s));
            }
            (Some(_), Some(inc)) => {
                // Worse local optimum: restart the walk from the incumbent.
                self.current = Some(inc.clone());
            }
            (None, _) => {}
        }
        self.phase = Phase::Kick;
        self.stall = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manipulator::HierarchicalManipulator;
    use jtune_util::Xoshiro256pp;

    fn state(m: &HierarchicalManipulator) -> SearchState<'_> {
        SearchState {
            manipulator: m,
            best: None,
            default_score: 10.0,
            budget_fraction: 0.3,
            reuse_fraction: 0.0,
        }
    }

    #[test]
    fn descends_then_kicks_after_stall() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let mut ils = IteratedLocalSearch::new();
        // One improvement establishes the walk.
        let c = ils.propose(&st, &mut rng);
        ils.feedback(&c, Some(8.0), &st);
        assert!(!ils.in_kick_phase());
        // Stall out the descent.
        for _ in 0..LOCAL_STALL {
            let c = ils.propose(&st, &mut rng);
            ils.feedback(&c, Some(9.0), &st);
        }
        assert!(ils.in_kick_phase());
        assert_eq!(ils.incumbent.as_ref().unwrap().1, 8.0);
        // The kick proposal flips back to descend mode.
        let _ = ils.propose(&st, &mut rng);
        assert!(!ils.in_kick_phase());
    }

    #[test]
    fn worse_local_optimum_is_rejected_by_accept_criterion() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(32);
        let mut ils = IteratedLocalSearch::new();
        // First descent ends at 7.0 (incumbent).
        let c = ils.propose(&st, &mut rng);
        ils.feedback(&c, Some(7.0), &st);
        for _ in 0..LOCAL_STALL {
            let c = ils.propose(&st, &mut rng);
            ils.feedback(&c, Some(9.0), &st);
        }
        assert_eq!(ils.incumbent.as_ref().unwrap().1, 7.0);
        // Second descent only reaches 8.0: incumbent must stay at 7.0 and
        // the next walk restarts from it.
        let _ = ils.propose(&st, &mut rng); // kick
        let c = ils.propose(&st, &mut rng);
        ils.feedback(&c, Some(8.0), &st);
        for _ in 0..LOCAL_STALL {
            let c = ils.propose(&st, &mut rng);
            ils.feedback(&c, Some(9.5), &st);
        }
        assert_eq!(ils.incumbent.as_ref().unwrap().1, 7.0);
        assert_eq!(ils.current.as_ref().unwrap().1, 7.0);
    }

    #[test]
    fn failures_count_towards_stall() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(33);
        let mut ils = IteratedLocalSearch::new();
        for _ in 0..LOCAL_STALL {
            let c = ils.propose(&st, &mut rng);
            ils.feedback(&c, None, &st);
        }
        assert!(ils.in_kick_phase());
    }
}
