//! The bandit portfolio over the full technique roster.
//!
//! Where the AUC-bandit ensemble ([`super::ensemble`]) interleaves the
//! seven solo techniques proposal-by-proposal, the portfolio plays one
//! level up: its arms are the seven solo techniques *plus a whole
//! ensemble*, and it reallocates proposal slots across them with an
//! Exp3-style softmax over recent observed reward (relative improvement
//! over the incumbent best). The meta-level bet, following "Tuning the
//! Tuner", is that reward-proportional allocation across heterogeneous
//! searchers beats both any single searcher and a fixed interleaving.
//!
//! Determinism: all randomness comes from the tuner-owned RNG passed to
//! [`Technique::propose`], arm order is fixed, and ties break on arm
//! index — two sessions with the same seed make the same allocations.

use std::collections::{HashMap, VecDeque};

use jtune_flags::JvmConfig;

use crate::manipulator::RngDyn;
use crate::techniques::{ensemble::AucBandit, SearchState, Technique, TechniqueSet};

/// Sliding reward window per arm.
const WINDOW: usize = 40;
/// Softmax temperature over mean windowed reward.
const TEMPERATURE: f64 = 0.02;
/// Uniform-exploration mixture (the Exp3 gamma).
const GAMMA: f64 = 0.15;

struct Arm {
    technique: Box<dyn Technique>,
    /// Recent rewards in `[0, 1]`: relative improvement over the best
    /// config known when the proposal was scored.
    rewards: VecDeque<f64>,
    uses: u64,
}

impl Arm {
    fn mean_reward(&self) -> f64 {
        if self.rewards.is_empty() {
            return 0.0;
        }
        self.rewards.iter().sum::<f64>() / self.rewards.len() as f64
    }
}

/// Reward-proportional slot allocator over the eight standard searchers.
pub struct Portfolio {
    arms: Vec<Arm>,
    /// Which arm proposed which pending config (by fingerprint).
    router: HashMap<u64, usize>,
}

impl Portfolio {
    /// Portfolio over a custom roster.
    pub fn new(techniques: Vec<Box<dyn Technique>>) -> Self {
        assert!(
            !techniques.is_empty(),
            "portfolio needs at least one technique"
        );
        Portfolio {
            arms: techniques
                .into_iter()
                .map(|technique| Arm {
                    technique,
                    rewards: VecDeque::with_capacity(WINDOW),
                    uses: 0,
                })
                .collect(),
            router: HashMap::new(),
        }
    }

    /// The standard portfolio: every solo technique plus one ensemble.
    pub fn standard() -> Self {
        let mut arms = TechniqueSet::ensemble_arms();
        arms.push(Box::new(AucBandit::standard()));
        Self::new(arms)
    }

    /// Sample an arm: untried arms first (in index order), then the
    /// Exp3 mixture of softmax-by-reward and uniform exploration.
    fn select(&self, rng: &mut dyn RngDyn) -> usize {
        if let Some(i) = self.arms.iter().position(|a| a.uses == 0) {
            return i;
        }
        let n = self.arms.len();
        // Softmax with the max subtracted for numeric stability.
        let top = self
            .arms
            .iter()
            .map(Arm::mean_reward)
            .fold(f64::NEG_INFINITY, f64::max);
        let weights: Vec<f64> = self
            .arms
            .iter()
            .map(|a| ((a.mean_reward() - top) / TEMPERATURE).exp())
            .collect();
        let total: f64 = weights.iter().sum();
        let mut x = rng.next_f64_dyn();
        for (i, &w) in weights.iter().enumerate() {
            let p = (1.0 - GAMMA) * w / total + GAMMA / n as f64;
            if x < p {
                return i;
            }
            x -= p;
        }
        n - 1
    }

    /// Per-arm usage counts (reporting hook, mirrors the ensemble's).
    pub fn usage(&self) -> Vec<(&'static str, u64)> {
        self.arms
            .iter()
            .map(|a| (a.technique.name(), a.uses))
            .collect()
    }
}

impl Technique for Portfolio {
    fn name(&self) -> &'static str {
        "portfolio"
    }

    fn propose(&mut self, state: &SearchState<'_>, rng: &mut dyn RngDyn) -> JvmConfig {
        let i = self.select(rng);
        self.arms[i].uses += 1;
        let config = self.arms[i].technique.propose(state, rng);
        self.router.insert(config.fingerprint(), i);
        config
    }

    fn proposer(&self, config: &JvmConfig) -> &'static str {
        match self.router.get(&config.fingerprint()) {
            // Delegate so ensemble-inner attribution still flows through.
            Some(&i) => self.arms[i].technique.proposer(config),
            None => self.name(),
        }
    }

    fn feedback(&mut self, config: &JvmConfig, score: Option<f64>, state: &SearchState<'_>) {
        let Some(i) = self.router.remove(&config.fingerprint()) else {
            return;
        };
        // Reward: relative improvement over the incumbent (the tuner
        // feeds back against the pre-candidate best). Failures and
        // regressions earn zero.
        let reward = match (score, state.best) {
            (Some(s), Some((_, best))) => ((best - s) / best.max(f64::MIN_POSITIVE)).max(0.0),
            (Some(s), None) => {
                ((state.default_score - s) / state.default_score.max(f64::MIN_POSITIVE)).max(0.0)
            }
            (None, _) => 0.0,
        }
        .min(1.0);
        let arm = &mut self.arms[i];
        if arm.rewards.len() == WINDOW {
            arm.rewards.pop_front();
        }
        arm.rewards.push_back(reward);
        arm.technique.feedback(config, score, state);
    }

    fn retract(&mut self, config: &JvmConfig) {
        if let Some(i) = self.router.remove(&config.fingerprint()) {
            self.arms[i].technique.retract(config);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manipulator::HierarchicalManipulator;
    use crate::techniques::random::RandomSearch;
    use jtune_util::Xoshiro256pp;

    fn state(m: &HierarchicalManipulator) -> SearchState<'_> {
        SearchState {
            manipulator: m,
            best: None,
            default_score: 10.0,
            budget_fraction: 0.1,
            reuse_fraction: 0.0,
        }
    }

    #[test]
    fn standard_portfolio_has_eight_arms_and_tries_each() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let mut p = Portfolio::standard();
        assert_eq!(p.arms.len(), 8);
        for _ in 0..8 {
            let c = p.propose(&st, &mut rng);
            p.feedback(&c, Some(10.0), &st);
        }
        assert!(p.usage().iter().all(|(_, uses)| *uses == 1));
    }

    #[test]
    fn rewarding_one_arm_shifts_allocation() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(32);
        let mut p = Portfolio::new(vec![
            Box::new(RandomSearch::new()),
            Box::new(RandomSearch::new()),
        ]);
        for _ in 0..200 {
            let c = p.propose(&st, &mut rng);
            let arm = *p.router.get(&c.fingerprint()).unwrap();
            let score = if arm == 0 { 7.0 } else { 12.0 };
            p.feedback(&c, Some(score), &st);
        }
        let usage = p.usage();
        assert!(
            usage[0].1 > usage[1].1 * 2,
            "portfolio failed to exploit: {usage:?}"
        );
    }

    #[test]
    fn retract_forgets_the_pending_proposal() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(33);
        let mut p = Portfolio::standard();
        let c = p.propose(&st, &mut rng);
        assert_ne!(p.proposer(&c), "portfolio");
        p.retract(&c);
        assert_eq!(p.proposer(&c), "portfolio");
        // Feedback after retraction is ignored, not misattributed.
        p.feedback(&c, Some(1.0), &st);
        assert!(p.arms.iter().all(|a| a.rewards.is_empty()));
    }

    #[test]
    fn allocation_is_deterministic_for_a_seed() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let run = || {
            let mut rng = Xoshiro256pp::seed_from_u64(34);
            let mut p = Portfolio::standard();
            let mut picks = Vec::new();
            for _ in 0..40 {
                let c = p.propose(&st, &mut rng);
                picks.push(*p.router.get(&c.fingerprint()).unwrap());
                p.feedback(&c, Some(9.5), &st);
            }
            picks
        };
        assert_eq!(run(), run());
    }
}
