//! The AUC-bandit technique ensemble.
//!
//! No single search technique wins on every program: random sampling
//! dominates early, local techniques dominate once a good basin is found,
//! numeric techniques dominate when only sizes remain to polish. The
//! ensemble treats technique choice as a multi-armed bandit (the
//! OpenTuner design the paper's tuner follows): each proposal is routed to
//! the technique maximising *recent credit + exploration bonus*, where
//! credit is the area-under-curve of the technique's recent
//! best-improvement history (newer hits weigh more).

use std::collections::{HashMap, VecDeque};

use jtune_flags::JvmConfig;

use crate::manipulator::RngDyn;
use crate::techniques::{SearchState, Technique, TechniqueSet};

/// Sliding-window length for credit.
const WINDOW: usize = 50;
/// Exploration constant (UCB1-style).
const C: f64 = 0.35;

struct Arm {
    technique: Box<dyn Technique>,
    /// Recent history: `true` = that proposal improved the global best.
    history: VecDeque<bool>,
    uses: u64,
}

impl Arm {
    /// AUC credit: Σ (i+1)·hit_i / Σ (i+1), newer entries having larger i.
    fn credit(&self) -> f64 {
        if self.history.is_empty() {
            return 0.0;
        }
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, &hit) in self.history.iter().enumerate() {
            let w = (i + 1) as f64;
            den += w;
            if hit {
                num += w;
            }
        }
        num / den
    }
}

/// The bandit over a set of techniques. Itself a [`Technique`], so solo
/// and ensemble tuners share one driver.
pub struct AucBandit {
    arms: Vec<Arm>,
    /// Which arm proposed which pending config (by fingerprint).
    router: HashMap<u64, usize>,
    total_uses: u64,
}

impl AucBandit {
    /// Bandit over a custom roster.
    pub fn new(techniques: Vec<Box<dyn Technique>>) -> Self {
        assert!(
            !techniques.is_empty(),
            "ensemble needs at least one technique"
        );
        AucBandit {
            arms: techniques
                .into_iter()
                .map(|technique| Arm {
                    technique,
                    history: VecDeque::with_capacity(WINDOW),
                    uses: 0,
                })
                .collect(),
            router: HashMap::new(),
            total_uses: 0,
        }
    }

    /// Bandit over the solo-technique roster (not [`TechniqueSet::standard`],
    /// which now includes the portfolio — a composite arm inside the
    /// ensemble would recurse and change long-pinned traces).
    pub fn standard() -> Self {
        Self::new(TechniqueSet::ensemble_arms())
    }

    fn select(&self) -> usize {
        let t = (self.total_uses + 1) as f64;
        let mut best = 0;
        let mut best_score = f64::NEG_INFINITY;
        for (i, arm) in self.arms.iter().enumerate() {
            let score = if arm.uses == 0 {
                // Untried arms first.
                f64::INFINITY
            } else {
                arm.credit() + C * (2.0 * t.ln() / arm.uses as f64).sqrt()
            };
            if score > best_score {
                best_score = score;
                best = i;
            }
        }
        best
    }

    /// Per-arm usage counts (reporting hook for experiment E8).
    pub fn usage(&self) -> Vec<(&'static str, u64)> {
        self.arms
            .iter()
            .map(|a| (a.technique.name(), a.uses))
            .collect()
    }
}

impl Technique for AucBandit {
    fn name(&self) -> &'static str {
        "ensemble"
    }

    fn propose(&mut self, state: &SearchState<'_>, rng: &mut dyn RngDyn) -> JvmConfig {
        let i = self.select();
        self.arms[i].uses += 1;
        self.total_uses += 1;
        let config = self.arms[i].technique.propose(state, rng);
        self.router.insert(config.fingerprint(), i);
        config
    }

    fn proposer(&self, config: &JvmConfig) -> &'static str {
        match self.router.get(&config.fingerprint()) {
            Some(&i) => self.arms[i].technique.name(),
            None => self.name(),
        }
    }

    fn retract(&mut self, config: &JvmConfig) {
        if let Some(i) = self.router.remove(&config.fingerprint()) {
            self.arms[i].technique.retract(config);
        }
    }

    fn feedback(&mut self, config: &JvmConfig, score: Option<f64>, state: &SearchState<'_>) {
        let Some(i) = self.router.remove(&config.fingerprint()) else {
            return;
        };
        let improved = match (score, state.best) {
            (Some(s), Some((_, best))) => s < *best,
            (Some(s), None) => s < state.default_score,
            (None, _) => false,
        };
        let arm = &mut self.arms[i];
        if arm.history.len() == WINDOW {
            arm.history.pop_front();
        }
        arm.history.push_back(improved);
        arm.technique.feedback(config, score, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manipulator::HierarchicalManipulator;
    use crate::techniques::random::RandomSearch;
    use jtune_util::Xoshiro256pp;

    fn state(m: &HierarchicalManipulator) -> SearchState<'_> {
        SearchState {
            manipulator: m,
            best: None,
            default_score: 10.0,
            budget_fraction: 0.1,
            reuse_fraction: 0.0,
        }
    }

    #[test]
    fn tries_every_arm_before_exploiting() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let mut bandit = AucBandit::standard();
        let n_arms = bandit.arms.len();
        for _ in 0..n_arms {
            let c = bandit.propose(&st, &mut rng);
            bandit.feedback(&c, Some(10.0), &st);
        }
        assert!(bandit.usage().iter().all(|(_, uses)| *uses >= 1));
    }

    #[test]
    fn credit_rewards_improving_arm() {
        // Two arms; we synthesise feedback so arm 0 always improves and
        // arm 1 never does. Arm 0 must end up used far more.
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(22);
        let mut bandit = AucBandit::new(vec![
            Box::new(RandomSearch::new()),
            Box::new(RandomSearch::new()),
        ]);
        for round in 0..120 {
            let c = bandit.propose(&st, &mut rng);
            let arm = *bandit.router.get(&c.fingerprint()).unwrap();
            // Arm 0's candidates "improve" (score below default), arm 1's
            // regress.
            let score = if arm == 0 {
                9.0 - round as f64 * 0.001
            } else {
                12.0
            };
            bandit.feedback(&c, Some(score), &st);
        }
        let usage = bandit.usage();
        assert!(
            usage[0].1 > usage[1].1 * 2,
            "bandit failed to exploit: {usage:?}"
        );
    }

    #[test]
    fn auc_weighs_recent_history_more() {
        let mut arm = Arm {
            technique: Box::new(RandomSearch::new()),
            history: VecDeque::new(),
            uses: 10,
        };
        // Old hits, recent misses...
        arm.history.extend([true, true, false, false]);
        let fading = arm.credit();
        // ...versus old misses, recent hits.
        arm.history.clear();
        arm.history.extend([false, false, true, true]);
        let rising = arm.credit();
        assert!(rising > fading);
    }

    #[test]
    #[should_panic(expected = "at least one technique")]
    fn empty_ensemble_panics() {
        let _ = AucBandit::new(vec![]);
    }
}
