//! Greedy hill-climbing with random restarts.
//!
//! Mutates its current point with small strength; accepts strict
//! improvements. After a failure streak it restarts from a fresh random
//! point (keeping the global best is the tuner's job, not the climber's).

use jtune_flags::JvmConfig;

use crate::manipulator::RngDyn;
use crate::techniques::{SearchState, Technique};

/// Restart threshold: consecutive non-improving feedbacks.
const RESTART_AFTER: u32 = 15;

/// First-improvement hill climber.
pub struct HillClimb {
    current: Option<(JvmConfig, f64)>,
    /// Fingerprint of the point the last proposal mutated from, to detect
    /// stale feedback after a restart.
    fail_streak: u32,
    strength: f64,
}

impl Default for HillClimb {
    fn default() -> Self {
        Self::new()
    }
}

impl HillClimb {
    /// Fresh climber.
    pub fn new() -> Self {
        HillClimb {
            current: None,
            fail_streak: 0,
            strength: 0.3,
        }
    }
}

impl Technique for HillClimb {
    fn name(&self) -> &'static str {
        "hillclimb"
    }

    fn propose(&mut self, state: &SearchState<'_>, rng: &mut dyn RngDyn) -> JvmConfig {
        match &self.current {
            None => {
                // Start from the global anchor (best-so-far or default):
                // climbing from a good point beats climbing from noise.
                let anchor = state.anchor();
                state.manipulator.mutate(&anchor, rng, self.strength)
            }
            Some((c, _)) => state.manipulator.mutate(c, rng, self.strength),
        }
    }

    fn feedback(&mut self, config: &JvmConfig, score: Option<f64>, state: &SearchState<'_>) {
        let improved = match (score, &self.current) {
            (Some(s), Some((_, cur))) => s < *cur,
            (Some(s), None) => {
                // First data point: adopt it if it beats the default.
                s < state.default_score
            }
            (None, _) => false,
        };
        if improved {
            self.current = Some((config.clone(), score.expect("improved implies score")));
            self.fail_streak = 0;
        } else {
            self.fail_streak += 1;
            if self.fail_streak >= RESTART_AFTER {
                self.current = None;
                self.fail_streak = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manipulator::HierarchicalManipulator;
    use jtune_util::Xoshiro256pp;

    #[test]
    fn adopts_improvements_and_restarts_on_stagnation() {
        let m = HierarchicalManipulator::new();
        let state = SearchState {
            manipulator: &m,
            best: None,
            default_score: 10.0,
            budget_fraction: 0.0,
            reuse_fraction: 0.0,
        };
        let mut rng = Xoshiro256pp::seed_from_u64(2);
        let mut t = HillClimb::new();
        let c1 = t.propose(&state, &mut rng);
        t.feedback(&c1, Some(8.0), &state);
        assert!(t.current.is_some());
        assert_eq!(t.current.as_ref().unwrap().1, 8.0);
        // Worse feedback doesn't replace.
        let c2 = t.propose(&state, &mut rng);
        t.feedback(&c2, Some(9.0), &state);
        assert_eq!(t.current.as_ref().unwrap().1, 8.0);
        // Stagnation forces a restart.
        for _ in 0..RESTART_AFTER {
            let c = t.propose(&state, &mut rng);
            t.feedback(&c, None, &state);
        }
        assert!(t.current.is_none());
    }

    #[test]
    fn first_point_must_beat_default_to_be_adopted() {
        let m = HierarchicalManipulator::new();
        let state = SearchState {
            manipulator: &m,
            best: None,
            default_score: 10.0,
            budget_fraction: 0.0,
            reuse_fraction: 0.0,
        };
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let mut t = HillClimb::new();
        let c = t.propose(&state, &mut rng);
        t.feedback(&c, Some(11.0), &state);
        assert!(t.current.is_none());
    }
}
