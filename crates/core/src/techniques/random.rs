//! Pure random sampling — the floor every other technique must beat, and a
//! surprisingly strong contributor early in a session when nothing is
//! known about the landscape.

use jtune_flags::JvmConfig;

use crate::manipulator::RngDyn;
use crate::techniques::{SearchState, Technique};

/// Uniform random sampling through the manipulator.
#[derive(Default)]
pub struct RandomSearch {
    proposals: u64,
}

impl RandomSearch {
    /// New sampler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Technique for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(&mut self, state: &SearchState<'_>, rng: &mut dyn RngDyn) -> JvmConfig {
        self.proposals += 1;
        state.manipulator.random(rng)
    }

    fn feedback(&mut self, _config: &JvmConfig, _score: Option<f64>, _state: &SearchState<'_>) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manipulator::{ConfigManipulator, HierarchicalManipulator};
    use jtune_util::Xoshiro256pp;

    #[test]
    fn proposes_valid_distinct_configs() {
        let m = HierarchicalManipulator::new();
        let state = SearchState {
            manipulator: &m,
            best: None,
            default_score: 10.0,
            budget_fraction: 0.0,
            reuse_fraction: 0.0,
        };
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let mut t = RandomSearch::new();
        let a = t.propose(&state, &mut rng);
        let b = t.propose(&state, &mut rng);
        assert!(a.validate(m.registry()).is_ok());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }
}
