//! A steady-state genetic algorithm.
//!
//! Population of up to `POP` (12) scored configurations; proposals are either
//! population seeding (while under-full) or tournament-selected parents
//! recombined by the manipulator's crossover plus a light mutation.
//! Feedback inserts candidates that beat the current worst.

use jtune_flags::JvmConfig;

use crate::manipulator::{below, RngDyn};
use crate::techniques::{SearchState, Technique};

/// Population size.
const POP: usize = 12;
/// Tournament size.
const TOURNAMENT: usize = 3;

/// Steady-state GA.
pub struct GeneticAlgorithm {
    population: Vec<(JvmConfig, f64)>,
}

impl Default for GeneticAlgorithm {
    fn default() -> Self {
        Self::new()
    }
}

impl GeneticAlgorithm {
    /// Fresh, empty population.
    pub fn new() -> Self {
        GeneticAlgorithm {
            population: Vec::with_capacity(POP),
        }
    }

    fn tournament_pick<'a>(&'a self, rng: &mut dyn RngDyn) -> &'a (JvmConfig, f64) {
        let mut best: Option<&(JvmConfig, f64)> = None;
        for _ in 0..TOURNAMENT {
            let cand = &self.population[below(rng, self.population.len())];
            if best.is_none_or(|b| cand.1 < b.1) {
                best = Some(cand);
            }
        }
        best.expect("non-empty population")
    }

    /// Current population size (test hook).
    pub fn population_len(&self) -> usize {
        self.population.len()
    }
}

impl Technique for GeneticAlgorithm {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn propose(&mut self, state: &SearchState<'_>, rng: &mut dyn RngDyn) -> JvmConfig {
        if self.population.len() < POP / 2 {
            // Seed the population: half random, half perturbations of the
            // anchor so the GA starts near known-good territory.
            return if self.population.len().is_multiple_of(2) {
                state.manipulator.random(rng)
            } else {
                state.manipulator.mutate(&state.anchor(), rng, 0.5)
            };
        }
        let a = self.tournament_pick(rng).0.clone();
        let b = self.tournament_pick(rng).0.clone();
        let child = state.manipulator.crossover(&a, &b, rng);
        state.manipulator.mutate(&child, rng, 0.25)
    }

    fn feedback(&mut self, config: &JvmConfig, score: Option<f64>, _state: &SearchState<'_>) {
        let Some(s) = score else { return };
        if self.population.len() < POP {
            self.population.push((config.clone(), s));
            return;
        }
        // Replace the worst if strictly better.
        let (worst_idx, worst) = self
            .population
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .map(|(i, p)| (i, p.1))
            .expect("population full");
        if s < worst {
            self.population[worst_idx] = (config.clone(), s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manipulator::HierarchicalManipulator;
    use jtune_util::Xoshiro256pp;

    fn state(m: &HierarchicalManipulator) -> SearchState<'_> {
        SearchState {
            manipulator: m,
            best: None,
            default_score: 10.0,
            budget_fraction: 0.2,
            reuse_fraction: 0.0,
        }
    }

    #[test]
    fn population_fills_then_evolves() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(4);
        let mut ga = GeneticAlgorithm::new();
        for i in 0..POP {
            let c = ga.propose(&st, &mut rng);
            ga.feedback(&c, Some(10.0 - i as f64 * 0.1), &st);
        }
        assert_eq!(ga.population_len(), POP);
        // Now full: a better candidate replaces the worst.
        let worst_before: f64 = ga
            .population
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max);
        let c = ga.propose(&st, &mut rng);
        ga.feedback(&c, Some(1.0), &st);
        let worst_after: f64 = ga
            .population
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(worst_after < worst_before);
        assert_eq!(ga.population_len(), POP);
    }

    #[test]
    fn worse_candidates_are_discarded_when_full() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut ga = GeneticAlgorithm::new();
        for _ in 0..POP {
            let c = ga.propose(&st, &mut rng);
            ga.feedback(&c, Some(5.0), &st);
        }
        let c = ga.propose(&st, &mut rng);
        ga.feedback(&c, Some(100.0), &st);
        assert!(ga.population.iter().all(|p| p.1 <= 5.0));
    }

    #[test]
    fn failures_never_enter_population() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut ga = GeneticAlgorithm::new();
        let c = ga.propose(&st, &mut rng);
        ga.feedback(&c, None, &st);
        assert_eq!(ga.population_len(), 0);
    }
}
