//! Differential evolution on the numeric subspace.
//!
//! DE shines on the continuous flags (heap sizes, thresholds, ratios):
//! candidates are built as `a + F·(b − c)` over normalised numeric
//! vectors, inheriting the structural (selector/boolean) part from parent
//! `a`. The population is shared with the same steady-state replacement as
//! the GA.

use jtune_flags::JvmConfig;

use crate::manipulator::{below, RngDyn};
use crate::techniques::{embed, project, SearchState, Technique};

/// Population size.
const POP: usize = 10;
/// Differential weight.
const F: f64 = 0.6;
/// Per-dimension crossover rate.
const CR: f64 = 0.7;

/// DE/rand/1/bin over normalised numeric dimensions.
pub struct DifferentialEvolution {
    population: Vec<(JvmConfig, f64)>,
}

impl Default for DifferentialEvolution {
    fn default() -> Self {
        Self::new()
    }
}

impl DifferentialEvolution {
    /// Fresh population.
    pub fn new() -> Self {
        DifferentialEvolution {
            population: Vec::with_capacity(POP),
        }
    }
}

impl Technique for DifferentialEvolution {
    fn name(&self) -> &'static str {
        "diffevo"
    }

    fn propose(&mut self, state: &SearchState<'_>, rng: &mut dyn RngDyn) -> JvmConfig {
        if self.population.len() < 3 {
            return if self.population.is_empty() {
                state.anchor()
            } else {
                state.manipulator.mutate(&state.anchor(), rng, 0.6)
            };
        }
        let n = self.population.len();
        let ai = below(rng, n);
        let bi = below(rng, n);
        let ci = below(rng, n);
        let a = &self.population[ai].0;
        let b = &self.population[bi].0;
        let c = &self.population[ci].0;
        let dims = state.manipulator.numeric_flags(a);
        if dims.is_empty() {
            return state.manipulator.mutate(a, rng, 0.3);
        }
        let xa = project(state.manipulator, &dims, a);
        let xb = project(state.manipulator, &dims, b);
        let xc = project(state.manipulator, &dims, c);
        let mut x = xa.clone();
        // Binomial crossover with one guaranteed mutated dimension.
        let forced = below(rng, dims.len());
        for i in 0..dims.len() {
            if i == forced || rng.next_f64_dyn() < CR {
                x[i] = (xa[i] + F * (xb[i] - xc[i])).clamp(0.0, 1.0);
            }
        }
        embed(state.manipulator, &dims, a, &x)
    }

    fn feedback(&mut self, config: &JvmConfig, score: Option<f64>, _state: &SearchState<'_>) {
        let Some(s) = score else { return };
        if self.population.len() < POP {
            self.population.push((config.clone(), s));
            return;
        }
        if let Some((worst_idx, worst)) = self
            .population
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .map(|(i, p)| (i, p.1))
        {
            if s < worst {
                self.population[worst_idx] = (config.clone(), s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manipulator::{ConfigManipulator, HierarchicalManipulator};
    use jtune_util::Xoshiro256pp;

    fn state(m: &HierarchicalManipulator) -> SearchState<'_> {
        SearchState {
            manipulator: m,
            best: None,
            default_score: 10.0,
            budget_fraction: 0.3,
            reuse_fraction: 0.0,
        }
    }

    #[test]
    fn proposals_are_valid_at_every_population_size() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let mut de = DifferentialEvolution::new();
        for i in 0..20 {
            let c = de.propose(&st, &mut rng);
            assert!(c.validate(m.registry()).is_ok(), "iteration {i}");
            de.feedback(&c, Some(10.0 - i as f64 * 0.05), &st);
        }
        assert_eq!(de.population.len(), POP);
    }

    #[test]
    fn differential_moves_explore_numeric_space() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        let mut de = DifferentialEvolution::new();
        // Seed with distinct random points so b − c is non-zero.
        for _ in 0..5 {
            let c = m.random(&mut rng);
            de.feedback(&c, Some(5.0), &st);
        }
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..10 {
            distinct.insert(de.propose(&st, &mut rng).fingerprint());
        }
        assert!(distinct.len() > 3, "DE proposals collapsed");
    }
}
