//! Simplex search (simplified Nelder-Mead) on the numeric subspace.
//!
//! Classic Nelder-Mead assumes synchronous evaluation; a tuner evaluates
//! asynchronously in batches, so this is the standard *reflect-or-shrink*
//! simplification: maintain a (d+1)-vertex simplex over the first
//! `MAX_DIMS` (8) active numeric flags, propose the reflection of the worst
//! vertex through the centroid of the rest, replace the worst on
//! improvement, and shrink the worst towards the best on failure. The
//! structural (boolean/selector) part of the configuration is pinned to
//! the simplex's base configuration.

use std::collections::HashMap;

use jtune_flags::{FlagId, JvmConfig};

use crate::manipulator::RngDyn;
use crate::techniques::{embed, project, SearchState, Technique};

/// Simplex dimensionality cap (evaluation cost grows with d).
const MAX_DIMS: usize = 8;
/// Initial vertex offset along each axis.
const SPREAD: f64 = 0.2;

/// Reflect-or-shrink simplex search.
pub struct NelderMead {
    dims: Vec<FlagId>,
    base: Option<JvmConfig>,
    simplex: Vec<(Vec<f64>, f64)>,
    /// Vectors proposed but not yet scored, keyed by config fingerprint.
    pending: HashMap<u64, Vec<f64>>,
    init_cursor: usize,
}

impl Default for NelderMead {
    fn default() -> Self {
        Self::new()
    }
}

impl NelderMead {
    /// Fresh (dimension-less) simplex; it binds to the anchor's active
    /// numeric flags on first proposal.
    pub fn new() -> Self {
        NelderMead {
            dims: Vec::new(),
            base: None,
            simplex: Vec::new(),
            pending: HashMap::new(),
            init_cursor: 0,
        }
    }

    fn full(&self) -> bool {
        !self.dims.is_empty() && self.simplex.len() == self.dims.len() + 1
    }

    fn worst_idx(&self) -> usize {
        self.simplex
            .iter()
            .enumerate()
            .max_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .map(|(i, _)| i)
            .expect("non-empty simplex")
    }

    fn best_idx(&self) -> usize {
        self.simplex
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .map(|(i, _)| i)
            .expect("non-empty simplex")
    }
}

impl Technique for NelderMead {
    fn name(&self) -> &'static str {
        "neldermead"
    }

    fn propose(&mut self, state: &SearchState<'_>, rng: &mut dyn RngDyn) -> JvmConfig {
        if self.base.is_none() {
            let anchor = state.anchor();
            let mut dims = state.manipulator.numeric_flags(&anchor);
            dims.truncate(MAX_DIMS);
            self.dims = dims;
            self.base = Some(anchor);
        }
        let base = self.base.clone().expect("base set above");
        if self.dims.is_empty() {
            // Nothing numeric to optimise: degrade to a local mutation.
            return state.manipulator.mutate(&base, rng, 0.3);
        }
        let x0 = project(state.manipulator, &self.dims, &base);
        let vec = if !self.full() {
            // Initial vertices: x0, then x0 ± SPREAD along each axis.
            let i = self.init_cursor;
            self.init_cursor += 1;
            if i == 0 {
                x0
            } else {
                let d = (i - 1) % self.dims.len();
                let mut v = x0.clone();
                v[d] = if v[d] + SPREAD <= 1.0 {
                    v[d] + SPREAD
                } else {
                    v[d] - SPREAD
                };
                v
            }
        } else {
            // Reflection of the worst through the centroid of the rest,
            // with a little jitter so repeated reflections of a stale
            // simplex don't propose duplicates.
            let w = self.worst_idx();
            let d = self.dims.len();
            let mut centroid = vec![0.0; d];
            for (i, (v, _)) in self.simplex.iter().enumerate() {
                if i != w {
                    for k in 0..d {
                        centroid[k] += v[k] / d as f64;
                    }
                }
            }
            let worst = &self.simplex[w].0;
            (0..d)
                .map(|k| {
                    (centroid[k] + (centroid[k] - worst[k]) + rng.next_gaussian_dyn() * 0.01)
                        .clamp(0.0, 1.0)
                })
                .collect()
        };
        let config = embed(state.manipulator, &self.dims, &base, &vec);
        self.pending.insert(config.fingerprint(), vec);
        config
    }

    fn feedback(&mut self, config: &JvmConfig, score: Option<f64>, _state: &SearchState<'_>) {
        let Some(vec) = self.pending.remove(&config.fingerprint()) else {
            return;
        };
        let s = score.unwrap_or(f64::INFINITY);
        if !self.full() {
            self.simplex.push((vec, s));
            return;
        }
        let w = self.worst_idx();
        if s < self.simplex[w].1 {
            self.simplex[w] = (vec, s);
        } else {
            // Shrink: pull the worst halfway towards the best. Its stored
            // score is an optimistic estimate; the vertex will be
            // re-reflected and re-measured as the search continues.
            let b = self.best_idx();
            let best_vec = self.simplex[b].0.clone();
            let best_score = self.simplex[b].1;
            let (wv, ws) = &mut self.simplex[w];
            for k in 0..wv.len() {
                wv[k] = 0.5 * (wv[k] + best_vec[k]);
            }
            *ws = 0.5 * (*ws + best_score.min(*ws));
        }
    }

    fn retract(&mut self, config: &JvmConfig) {
        // A screened-out vertex never joins the simplex; drop its pending
        // coordinates so the map cannot grow without bound.
        self.pending.remove(&config.fingerprint());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manipulator::{ConfigManipulator, HierarchicalManipulator};
    use jtune_util::Xoshiro256pp;

    fn state(m: &HierarchicalManipulator) -> SearchState<'_> {
        SearchState {
            manipulator: m,
            best: None,
            default_score: 10.0,
            budget_fraction: 0.4,
            reuse_fraction: 0.0,
        }
    }

    #[test]
    fn simplex_initialises_then_reflects() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut nm = NelderMead::new();
        // Drive until the simplex is full.
        let mut proposals = 0;
        while !nm.full() {
            let c = nm.propose(&st, &mut rng);
            assert!(c.validate(m.registry()).is_ok());
            nm.feedback(&c, Some(10.0 + proposals as f64 * 0.1), &st);
            proposals += 1;
            assert!(proposals <= MAX_DIMS + 2, "simplex never filled");
        }
        assert_eq!(nm.simplex.len(), nm.dims.len() + 1);
        // Reflection proposals keep being valid and tracked.
        for _ in 0..5 {
            let c = nm.propose(&st, &mut rng);
            assert!(c.validate(m.registry()).is_ok());
            nm.feedback(&c, Some(9.0), &st);
        }
    }

    #[test]
    fn improvement_replaces_worst_vertex() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(12);
        let mut nm = NelderMead::new();
        while !nm.full() {
            let c = nm.propose(&st, &mut rng);
            nm.feedback(&c, Some(10.0), &st);
        }
        let c = nm.propose(&st, &mut rng);
        nm.feedback(&c, Some(3.0), &st);
        assert!(nm.simplex.iter().any(|(_, s)| *s == 3.0));
    }

    #[test]
    fn rejection_shrinks_worst_toward_best() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let mut nm = NelderMead::new();
        let mut i = 0;
        while !nm.full() {
            let c = nm.propose(&st, &mut rng);
            nm.feedback(&c, Some(10.0 + i as f64), &st);
            i += 1;
        }
        let worst_before = nm.simplex[nm.worst_idx()].0.clone();
        let c = nm.propose(&st, &mut rng);
        nm.feedback(&c, Some(1e9), &st); // terrible reflection
        let worst_after = &nm.simplex[nm.worst_idx()];
        assert_ne!(&worst_before, &worst_after.0);
    }

    #[test]
    fn stray_feedback_is_ignored() {
        let m = HierarchicalManipulator::new();
        let st = state(&m);
        let mut nm = NelderMead::new();
        // Feedback for a config NM never proposed must not corrupt state.
        let stranger = jtune_flags::JvmConfig::default_for(m.registry());
        nm.feedback(&stranger, Some(1.0), &st);
        assert!(nm.simplex.is_empty());
    }
}
