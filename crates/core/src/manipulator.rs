//! Configuration-space manipulators.
//!
//! A manipulator defines the *moves* a search technique can make: sample a
//! random point, mutate a point, cross two points. The three
//! implementations differ in what they know about the space:
//!
//! | | structure | flags touched |
//! |---|---|---|
//! | [`HierarchicalManipulator`] | flag tree (paper) | active flags + selectors |
//! | [`FlatManipulator`] | none | every tunable flag |
//! | [`SubsetManipulator`] | none | GC + heap flags only (prior work) |

use jtune_flags::{Category, Domain, FlagId, FlagValue, JvmConfig, Registry};
use jtune_flagtree::FlagTree;
use jtune_util::Rng;

/// Move generator over a configuration space.
pub trait ConfigManipulator: Sync {
    /// The registry configurations belong to.
    fn registry(&self) -> &Registry;

    /// A uniformly random valid configuration.
    fn random(&self, rng: &mut dyn RngDyn) -> JvmConfig;

    /// Perturb `config`. `strength` ∈ (0, 1]: the expected fraction of
    /// mutable coordinates touched (hill-climbers use small strengths,
    /// annealing starts large).
    fn mutate(&self, config: &JvmConfig, rng: &mut dyn RngDyn, strength: f64) -> JvmConfig;

    /// Uniform crossover of two parents.
    fn crossover(&self, a: &JvmConfig, b: &JvmConfig, rng: &mut dyn RngDyn) -> JvmConfig;

    /// Canonicalise (enforce structural consistency; identity for
    /// structure-free manipulators).
    fn canonicalize(&self, config: &mut JvmConfig);

    /// The numeric (int/double) flags currently worth treating as a
    /// continuous subspace for DE / Nelder-Mead, in a stable order.
    fn numeric_flags(&self, config: &JvmConfig) -> Vec<FlagId>;

    /// Short label for reports.
    fn name(&self) -> &'static str;

    /// Structural priming points the tuner should evaluate before free
    /// search. A manipulator that knows the space's structure (the flag
    /// hierarchy) enumerates its top-level alternatives — one of the
    /// concrete payoffs the paper claims for the tree. Structure-blind
    /// manipulators return nothing.
    fn primers(&self) -> Vec<JvmConfig> {
        Vec::new()
    }
}

/// Object-safe RNG facade so manipulators and techniques can share the
/// tuner's generator without being generic over its type.
pub trait RngDyn {
    /// Next uniform 64-bit value.
    fn next_u64_dyn(&mut self) -> u64;
    /// Uniform `f64` in `[0, 1)`.
    fn next_f64_dyn(&mut self) -> f64;
    /// Standard normal variate.
    fn next_gaussian_dyn(&mut self) -> f64;
}

impl<R: Rng> RngDyn for R {
    fn next_u64_dyn(&mut self) -> u64 {
        self.next_u64()
    }
    fn next_f64_dyn(&mut self) -> f64 {
        self.next_f64()
    }
    fn next_gaussian_dyn(&mut self) -> f64 {
        self.next_gaussian()
    }
}

/// Helpers over the dyn facade.
pub(crate) fn below(rng: &mut dyn RngDyn, bound: usize) -> usize {
    debug_assert!(bound > 0);
    // Multiply-shift; bias is negligible for the small bounds used here.
    ((rng.next_u64_dyn() as u128 * bound as u128) >> 64) as usize
}

pub(crate) fn chance(rng: &mut dyn RngDyn, p: f64) -> bool {
    rng.next_f64_dyn() < p
}

/// Sample a fresh value for `domain`, log-uniformly where flagged.
pub fn random_value(domain: &Domain, rng: &mut dyn RngDyn) -> FlagValue {
    match domain {
        Domain::Bool => FlagValue::Bool(chance(rng, 0.5)),
        Domain::IntRange { lo, hi, log_scale } => {
            let v = if *log_scale && *lo >= 0 {
                let lo_f = (*lo as f64).max(1.0);
                let hi_f = (*hi as f64).max(lo_f);
                let x = (lo_f.ln() + rng.next_f64_dyn() * (hi_f.ln() - lo_f.ln())).exp();
                (x.round() as i64).clamp(*lo, *hi)
            } else {
                let span = (*hi - *lo) as f64 + 1.0;
                *lo + (rng.next_f64_dyn() * span) as i64
            };
            FlagValue::Int(v.clamp(*lo, *hi))
        }
        Domain::DoubleRange { lo, hi } => FlagValue::Double(lo + rng.next_f64_dyn() * (hi - lo)),
        Domain::Enum { variants } => FlagValue::Enum(below(rng, variants.len().max(1)) as u16),
    }
}

/// Perturb `value` within `domain`: a local move (bool flip; multiplicative
/// step on log-scaled ints; gaussian step otherwise).
pub fn mutate_value(domain: &Domain, value: FlagValue, rng: &mut dyn RngDyn) -> FlagValue {
    match (domain, value) {
        (Domain::Bool, FlagValue::Bool(b)) => FlagValue::Bool(!b),
        (Domain::IntRange { lo, hi, log_scale }, FlagValue::Int(v)) => {
            let next = if *log_scale {
                let factor = (rng.next_gaussian_dyn() * 0.5).exp();
                ((v.max(*lo.max(&1)) as f64) * factor).round() as i64
            } else {
                let span = (*hi - *lo).max(1) as f64;
                v + (rng.next_gaussian_dyn() * 0.15 * span).round() as i64
            };
            let next = if next == v { v + 1 } else { next };
            FlagValue::Int(next.clamp(*lo, *hi))
        }
        (Domain::DoubleRange { lo, hi }, FlagValue::Double(v)) => {
            let next = v + rng.next_gaussian_dyn() * 0.15 * (hi - lo);
            FlagValue::Double(next.clamp(*lo, *hi))
        }
        (Domain::Enum { variants }, FlagValue::Enum(_)) => {
            FlagValue::Enum(below(rng, variants.len().max(1)) as u16)
        }
        // Type mismatch (corrupt input): resample.
        (d, _) => random_value(d, rng),
    }
}

// ---------------------------------------------------------------------
// Hierarchical (the paper's manipulator)
// ---------------------------------------------------------------------

/// Tree-aware moves: selectors switch whole structural alternatives, flag
/// mutations are restricted to the active set, and canonicalisation resets
/// dead flags so the search space is exactly the pruned hierarchy.
pub struct HierarchicalManipulator {
    registry: &'static Registry,
    tree: &'static FlagTree,
    /// Probability that a mutation step flips a selector rather than a
    /// parameter.
    selector_p: f64,
}

impl HierarchicalManipulator {
    /// Standard manipulator over the built-in registry and tree.
    pub fn new() -> Self {
        HierarchicalManipulator {
            registry: jtune_flags::hotspot_registry(),
            tree: jtune_flagtree::hotspot_tree(),
            selector_p: 0.15,
        }
    }

    /// The flag tree in use.
    pub fn tree(&self) -> &'static FlagTree {
        self.tree
    }
}

impl Default for HierarchicalManipulator {
    fn default() -> Self {
        Self::new()
    }
}

impl ConfigManipulator for HierarchicalManipulator {
    fn registry(&self) -> &Registry {
        self.registry
    }

    fn random(&self, rng: &mut dyn RngDyn) -> JvmConfig {
        let mut c = JvmConfig::default_for(self.registry);
        // Choose structure first.
        for sid in self.tree.selector_ids() {
            let n = self.tree.selector(sid).options.len();
            self.tree
                .set_selector(self.registry, &mut c, sid, below(rng, n));
        }
        // Then randomise a sample of active flags (full-random over 400+
        // flags is almost always an invalid-by-performance config; the
        // paper's tuner similarly seeds near the defaults).
        let active = self.tree.active_flags(&c);
        for id in active {
            if chance(rng, 0.25) {
                let spec = self.registry.spec(id);
                c.set(id, random_value(&spec.domain, rng));
            }
        }
        self.canonicalize(&mut c);
        c
    }

    fn mutate(&self, config: &JvmConfig, rng: &mut dyn RngDyn, strength: f64) -> JvmConfig {
        let mut c = config.clone();
        if chance(rng, self.selector_p * strength.max(0.2)) {
            let sels: Vec<_> = self.tree.selector_ids().collect();
            let sid = sels[below(rng, sels.len())];
            let n = self.tree.selector(sid).options.len();
            self.tree
                .set_selector(self.registry, &mut c, sid, below(rng, n));
        }
        let active = self.tree.active_flags(&c);
        // Touch on average `strength × 4` active flags, at least one.
        let touches = ((strength * 4.0).round() as usize).max(1);
        for _ in 0..touches {
            let id = active[below(rng, active.len())];
            let spec = self.registry.spec(id);
            c.set(id, mutate_value(&spec.domain, c.get(id), rng));
        }
        self.canonicalize(&mut c);
        c
    }

    fn crossover(&self, a: &JvmConfig, b: &JvmConfig, rng: &mut dyn RngDyn) -> JvmConfig {
        let mut c = a.clone();
        // Inherit each selector choice from a random parent, then each
        // active flag from a random parent.
        for sid in self.tree.selector_ids() {
            let donor = if chance(rng, 0.5) { a } else { b };
            let opt = self.tree.selector_state(sid, donor);
            self.tree.set_selector(self.registry, &mut c, sid, opt);
        }
        for id in self.tree.active_flags(&c) {
            let donor = if chance(rng, 0.5) { a } else { b };
            let v = donor.get(id);
            if self.registry.spec(id).domain.contains(v) {
                c.set(id, v);
            }
        }
        self.canonicalize(&mut c);
        c
    }

    fn canonicalize(&self, config: &mut JvmConfig) {
        self.tree.enforce(self.registry, config);
    }

    fn numeric_flags(&self, config: &JvmConfig) -> Vec<FlagId> {
        self.tree
            .active_flags(config)
            .into_iter()
            .filter(|id| {
                matches!(
                    self.registry.spec(*id).domain,
                    Domain::IntRange { .. } | Domain::DoubleRange { .. }
                ) && self.registry.spec(*id).perf
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "hierarchical"
    }

    fn primers(&self) -> Vec<JvmConfig> {
        // Every combination of the tree's structural selectors (4
        // collectors × 2 JIT modes for the standard tree), evaluated from
        // otherwise-default flags: the hierarchy makes the top-level
        // alternatives enumerable, so a session always measures them.
        let mut out = Vec::new();
        let default = JvmConfig::default_for(self.registry);
        let sels: Vec<_> = self.tree.selector_ids().collect();
        let counts: Vec<usize> = sels
            .iter()
            .map(|s| self.tree.selector(*s).options.len())
            .collect();
        let mut choice = vec![0usize; sels.len()];
        loop {
            let mut c = default.clone();
            for (i, &sid) in sels.iter().enumerate() {
                self.tree
                    .set_selector(self.registry, &mut c, sid, choice[i]);
            }
            out.push(c);
            let mut i = 0;
            loop {
                if i == choice.len() {
                    return out;
                }
                choice[i] += 1;
                if choice[i] < counts[i] {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Flat (structure-blind baseline)
// ---------------------------------------------------------------------

/// Whole-space moves with no dependency knowledge: any tunable flag can be
/// mutated regardless of whether it can matter, and mutually-exclusive
/// selector flags can be combined arbitrarily (the JVM resolves the
/// conflict by precedence, so the configurations are *legal*, just
/// massively redundant).
pub struct FlatManipulator {
    registry: &'static Registry,
    tunable: Vec<FlagId>,
}

impl FlatManipulator {
    /// Flat manipulator over the built-in registry.
    pub fn new() -> Self {
        let registry = jtune_flags::hotspot_registry();
        FlatManipulator {
            registry,
            tunable: registry.tunable_ids().to_vec(),
        }
    }
}

impl Default for FlatManipulator {
    fn default() -> Self {
        Self::new()
    }
}

impl ConfigManipulator for FlatManipulator {
    fn registry(&self) -> &Registry {
        self.registry
    }

    fn random(&self, rng: &mut dyn RngDyn) -> JvmConfig {
        let mut c = JvmConfig::default_for(self.registry);
        for &id in &self.tunable {
            if chance(rng, 0.25) {
                c.set(id, random_value(&self.registry.spec(id).domain, rng));
            }
        }
        c
    }

    fn mutate(&self, config: &JvmConfig, rng: &mut dyn RngDyn, strength: f64) -> JvmConfig {
        let mut c = config.clone();
        let touches = ((strength * 4.0).round() as usize).max(1);
        for _ in 0..touches {
            let id = self.tunable[below(rng, self.tunable.len())];
            let spec = self.registry.spec(id);
            c.set(id, mutate_value(&spec.domain, c.get(id), rng));
        }
        c
    }

    fn crossover(&self, a: &JvmConfig, b: &JvmConfig, rng: &mut dyn RngDyn) -> JvmConfig {
        let mut c = a.clone();
        for &id in &self.tunable {
            if chance(rng, 0.5) {
                c.set(id, b.get(id));
            }
        }
        c
    }

    fn canonicalize(&self, _config: &mut JvmConfig) {}

    fn numeric_flags(&self, _config: &JvmConfig) -> Vec<FlagId> {
        self.tunable
            .iter()
            .copied()
            .filter(|id| {
                matches!(
                    self.registry.spec(*id).domain,
                    Domain::IntRange { .. } | Domain::DoubleRange { .. }
                ) && self.registry.spec(*id).perf
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "flat"
    }
}

// ---------------------------------------------------------------------
// Subset (prior-work baseline)
// ---------------------------------------------------------------------

/// Prior work tunes a hand-picked subset — typically GC algorithm + heap
/// sizing. This manipulator restricts every move to those categories; the
/// rest of the JVM stays at defaults. Experiment E5 quantifies what that
/// leaves on the table.
pub struct SubsetManipulator {
    registry: &'static Registry,
    tree: &'static FlagTree,
    subset: Vec<FlagId>,
}

impl SubsetManipulator {
    /// GC + heap subset over the built-in registry.
    pub fn gc_and_heap() -> Self {
        let registry = jtune_flags::hotspot_registry();
        let tree = jtune_flagtree::hotspot_tree();
        let cats = [
            Category::Heap,
            Category::GcCommon,
            Category::GcSerial,
            Category::GcParallel,
            Category::GcCms,
            Category::GcG1,
        ];
        let subset = cats
            .iter()
            .flat_map(|c| registry.ids_in_category(*c))
            .filter(|id| !tree.is_assigned(*id))
            .collect();
        SubsetManipulator {
            registry,
            tree,
            subset,
        }
    }

    fn gc_selector(&self) -> jtune_flagtree::SelectorId {
        self.tree
            .selector_ids()
            .find(|s| self.tree.selector(*s).name == "gc.collector")
            .expect("gc selector present")
    }
}

impl ConfigManipulator for SubsetManipulator {
    fn registry(&self) -> &Registry {
        self.registry
    }

    fn random(&self, rng: &mut dyn RngDyn) -> JvmConfig {
        let mut c = JvmConfig::default_for(self.registry);
        let sid = self.gc_selector();
        let n = self.tree.selector(sid).options.len();
        self.tree
            .set_selector(self.registry, &mut c, sid, below(rng, n));
        for &id in &self.subset {
            if chance(rng, 0.3) {
                c.set(id, random_value(&self.registry.spec(id).domain, rng));
            }
        }
        self.canonicalize(&mut c);
        c
    }

    fn mutate(&self, config: &JvmConfig, rng: &mut dyn RngDyn, strength: f64) -> JvmConfig {
        let mut c = config.clone();
        if chance(rng, 0.15) {
            let sid = self.gc_selector();
            let n = self.tree.selector(sid).options.len();
            self.tree
                .set_selector(self.registry, &mut c, sid, below(rng, n));
        }
        let touches = ((strength * 4.0).round() as usize).max(1);
        for _ in 0..touches {
            let id = self.subset[below(rng, self.subset.len())];
            let spec = self.registry.spec(id);
            c.set(id, mutate_value(&spec.domain, c.get(id), rng));
        }
        self.canonicalize(&mut c);
        c
    }

    fn crossover(&self, a: &JvmConfig, b: &JvmConfig, rng: &mut dyn RngDyn) -> JvmConfig {
        let mut c = a.clone();
        for &id in &self.subset {
            if chance(rng, 0.5) {
                c.set(id, b.get(id));
            }
        }
        self.canonicalize(&mut c);
        c
    }

    fn canonicalize(&self, config: &mut JvmConfig) {
        self.tree.enforce(self.registry, config);
    }

    fn numeric_flags(&self, _config: &JvmConfig) -> Vec<FlagId> {
        self.subset
            .iter()
            .copied()
            .filter(|id| {
                matches!(
                    self.registry.spec(*id).domain,
                    Domain::IntRange { .. } | Domain::DoubleRange { .. }
                ) && self.registry.spec(*id).perf
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "gc-subset"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_util::Xoshiro256pp;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(42)
    }

    #[test]
    fn random_points_are_valid() {
        let mut r = rng();
        for m in [
            &HierarchicalManipulator::new() as &dyn ConfigManipulator,
            &FlatManipulator::new(),
            &SubsetManipulator::gc_and_heap(),
        ] {
            for _ in 0..20 {
                let c = m.random(&mut r);
                assert!(c.validate(m.registry()).is_ok(), "{} invalid", m.name());
            }
        }
    }

    #[test]
    fn mutation_changes_something_and_stays_valid() {
        let m = HierarchicalManipulator::new();
        let mut r = rng();
        let base = JvmConfig::default_for(m.registry());
        let mut changed = 0;
        for _ in 0..50 {
            let c = m.mutate(&base, &mut r, 0.5);
            assert!(c.validate(m.registry()).is_ok());
            if c.fingerprint() != base.fingerprint() {
                changed += 1;
            }
        }
        assert!(
            changed > 40,
            "only {changed}/50 mutations changed the config"
        );
    }

    #[test]
    fn hierarchical_points_are_canonical() {
        let m = HierarchicalManipulator::new();
        let mut r = rng();
        for _ in 0..20 {
            let c = m.random(&mut r);
            let mut again = c.clone();
            m.canonicalize(&mut again);
            assert_eq!(c.fingerprint(), again.fingerprint(), "not a fixed point");
        }
    }

    #[test]
    fn subset_never_touches_jit_flags() {
        let m = SubsetManipulator::gc_and_heap();
        let r0 = m.registry();
        let jit_flags: Vec<FlagId> = [
            "TieredCompilation",
            "CompileThreshold",
            "MaxInlineSize",
            "UseBiasedLocking",
        ]
        .iter()
        .map(|n| r0.id(n).unwrap())
        .collect();
        let defaults = JvmConfig::default_for(r0);
        let mut r = rng();
        for _ in 0..30 {
            let c = m.random(&mut r);
            let c = m.mutate(&c, &mut r, 1.0);
            for &f in &jit_flags {
                assert_eq!(
                    c.get(f),
                    defaults.get(f),
                    "subset touched {}",
                    r0.spec(f).name
                );
            }
        }
    }

    #[test]
    fn flat_can_produce_conflicting_selectors() {
        // The point of the flat baseline: it wastes moves on redundant /
        // conflicting flags. Over many random points, at least one should
        // enable ≥ 2 exclusive collectors.
        let m = FlatManipulator::new();
        let r0 = m.registry();
        let mut r = rng();
        let mut saw_conflict = false;
        for _ in 0..200 {
            let c = m.random(&mut r);
            let on = ["UseSerialGC", "UseConcMarkSweepGC", "UseG1GC"]
                .iter()
                .filter(|n| c.get_by_name(r0, n) == Some(FlagValue::Bool(true)))
                .count();
            if on >= 2 {
                saw_conflict = true;
                break;
            }
        }
        assert!(saw_conflict, "flat manipulator suspiciously tidy");
    }

    #[test]
    fn crossover_mixes_parents() {
        let m = HierarchicalManipulator::new();
        let mut r = rng();
        let a = m.random(&mut r);
        let b = m.random(&mut r);
        let c = m.crossover(&a, &b, &mut r);
        assert!(c.validate(m.registry()).is_ok());
    }

    #[test]
    fn numeric_flags_are_numeric_and_active() {
        let m = HierarchicalManipulator::new();
        let c = {
            let mut c = JvmConfig::default_for(m.registry());
            m.canonicalize(&mut c);
            c
        };
        let dims = m.numeric_flags(&c);
        assert!(dims.len() > 10, "only {} numeric dims", dims.len());
        for id in dims {
            let spec = m.registry().spec(id);
            assert!(matches!(
                spec.domain,
                Domain::IntRange { .. } | Domain::DoubleRange { .. }
            ));
        }
    }

    #[test]
    fn mutate_value_respects_domains() {
        let mut r = rng();
        let d = Domain::IntRange {
            lo: 10,
            hi: 1000,
            log_scale: true,
        };
        let mut v = FlagValue::Int(100);
        for _ in 0..200 {
            v = mutate_value(&d, v, &mut r);
            assert!(d.contains(v), "{v:?} escaped domain");
        }
        let e = Domain::Enum {
            variants: &["a", "b", "c"],
        };
        for _ in 0..50 {
            assert!(e.contains(mutate_value(&e, FlagValue::Enum(1), &mut r)));
        }
    }

    #[test]
    fn mutate_value_always_moves_ints() {
        let mut r = rng();
        let d = Domain::IntRange {
            lo: 0,
            hi: 10,
            log_scale: false,
        };
        // From an interior point, the mutation must not be a no-op (domain
        // endpoints may clamp back).
        for _ in 0..100 {
            let v = mutate_value(&d, FlagValue::Int(5), &mut r);
            assert!(d.contains(v));
        }
    }
}
