//! Post-tuning analysis: which of the changed flags actually mattered?
//!
//! Search-based tuners drag inert "hitchhiker" flags along in their best
//! configurations (a mutation that flipped `PrintGCDetails` on the same
//! step that found a better heap size survives selection). The paper's
//! discussion of found configurations — and any user deciding what to put
//! in production — needs the marginal impact of each setting:
//! [`flag_impact`] reverts each changed flag to its default individually
//! and measures the slowdown.

use jtune_flags::{FlagValue, JvmConfig};
use jtune_harness::Executor;
use jtune_util::stats;

/// Marginal impact of one flag setting in a tuned configuration.
#[derive(Clone, Debug)]
pub struct FlagImpact {
    /// Flag name.
    pub name: &'static str,
    /// The tuned value.
    pub value: FlagValue,
    /// The default it replaced.
    pub default: FlagValue,
    /// Percentage slowdown incurred by reverting this flag alone
    /// (positive = the setting helps; ≈ 0 = hitchhiker; negative = the
    /// setting actively hurts and survived by luck).
    pub impact_percent: f64,
}

/// Options for [`flag_impact`].
#[derive(Clone, Copy, Debug)]
pub struct ImpactOptions {
    /// Runs per measurement (median taken).
    pub repeats: u32,
    /// Noise seed base.
    pub seed: u64,
    /// |impact| below this is classified inert by [`split_hitchhikers`]
    /// (keep above the measurement-noise floor).
    pub hitchhiker_threshold: f64,
}

impl Default for ImpactOptions {
    fn default() -> Self {
        ImpactOptions {
            repeats: 15,
            seed: 0x1A_7AC7,
            hitchhiker_threshold: 0.75,
        }
    }
}

fn median_score(executor: &dyn Executor, config: &JvmConfig, opts: &ImpactOptions) -> f64 {
    let times: Vec<f64> = (0..opts.repeats.max(1))
        .map(|i| {
            let m = executor.measure(config, opts.seed.wrapping_add(i as u64));
            if m.error.is_some() {
                f64::INFINITY
            } else {
                m.time.as_secs_f64()
            }
        })
        .collect();
    stats::median(&times)
}

/// Measure the marginal impact of every non-default flag in `config`,
/// sorted most-beneficial first.
pub fn flag_impact(
    executor: &dyn Executor,
    config: &JvmConfig,
    opts: ImpactOptions,
) -> Vec<FlagImpact> {
    let registry = executor.registry();
    let tuned_secs = median_score(executor, config, &opts);
    let mut impacts: Vec<FlagImpact> = config
        .delta(registry)
        .into_iter()
        .map(|d| {
            let mut reverted = config.clone();
            reverted.set(d.id, d.default);
            let reverted_secs = median_score(executor, &reverted, &opts);
            FlagImpact {
                name: d.name,
                value: d.value,
                default: d.default,
                impact_percent: stats::improvement_percent(reverted_secs, tuned_secs),
            }
        })
        .collect();
    impacts.sort_by(|a, b| b.impact_percent.total_cmp(&a.impact_percent));
    impacts
}

/// Split impacts into `(load_bearing, hitchhikers)` by the threshold.
pub fn split_hitchhikers(
    impacts: Vec<FlagImpact>,
    threshold: f64,
) -> (Vec<FlagImpact>, Vec<FlagImpact>) {
    impacts
        .into_iter()
        .partition(|i| i.impact_percent.abs() >= threshold)
}

/// A minimal configuration: the tuned config with every hitchhiker
/// reverted to its default — what a user should actually deploy.
pub fn minimized_config(
    executor: &dyn Executor,
    config: &JvmConfig,
    opts: ImpactOptions,
) -> JvmConfig {
    let registry = executor.registry();
    let impacts = flag_impact(executor, config, opts);
    let mut minimal = config.clone();
    for impact in impacts {
        if impact.impact_percent.abs() < opts.hitchhiker_threshold {
            if let Some(id) = registry.id(impact.name) {
                minimal.set(id, impact.default);
            }
        }
    }
    minimal
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_harness::SimExecutor;
    use jtune_jvmsim::Workload;

    fn executor() -> SimExecutor {
        let mut w = Workload::baseline("impact-test");
        w.total_work = 3e8;
        w.hot_methods = 1200;
        w.hotness_skew = 0.6;
        SimExecutor::new(w)
    }

    fn tuned_config(ex: &SimExecutor) -> JvmConfig {
        let r = ex.registry();
        let mut c = JvmConfig::default_for(r);
        // One load-bearing flag, one hitchhiker.
        c.set_by_name(r, "TieredCompilation", FlagValue::Bool(true))
            .unwrap();
        c.set_by_name(r, "PrintGCDetails", FlagValue::Bool(true))
            .unwrap();
        c
    }

    #[test]
    fn impact_separates_load_bearing_from_hitchhikers() {
        let ex = executor();
        let config = tuned_config(&ex);
        let impacts = flag_impact(&ex, &config, ImpactOptions::default());
        assert_eq!(impacts.len(), 2);
        let tiered = impacts
            .iter()
            .find(|i| i.name == "TieredCompilation")
            .unwrap();
        let print = impacts.iter().find(|i| i.name == "PrintGCDetails").unwrap();
        assert!(
            tiered.impact_percent > 2.0,
            "tiered {:.2}%",
            tiered.impact_percent
        );
        assert!(
            print.impact_percent.abs() < 1.5,
            "print {:.2}%",
            print.impact_percent
        );
        // Sorted descending.
        assert_eq!(impacts[0].name, "TieredCompilation");
    }

    #[test]
    fn split_respects_threshold() {
        let ex = executor();
        let config = tuned_config(&ex);
        let impacts = flag_impact(&ex, &config, ImpactOptions::default());
        let (load, hitch) = split_hitchhikers(impacts, 1.5);
        assert_eq!(load.len(), 1);
        assert_eq!(hitch.len(), 1);
    }

    #[test]
    fn minimized_config_drops_only_hitchhikers() {
        let ex = executor();
        let r = ex.registry();
        let config = tuned_config(&ex);
        let opts = ImpactOptions {
            hitchhiker_threshold: 1.5,
            ..ImpactOptions::default()
        };
        let minimal = minimized_config(&ex, &config, opts);
        assert_eq!(
            minimal.get_by_name(r, "TieredCompilation"),
            Some(FlagValue::Bool(true)),
            "load-bearing flag was dropped"
        );
        assert_eq!(
            minimal.get_by_name(r, "PrintGCDetails"),
            Some(FlagValue::Bool(false)),
            "hitchhiker survived"
        );
        // Minimal config performs as well as the tuned one.
        let full = median_score(&ex, &config, &opts);
        let min = median_score(&ex, &minimal, &opts);
        assert!((min / full - 1.0).abs() < 0.03, "full {full} min {min}");
    }

    #[test]
    fn default_config_has_no_impacts() {
        let ex = executor();
        let config = JvmConfig::default_for(ex.registry());
        assert!(flag_impact(&ex, &config, ImpactOptions::default()).is_empty());
    }
}
