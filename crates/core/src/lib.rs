//! # autotuner-core
//!
//! The HotSpot Auto-tuner itself — the paper's primary contribution.
//!
//! ## Architecture
//!
//! - [`manipulator`] — how the search moves through configuration space.
//!   [`HierarchicalManipulator`] is the paper's approach: structural
//!   choices (collector, JIT mode) are mutated through the flag tree's
//!   selectors, parameter mutations only touch flags *active* under the
//!   current structure, and every point is canonicalised so dead flags
//!   never masquerade as distinct configurations. [`FlatManipulator`]
//!   (whole space, no structure) and [`SubsetManipulator`] (GC+heap flags
//!   only — the prior-work baseline the paper contrasts with) exist for
//!   experiment E5.
//! - [`techniques`] — the search techniques: random sampling, greedy
//!   hill-climbing with restarts, simulated annealing, a genetic
//!   algorithm, differential evolution and Nelder-Mead on the numeric
//!   subspace, and the [`techniques::ensemble::AucBandit`] meta-technique
//!   that allocates proposals to whichever technique is currently paying
//!   off (the OpenTuner-style ensemble the paper's tuner embodies).
//! - [`tuner`] — the driver: evaluate the default, then propose/evaluate/
//!   learn in parallel batches until the tuning-time budget is exhausted,
//!   recording every trial for the convergence experiments.
//!
//! ## Quick start
//!
//! ```
//! use autotuner_core::{Tuner, TunerOptions};
//! use jtune_harness::SimExecutor;
//! use jtune_telemetry::TelemetryBus;
//! use jtune_workloads::workload_by_name;
//! use jtune_util::SimDuration;
//!
//! let workload = workload_by_name("compress").unwrap();
//! let executor = SimExecutor::new(workload);
//! let opts = TunerOptions::builder()
//!     .budget(SimDuration::from_mins(5)) // paper uses 200
//!     .build()
//!     .unwrap();
//! let result = Tuner::new(opts).run(&executor, "compress", &TelemetryBus::disabled());
//! assert!(result.session.best_secs <= result.session.default_secs);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod analysis;
pub mod manipulator;
pub mod techniques;
pub mod tuner;

pub use analysis::{flag_impact, minimized_config, FlagImpact, ImpactOptions};
pub use jtune_model::ModelPolicy;
pub use manipulator::{
    ConfigManipulator, FlatManipulator, HierarchicalManipulator, SubsetManipulator,
};
pub use techniques::ensemble::AucBandit;
pub use techniques::portfolio::Portfolio;
pub use techniques::{Technique, TechniqueSet};
pub use tuner::{
    ManipulatorKind, OptionsError, SessionError, Tuner, TunerOptions, TunerOptionsBuilder,
    TuningResult,
};
