//! Cross-module semantic checks: the hierarchy's activation semantics must
//! agree with how the simulator interprets flags (a flag the tree marks
//! dead must indeed be read-as-default by the resolver).

use jtune_flags::{hotspot_registry, FlagValue, JvmConfig};
use jtune_flagtree::hotspot_tree;

#[test]
fn tree_and_registry_agree_on_selector_flags() {
    let r = hotspot_registry();
    let tree = hotspot_tree();
    // Every selector-assigned flag exists, is a tunable bool, and never
    // appears as an independently tunable leaf.
    let active = tree.active_flags(&JvmConfig::default_for(r));
    for name in [
        "UseSerialGC",
        "UseParallelGC",
        "UseParallelOldGC",
        "UseConcMarkSweepGC",
        "UseG1GC",
        "UseParNewGC",
        "TieredCompilation",
    ] {
        let id = r.id(name).unwrap();
        assert!(tree.is_assigned(id), "{name} should be selector-assigned");
        assert!(!active.contains(&id), "{name} leaked into the active set");
    }
}

#[test]
fn every_selector_option_yields_a_bootable_configuration() {
    // The hierarchy's central guarantee: any combination of selector
    // options produces a configuration the (simulated) JVM accepts.
    let r = hotspot_registry();
    let tree = hotspot_tree();
    let sels: Vec<_> = tree.selector_ids().collect();
    let counts: Vec<usize> = sels
        .iter()
        .map(|s| tree.selector(*s).options.len())
        .collect();
    let mut choice = vec![0usize; sels.len()];
    let machine = jtune_jvmsim::Machine::default();
    loop {
        let mut c = JvmConfig::default_for(r);
        for (i, &sid) in sels.iter().enumerate() {
            tree.set_selector(r, &mut c, sid, choice[i]);
        }
        let labels: Vec<&str> = sels
            .iter()
            .zip(&choice)
            .map(|(s, &o)| tree.selector(*s).options[o].label)
            .collect();
        assert!(
            jtune_jvmsim::FlagView::resolve(r, &c, &machine).is_ok(),
            "combination {labels:?} does not boot"
        );
        let mut i = 0;
        loop {
            if i == choice.len() {
                return;
            }
            choice[i] += 1;
            if choice[i] < counts[i] {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
}

#[test]
fn dead_flag_values_cannot_affect_the_simulator() {
    // Set every CMS flag to an extreme value while running parallel GC:
    // after canonicalisation the simulated outcome must equal the default
    // outcome bit for bit.
    let r = hotspot_registry();
    let tree = hotspot_tree();
    let wl = jtune_jvmsim::Workload::baseline("dead-flags");
    let sim = jtune_jvmsim::JvmSim::new();

    let mut scribbled = JvmConfig::default_for(r);
    for id in r.ids_in_category(jtune_flags::Category::GcCms) {
        let spec = r.spec(id);
        let extreme = match &spec.domain {
            jtune_flags::Domain::Bool => FlagValue::Bool(true),
            jtune_flags::Domain::IntRange { hi, .. } => FlagValue::Int(*hi),
            jtune_flags::Domain::DoubleRange { hi, .. } => FlagValue::Double(*hi),
            jtune_flags::Domain::Enum { variants } => FlagValue::Enum((variants.len() - 1) as u16),
        };
        scribbled.set(id, extreme);
    }
    tree.enforce(r, &mut scribbled);

    let default = JvmConfig::default_for(r);
    let a = sim.run(r, &default, &wl, 5);
    let b = sim.run(r, &scribbled, &wl, 5);
    assert_eq!(a.breakdown.total(), b.breakdown.total());
    assert_eq!(a.gc.young_collections, b.gc.young_collections);
}

#[test]
fn hierarchy_active_set_is_stable_across_calls() {
    let r = hotspot_registry();
    let tree = hotspot_tree();
    let c = JvmConfig::default_for(r);
    let a = tree.active_flags(&c);
    let b = tree.active_flags(&c);
    assert_eq!(a, b, "active-flag order must be deterministic");
}
