//! Search-space cardinality analysis (experiment E3).
//!
//! The paper motivates the hierarchy by the size of the raw configuration
//! space: with 600+ flags the flat space is astronomically large, and most
//! of it is *redundant* — points differing only in flags that are dead
//! under the current structural choices. This module computes:
//!
//! - the **flat** log₁₀ space size (every tunable flag independent), and
//! - the **per-stratum** sizes, one stratum per combination of selector
//!   options, counting only flags active within that stratum (gates counted
//!   as "potentially open": the gate bit plus its subtree).
//!
//! Continuous domains are counted as 10³ grid points, matching how a
//! practical tuner discretises them.

use jtune_flags::Registry;

use crate::tree::{FlagTree, NodeData, NodeId};

/// Size of one selector-combination stratum.
#[derive(Clone, Debug)]
pub struct StratumStats {
    /// `(selector name, option label)` choices defining the stratum.
    pub choices: Vec<(&'static str, &'static str)>,
    /// Number of tunable flags active (counting gated subtrees).
    pub active_flags: usize,
    /// log₁₀ of the stratum's configuration count.
    pub log10_size: f64,
}

/// Flat-vs-hierarchical space statistics.
#[derive(Clone, Debug)]
pub struct SpaceStats {
    /// Total flags in the registry.
    pub total_flags: usize,
    /// Tunable (non-develop) flags.
    pub tunable_flags: usize,
    /// log₁₀ size of the flat space over all tunable flags.
    pub flat_log10: f64,
    /// One entry per selector-option combination.
    pub strata: Vec<StratumStats>,
    /// log₁₀ of the total hierarchical space (sum over strata).
    pub hierarchical_log10: f64,
}

impl SpaceStats {
    /// Compute the statistics for `tree` over `registry`.
    pub fn compute(tree: &FlagTree, registry: &Registry) -> SpaceStats {
        let flat_log10: f64 = registry
            .tunable_ids()
            .iter()
            .map(|&id| registry.spec(id).domain.log10_cardinality())
            .sum();

        // Enumerate selector-option combinations.
        let selector_option_counts: Vec<usize> =
            tree.selectors().iter().map(|s| s.options.len()).collect();
        let mut strata = Vec::new();
        let mut choice = vec![0usize; selector_option_counts.len()];
        loop {
            strata.push(stratum_stats(tree, registry, &choice));
            // Odometer increment.
            let mut i = 0;
            loop {
                if i == choice.len() {
                    // Wrapped past the last digit: done.
                    let hierarchical_log10 = log10_sum(strata.iter().map(|s| s.log10_size));
                    return SpaceStats {
                        total_flags: registry.len(),
                        tunable_flags: registry.tunable_ids().len(),
                        flat_log10,
                        strata,
                        hierarchical_log10,
                    };
                }
                choice[i] += 1;
                if choice[i] < selector_option_counts[i] {
                    break;
                }
                choice[i] = 0;
                i += 1;
            }
        }
    }

    /// Orders of magnitude removed by the hierarchy.
    pub fn reduction_log10(&self) -> f64 {
        self.flat_log10 - self.hierarchical_log10
    }
}

/// log₁₀(Σ 10^xᵢ) computed stably.
fn log10_sum(xs: impl Iterator<Item = f64>) -> f64 {
    let xs: Vec<f64> = xs.collect();
    let m = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if !m.is_finite() {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|x| 10f64.powf(x - m)).sum::<f64>().log10()
}

fn stratum_stats(tree: &FlagTree, registry: &Registry, choice: &[usize]) -> StratumStats {
    let choices: Vec<(&'static str, &'static str)> = tree
        .selectors()
        .iter()
        .zip(choice.iter())
        .map(|(sel, &opt)| (sel.name, sel.options[opt].label))
        .collect();
    let mut active_flags = 0usize;
    let mut log10_size = 0.0f64;
    walk(
        tree,
        registry,
        tree.root(),
        choice,
        &mut active_flags,
        &mut log10_size,
    );
    StratumStats {
        choices,
        active_flags,
        log10_size,
    }
}

fn walk(
    tree: &FlagTree,
    registry: &Registry,
    id: NodeId,
    choice: &[usize],
    flags: &mut usize,
    size: &mut f64,
) {
    let node = tree.node(id);
    match &node.data {
        NodeData::Group { .. } => {
            for &c in &node.children {
                walk(tree, registry, c, choice, flags, size);
            }
        }
        NodeData::SelectorNode(sid) => {
            let opt = choice[sid.index()];
            for &c in &tree.selector(*sid).options[opt].children {
                walk(tree, registry, c, choice, flags, size);
            }
        }
        NodeData::Gate { flag, .. } => {
            if registry.spec(*flag).tunable() {
                *flags += 1;
                *size += registry.spec(*flag).domain.log10_cardinality();
            }
            // Count the gated subtree: it is reachable within this stratum.
            for &c in &node.children {
                walk(tree, registry, c, choice, flags, size);
            }
        }
        NodeData::Leaf { flag } => {
            if registry.spec(*flag).tunable() {
                *flags += 1;
                *size += registry.spec(*flag).domain.log10_cardinality();
            }
        }
    }
}

// Expose SelectorId::index for the walk above.
impl crate::tree::SelectorId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::hotspot_tree;
    use jtune_flags::hotspot_registry;

    #[test]
    fn strata_cover_all_selector_combinations() {
        let tree = hotspot_tree();
        let r = hotspot_registry();
        let stats = SpaceStats::compute(tree, r);
        let expected: usize = tree.selectors().iter().map(|s| s.options.len()).product();
        assert_eq!(stats.strata.len(), expected);
        // 4 collectors × 2 JIT modes for the standard tree.
        assert_eq!(expected, 8);
    }

    #[test]
    fn hierarchy_reduces_space_by_many_orders_of_magnitude() {
        let tree = hotspot_tree();
        let r = hotspot_registry();
        let stats = SpaceStats::compute(tree, r);
        assert!(stats.flat_log10 > 200.0, "flat {:.1}", stats.flat_log10);
        assert!(
            stats.reduction_log10() > 10.0,
            "reduction only {:.1} orders",
            stats.reduction_log10()
        );
        // Sanity: the hierarchical space is still enormous (we did not
        // accidentally prune real choices away).
        assert!(stats.hierarchical_log10 > 100.0);
    }

    #[test]
    fn every_stratum_smaller_than_flat() {
        let tree = hotspot_tree();
        let r = hotspot_registry();
        let stats = SpaceStats::compute(tree, r);
        for s in &stats.strata {
            assert!(
                s.log10_size < stats.flat_log10,
                "stratum {:?} not smaller",
                s.choices
            );
            assert!(s.active_flags > 100);
        }
    }

    #[test]
    fn log10_sum_is_stable() {
        let x = log10_sum([300.0, 300.0].into_iter());
        assert!((x - (300.0 + 2f64.log10())).abs() < 1e-9);
        assert_eq!(log10_sum(std::iter::empty()), f64::NEG_INFINITY);
    }

    #[test]
    fn g1_and_cms_strata_differ_in_size() {
        let tree = hotspot_tree();
        let r = hotspot_registry();
        let stats = SpaceStats::compute(tree, r);
        let size_of = |label: &str| -> f64 {
            stats
                .strata
                .iter()
                .find(|s| s.choices.iter().any(|(_, l)| *l == label))
                .unwrap()
                .log10_size
        };
        // CMS has far more flags than serial; sizes must reflect that.
        assert!(size_of("cms") > size_of("serial"));
    }
}
