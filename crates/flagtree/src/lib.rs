//! # jtune-flagtree
//!
//! The **flag hierarchy** — the structural contribution of *Auto-Tuning the
//! Java Virtual Machine* (Jayasena et al., IPDPSW'15). The paper organises
//! HotSpot's 600+ flags into a tree that
//!
//! 1. **resolves dependencies**: the five `Use*GC` collector-selection
//!    flags are mutually exclusive, and every collector owns a family of
//!    flags that are meaningless unless that collector is selected
//!    (likewise `TieredCompilation` vs. the `Tier*` thresholds, `UseTLAB`
//!    vs. the TLAB sizing flags, and so on); and
//! 2. **shrinks the search space**: a tuner that understands the tree never
//!    wastes evaluations mutating flags that cannot matter under the
//!    current structural choices.
//!
//! This crate models the tree with three node flavours:
//!
//! - **Group** — structural organisation only (`heap`, `gc`, `jit`, …).
//! - **Selector** — a one-of-N choice (e.g. *which collector*). Each option
//!   carries flag *assignments* (setting `UseG1GC` and clearing the other
//!   four) and owns a subtree active only while chosen.
//! - **Gate** — a boolean flag that activates its subtree when set to a
//!   given polarity (e.g. `UseTLAB` gating `TLABSize`).
//!
//! Plain **leaves** are tunable flags, active whenever every ancestor is.
//!
//! [`FlagTree::enforce`] canonicalises a configuration: selector assignments
//! are applied and every *inactive* flag is reset to its default. Canonical
//! configs make deduplication exact (two configs differing only in dead
//! flags are the same point) — this is where the measured search-space
//! reduction of experiment E3 comes from.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod build;
pub mod space;
pub mod tree;

pub use build::hotspot_tree;
pub use space::{SpaceStats, StratumStats};
pub use tree::{FlagTree, NodeData, NodeId, Selector, SelectorId, SelectorOption, TreeBuilder};
