//! The tree structure, activation resolution, and canonicalisation.

use std::collections::HashSet;

use jtune_flags::{FlagId, FlagValue, JvmConfig, Registry};

/// Index of a node within a [`FlagTree`] arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) u32);

/// Index of a selector within a [`FlagTree`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SelectorId(pub(crate) u32);

/// One option of a [`Selector`].
#[derive(Clone, Debug)]
pub struct SelectorOption {
    /// Human-readable label (`"g1"`, `"tiered"`, …).
    pub label: &'static str,
    /// Flag assignments applied when this option is chosen. The first
    /// assignment is the option's *marker*: a configuration is detected as
    /// having chosen this option when its marker flag holds the marker
    /// value.
    pub assignments: Vec<(FlagId, FlagValue)>,
    /// Subtree active only while this option is chosen.
    pub children: Vec<NodeId>,
}

/// A one-of-N structural choice.
#[derive(Clone, Debug)]
pub struct Selector {
    /// Dotted-path name used in reports (`"gc.collector"`).
    pub name: &'static str,
    /// The options, in detection-priority order. The *last* option is the
    /// fallback selected when no marker matches.
    pub options: Vec<SelectorOption>,
}

impl Selector {
    /// Index of the option a configuration currently selects: the first
    /// option whose marker matches, else the last option.
    pub fn detect(&self, config: &JvmConfig) -> usize {
        for (i, opt) in self.options.iter().enumerate() {
            if let Some(&(flag, value)) = opt.assignments.first() {
                if config.get(flag) == value {
                    return i;
                }
            }
        }
        self.options.len() - 1
    }
}

/// Payload of one tree node.
#[derive(Clone, Debug)]
pub enum NodeData {
    /// Structural grouping.
    Group {
        /// Display name.
        name: &'static str,
    },
    /// One-of-N choice; see [`Selector`].
    SelectorNode(SelectorId),
    /// Boolean flag activating its children when equal to `active_when`.
    /// The gate flag itself is always an active tunable.
    Gate {
        /// The gating flag.
        flag: FlagId,
        /// Polarity under which the children are active.
        active_when: bool,
    },
    /// A tunable flag.
    Leaf {
        /// The flag.
        flag: FlagId,
    },
}

/// One arena node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Payload.
    pub data: NodeData,
    /// Children (unused for selector nodes, whose children live per-option).
    pub children: Vec<NodeId>,
}

/// The flag hierarchy over a specific [`Registry`].
///
/// A tree is built against one registry and must only be used with
/// configurations of that registry; the constructor records the registry
/// length and methods debug-assert against it.
#[derive(Clone, Debug)]
pub struct FlagTree {
    nodes: Vec<Node>,
    selectors: Vec<Selector>,
    root: NodeId,
    registry_len: usize,
    /// Flags appearing in any selector assignment: structurally determined,
    /// never independently tuned.
    assigned: HashSet<FlagId>,
}

impl FlagTree {
    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// All selectors.
    pub fn selectors(&self) -> &[Selector] {
        &self.selectors
    }

    /// A selector by id.
    pub fn selector(&self, id: SelectorId) -> &Selector {
        &self.selectors[id.0 as usize]
    }

    /// Ids of all selectors.
    pub fn selector_ids(&self) -> impl Iterator<Item = SelectorId> {
        (0..self.selectors.len() as u32).map(SelectorId)
    }

    /// Node accessor.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True for a tree with no nodes (never produced by the builder).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Is `flag` structurally determined by some selector (and therefore
    /// not independently tunable)?
    pub fn is_assigned(&self, flag: FlagId) -> bool {
        self.assigned.contains(&flag)
    }

    /// The flags *active* under `config`: every leaf and gate flag whose
    /// ancestors are all active, in deterministic pre-order. Selector
    /// marker/assignment flags are excluded (they are chosen through the
    /// selector, not directly).
    pub fn active_flags(&self, config: &JvmConfig) -> Vec<FlagId> {
        debug_assert_eq!(config.len(), self.registry_len);
        let mut out = Vec::with_capacity(128);
        self.walk_active(self.root, config, &mut |flag| out.push(flag));
        out
    }

    /// Visit every active tunable flag without allocating.
    pub fn for_each_active(&self, config: &JvmConfig, f: &mut impl FnMut(FlagId)) {
        self.walk_active(self.root, config, f);
    }

    fn walk_active(&self, id: NodeId, config: &JvmConfig, f: &mut impl FnMut(FlagId)) {
        let node = self.node(id);
        match &node.data {
            NodeData::Group { .. } => {
                for &c in &node.children {
                    self.walk_active(c, config, f);
                }
            }
            NodeData::SelectorNode(sid) => {
                let sel = self.selector(*sid);
                let chosen = sel.detect(config);
                for &c in &sel.options[chosen].children {
                    self.walk_active(c, config, f);
                }
            }
            NodeData::Gate { flag, active_when } => {
                f(*flag);
                if config.get(*flag) == FlagValue::Bool(*active_when) {
                    for &c in &node.children {
                        self.walk_active(c, config, f);
                    }
                }
            }
            NodeData::Leaf { flag } => f(*flag),
        }
    }

    /// Every flag mentioned anywhere in the tree (active or not), including
    /// gate flags but excluding selector-assigned flags.
    pub fn all_tree_flags(&self) -> Vec<FlagId> {
        let mut out = Vec::new();
        for node in &self.nodes {
            match &node.data {
                NodeData::Leaf { flag } | NodeData::Gate { flag, .. } => out.push(*flag),
                _ => {}
            }
        }
        out
    }

    /// Canonicalise `config` in place:
    ///
    /// 1. For each selector, detect the chosen option and apply **all** its
    ///    assignments (restoring mutual exclusion after arbitrary
    ///    mutations).
    /// 2. Reset every flag that is *not* active (dead subtrees of selectors
    ///    and closed gates) to its registry default.
    ///
    /// After `enforce`, two configurations that differ only in dead flags
    /// compare equal — the search space the tuner sees is exactly the
    /// pruned space of the paper's hierarchy.
    pub fn enforce(&self, registry: &Registry, config: &mut JvmConfig) {
        debug_assert_eq!(config.len(), registry.len());
        // Pass 1: selector assignments.
        self.apply_selector_assignments(self.root, config);
        // Pass 2: reset inactive flags. Collect active set first.
        let mut active: HashSet<FlagId> = HashSet::with_capacity(256);
        self.for_each_active(config, &mut |flag| {
            active.insert(flag);
        });
        for flag in self.all_tree_flags() {
            if !active.contains(&flag) {
                config.set(flag, registry.spec(flag).default);
            }
        }
    }

    fn apply_selector_assignments(&self, id: NodeId, config: &mut JvmConfig) {
        let node = self.node(id).clone();
        match node.data {
            NodeData::Group { .. } => {
                for c in node.children {
                    self.apply_selector_assignments(c, config);
                }
            }
            NodeData::SelectorNode(sid) => {
                let sel = self.selector(sid).clone();
                let chosen = sel.detect(config);
                for &(flag, value) in &sel.options[chosen].assignments {
                    config.set(flag, value);
                }
                for c in &sel.options[chosen].children {
                    self.apply_selector_assignments(*c, config);
                }
            }
            NodeData::Gate { flag, active_when } => {
                if config.get(flag) == FlagValue::Bool(active_when) {
                    for c in node.children {
                        self.apply_selector_assignments(c, config);
                    }
                }
            }
            NodeData::Leaf { .. } => {}
        }
    }

    /// Current option index of a selector under `config`.
    pub fn selector_state(&self, id: SelectorId, config: &JvmConfig) -> usize {
        self.selector(id).detect(config)
    }

    /// Choose option `option` of selector `id`, applying its assignments
    /// and canonicalising the configuration.
    ///
    /// # Panics
    /// Panics if `option` is out of range for the selector.
    pub fn set_selector(
        &self,
        registry: &Registry,
        config: &mut JvmConfig,
        id: SelectorId,
        option: usize,
    ) {
        let sel = self.selector(id);
        assert!(
            option < sel.options.len(),
            "selector {} has no option {option}",
            sel.name
        );
        let assignments = sel.options[option].assignments.clone();
        for (flag, value) in assignments {
            config.set(flag, value);
        }
        self.enforce(registry, config);
    }

    /// Pretty-print the tree skeleton (groups, selectors, gates, and leaf
    /// counts) for the E3 report.
    pub fn render_skeleton(&self, registry: &Registry) -> String {
        let mut out = String::new();
        self.render_node(registry, self.root, 0, &mut out);
        out
    }

    fn render_node(&self, registry: &Registry, id: NodeId, depth: usize, out: &mut String) {
        use std::fmt::Write as _;
        let node = self.node(id);
        let pad = "  ".repeat(depth);
        match &node.data {
            NodeData::Group { name } => {
                let leaves = node
                    .children
                    .iter()
                    .filter(|c| matches!(self.node(**c).data, NodeData::Leaf { .. }))
                    .count();
                let _ = writeln!(out, "{pad}{name}/ ({leaves} direct flags)");
                for &c in &node.children {
                    if !matches!(self.node(c).data, NodeData::Leaf { .. }) {
                        self.render_node(registry, c, depth + 1, out);
                    }
                }
            }
            NodeData::SelectorNode(sid) => {
                let sel = self.selector(*sid);
                let _ = writeln!(out, "{pad}<{}> one of:", sel.name);
                for opt in &sel.options {
                    let leaves = count_leaves(self, &opt.children);
                    let _ = writeln!(out, "{pad}  = {} ({} flags)", opt.label, leaves);
                    for &c in &opt.children {
                        if !matches!(self.node(c).data, NodeData::Leaf { .. }) {
                            self.render_node(registry, c, depth + 2, out);
                        }
                    }
                }
            }
            NodeData::Gate { flag, active_when } => {
                let leaves = count_leaves(self, &node.children);
                let _ = writeln!(
                    out,
                    "{pad}[{}{}] gates {} flags",
                    if *active_when { "+" } else { "-" },
                    registry.spec(*flag).name,
                    leaves
                );
                for &c in &node.children {
                    if !matches!(self.node(c).data, NodeData::Leaf { .. }) {
                        self.render_node(registry, c, depth + 1, out);
                    }
                }
            }
            NodeData::Leaf { .. } => {}
        }
    }
}

fn count_leaves(tree: &FlagTree, children: &[NodeId]) -> usize {
    let mut n = 0;
    for &c in children {
        let node = tree.node(c);
        match &node.data {
            NodeData::Leaf { .. } => n += 1,
            NodeData::Gate { .. } => n += 1 + count_leaves(tree, &node.children),
            NodeData::Group { .. } => n += count_leaves(tree, &node.children),
            NodeData::SelectorNode(sid) => {
                for opt in &tree.selector(*sid).options {
                    n += count_leaves(tree, &opt.children);
                }
            }
        }
    }
    n
}

/// Arena-based tree construction.
pub struct TreeBuilder<'r> {
    registry: &'r Registry,
    nodes: Vec<Node>,
    selectors: Vec<Selector>,
    root: NodeId,
}

impl<'r> TreeBuilder<'r> {
    /// Start a tree with an empty root group.
    pub fn new(registry: &'r Registry) -> Self {
        let nodes = vec![Node {
            data: NodeData::Group { name: "jvm" },
            children: Vec::new(),
        }];
        Self {
            registry,
            nodes,
            selectors: Vec::new(),
            root: NodeId(0),
        }
    }

    /// The root group.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The registry being built against.
    pub fn registry(&self) -> &'r Registry {
        self.registry
    }

    fn push(&mut self, parent: NodeId, data: NodeData) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            data,
            children: Vec::new(),
        });
        self.nodes[parent.0 as usize].children.push(id);
        id
    }

    /// Add a group under `parent`.
    pub fn group(&mut self, parent: NodeId, name: &'static str) -> NodeId {
        self.push(parent, NodeData::Group { name })
    }

    /// Add a leaf flag (by name) under `parent`.
    ///
    /// # Panics
    /// Panics on unknown flag names: the built-in tree is constructed from
    /// the built-in registry, so a miss is a programming error.
    pub fn leaf(&mut self, parent: NodeId, name: &str) -> NodeId {
        let flag = self
            .registry
            .id(name)
            .unwrap_or_else(|| panic!("unknown flag {name} while building tree"));
        self.push(parent, NodeData::Leaf { flag })
    }

    /// Add a gate (by flag name) under `parent`.
    pub fn gate(&mut self, parent: NodeId, name: &str, active_when: bool) -> NodeId {
        let flag = self
            .registry
            .id(name)
            .unwrap_or_else(|| panic!("unknown gate flag {name} while building tree"));
        self.push(parent, NodeData::Gate { flag, active_when })
    }

    /// Add a selector under `parent`. Options are added with
    /// [`TreeBuilder::option`] and gain children through the returned
    /// `NodeId`-like handle pattern: each `option` call returns a staging
    /// group node that is moved into the option on `finish_selector`.
    pub fn selector(&mut self, parent: NodeId, name: &'static str) -> SelectorDraft {
        let sid = SelectorId(self.selectors.len() as u32);
        self.selectors.push(Selector {
            name,
            options: Vec::new(),
        });
        let node = self.push(parent, NodeData::SelectorNode(sid));
        SelectorDraft { sid, _node: node }
    }

    /// Add one option to a draft selector. `assignments` are
    /// `(flag_name, value)` pairs, the first being the detection marker.
    /// Returns a staging group: attach the option's subtree under it.
    pub fn option(
        &mut self,
        draft: &SelectorDraft,
        label: &'static str,
        assignments: &[(&str, FlagValue)],
    ) -> NodeId {
        let assignments: Vec<(FlagId, FlagValue)> = assignments
            .iter()
            .map(|(name, value)| {
                let id = self
                    .registry
                    .id(name)
                    .unwrap_or_else(|| panic!("unknown assignment flag {name}"));
                (id, *value)
            })
            .collect();
        assert!(
            !assignments.is_empty(),
            "selector option {label} needs a marker assignment"
        );
        // Staging node: becomes the option's sole child container.
        let staging = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            data: NodeData::Group { name: label },
            children: Vec::new(),
        });
        self.selectors[draft.sid.0 as usize]
            .options
            .push(SelectorOption {
                label,
                assignments,
                children: vec![staging],
            });
        staging
    }

    /// Freeze into a [`FlagTree`].
    pub fn build(self) -> FlagTree {
        let mut assigned = HashSet::new();
        for sel in &self.selectors {
            for opt in &sel.options {
                for &(flag, _) in &opt.assignments {
                    assigned.insert(flag);
                }
            }
        }
        FlagTree {
            nodes: self.nodes,
            selectors: self.selectors,
            root: self.root,
            registry_len: self.registry.len(),
            assigned,
        }
    }
}

/// Handle to a selector under construction.
pub struct SelectorDraft {
    sid: SelectorId,
    _node: NodeId,
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_flags::hotspot_registry;

    fn tiny_tree() -> (&'static Registry, FlagTree) {
        let r = hotspot_registry();
        let mut b = TreeBuilder::new(r);
        let root = b.root();
        let heap = b.group(root, "heap");
        b.leaf(heap, "MaxHeapSize");
        b.leaf(heap, "NewRatio");
        let gc = b.group(root, "gc");
        let sel = b.selector(gc, "gc.collector");
        let par = b.option(
            &sel,
            "parallel",
            &[
                ("UseParallelGC", FlagValue::Bool(true)),
                ("UseSerialGC", FlagValue::Bool(false)),
            ],
        );
        b.leaf(par, "ParallelGCThreads");
        let ser = b.option(
            &sel,
            "serial",
            &[
                ("UseSerialGC", FlagValue::Bool(true)),
                ("UseParallelGC", FlagValue::Bool(false)),
            ],
        );
        b.leaf(ser, "MaxTenuringThreshold");
        let tlab = b.gate(root, "UseTLAB", true);
        b.leaf(tlab, "TLABSize");
        (r, b.build())
    }

    #[test]
    fn active_flags_follow_selector() {
        let (r, tree) = tiny_tree();
        let mut c = JvmConfig::default_for(r);
        tree.enforce(r, &mut c);
        let names = |c: &JvmConfig| -> Vec<&str> {
            tree.active_flags(c)
                .into_iter()
                .map(|f| r.spec(f).name)
                .collect()
        };
        // Default config: UseParallelGC=true, so "parallel" is detected.
        let active = names(&c);
        assert!(active.contains(&"ParallelGCThreads"));
        assert!(!active.contains(&"MaxTenuringThreshold"));
        // Switch to serial.
        let sid = SelectorId(0);
        tree.set_selector(r, &mut c, sid, 1);
        assert_eq!(c.get_by_name(r, "UseSerialGC"), Some(FlagValue::Bool(true)));
        assert_eq!(
            c.get_by_name(r, "UseParallelGC"),
            Some(FlagValue::Bool(false))
        );
        let active = names(&c);
        assert!(active.contains(&"MaxTenuringThreshold"));
        assert!(!active.contains(&"ParallelGCThreads"));
    }

    #[test]
    fn gate_controls_children() {
        let (r, tree) = tiny_tree();
        let mut c = JvmConfig::default_for(r);
        let names = |c: &JvmConfig| -> Vec<&str> {
            tree.active_flags(c)
                .into_iter()
                .map(|f| r.spec(f).name)
                .collect()
        };
        // UseTLAB defaults to true: gate open, TLABSize active.
        assert!(names(&c).contains(&"TLABSize"));
        c.set_by_name(r, "UseTLAB", FlagValue::Bool(false)).unwrap();
        let active = names(&c);
        assert!(active.contains(&"UseTLAB"), "gate flag itself stays active");
        assert!(!active.contains(&"TLABSize"));
    }

    #[test]
    fn enforce_resets_dead_flags_to_defaults() {
        let (r, tree) = tiny_tree();
        let mut c = JvmConfig::default_for(r);
        // Close the TLAB gate but scribble on its child.
        c.set_by_name(r, "UseTLAB", FlagValue::Bool(false)).unwrap();
        c.set_by_name(r, "TLABSize", FlagValue::Int(1 << 20))
            .unwrap();
        // Also scribble on the serial subtree while parallel is selected.
        c.set_by_name(r, "MaxTenuringThreshold", FlagValue::Int(3))
            .unwrap();
        tree.enforce(r, &mut c);
        assert_eq!(
            c.get_by_name(r, "TLABSize"),
            Some(r.spec(r.id("TLABSize").unwrap()).default)
        );
        assert_eq!(
            c.get_by_name(r, "MaxTenuringThreshold"),
            Some(r.spec(r.id("MaxTenuringThreshold").unwrap()).default)
        );
    }

    #[test]
    fn enforce_restores_mutual_exclusion() {
        let (r, tree) = tiny_tree();
        let mut c = JvmConfig::default_for(r);
        // A naive mutation turns both collectors on.
        c.set_by_name(r, "UseSerialGC", FlagValue::Bool(true))
            .unwrap();
        assert_eq!(
            c.get_by_name(r, "UseParallelGC"),
            Some(FlagValue::Bool(true))
        );
        tree.enforce(r, &mut c);
        // Detection order prefers "parallel" (option 0); serial is cleared.
        assert_eq!(
            c.get_by_name(r, "UseSerialGC"),
            Some(FlagValue::Bool(false))
        );
        assert_eq!(
            c.get_by_name(r, "UseParallelGC"),
            Some(FlagValue::Bool(true))
        );
    }

    #[test]
    fn enforce_is_idempotent() {
        let (r, tree) = tiny_tree();
        let mut c = JvmConfig::default_for(r);
        c.set_by_name(r, "UseSerialGC", FlagValue::Bool(true))
            .unwrap();
        tree.enforce(r, &mut c);
        let once = c.clone();
        tree.enforce(r, &mut c);
        assert_eq!(c, once);
    }

    #[test]
    fn assigned_flags_are_tracked() {
        let (r, tree) = tiny_tree();
        assert!(tree.is_assigned(r.id("UseSerialGC").unwrap()));
        assert!(tree.is_assigned(r.id("UseParallelGC").unwrap()));
        assert!(!tree.is_assigned(r.id("MaxHeapSize").unwrap()));
    }

    #[test]
    fn active_flags_exclude_assigned_selector_flags() {
        let (r, tree) = tiny_tree();
        let c = JvmConfig::default_for(r);
        let active = tree.active_flags(&c);
        for f in &active {
            assert!(!tree.is_assigned(*f), "{} leaked", r.spec(*f).name);
        }
    }

    #[test]
    fn skeleton_renders() {
        let (r, tree) = tiny_tree();
        let s = tree.render_skeleton(r);
        assert!(s.contains("gc.collector"));
        assert!(s.contains("parallel"));
        assert!(s.contains("UseTLAB"));
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_leaf_panics() {
        let r = hotspot_registry();
        let mut b = TreeBuilder::new(r);
        let root = b.root();
        b.leaf(root, "NotARealFlag");
    }
}
