//! Construction of the standard HotSpot flag hierarchy.
//!
//! The shape follows the paper's description: flags are grouped by JVM
//! aspect, collector choice is a mutually-exclusive selector whose options
//! own the collector-specific families, and boolean feature flags gate
//! their dependent parameters. Every *tunable* flag of the registry is
//! placed exactly once (a test enforces this), so the hierarchical tuner
//! sees the whole JVM — the paper's stated difference from prior
//! subset-tuning work.

use std::collections::HashSet;
use std::sync::OnceLock;

use jtune_flags::{hotspot_registry, Category, FlagValue, Registry};

use crate::tree::{FlagTree, NodeId, TreeBuilder};

/// The standard hierarchy over the built-in JDK-7 registry, built once.
pub fn hotspot_tree() -> &'static FlagTree {
    static TREE: OnceLock<FlagTree> = OnceLock::new();
    TREE.get_or_init(|| build_hotspot_tree(hotspot_registry()))
}

const T: FlagValue = FlagValue::Bool(true);
const F: FlagValue = FlagValue::Bool(false);

/// Build the standard hierarchy against `registry` (which must contain the
/// built-in flag set; unknown names panic).
pub fn build_hotspot_tree(registry: &Registry) -> FlagTree {
    let mut b = TreeBuilder::new(registry);
    let mut placed: HashSet<&'static str> = HashSet::new();
    let root = b.root();

    // Selector-assigned flags: structurally determined, never tuned directly.
    let assigned = [
        "UseSerialGC",
        "UseParallelGC",
        "UseParallelOldGC",
        "UseConcMarkSweepGC",
        "UseG1GC",
        "UseParNewGC",
        "TieredCompilation",
    ];
    placed.extend(assigned);

    // ---------------- heap ----------------
    let heap = b.group(root, "heap");
    bulk(&mut b, &mut placed, heap, Category::Heap, registry);

    // ---------------- gc ----------------
    let gc = b.group(root, "gc");
    let sel = b.selector(gc, "gc.collector");

    // Detection order: any explicitly chosen exclusive collector beats the
    // fallback; "parallel" (the JDK-7 server default) is last.
    let g1 = b.option(
        &sel,
        "g1",
        &[
            ("UseG1GC", T),
            ("UseSerialGC", F),
            ("UseParallelGC", F),
            ("UseParallelOldGC", F),
            ("UseConcMarkSweepGC", F),
            ("UseParNewGC", F),
        ],
    );
    bulk(&mut b, &mut placed, g1, Category::GcG1, registry);

    let cms = b.option(
        &sel,
        "cms",
        &[
            ("UseConcMarkSweepGC", T),
            ("UseParNewGC", T),
            ("UseSerialGC", F),
            ("UseParallelGC", F),
            ("UseParallelOldGC", F),
            ("UseG1GC", F),
        ],
    );
    // CMS incremental mode gates its duty-cycle family.
    let icms = gate(&mut b, &mut placed, cms, "CMSIncrementalMode", true);
    for name in [
        "CMSIncrementalDutyCycle",
        "CMSIncrementalDutyCycleMin",
        "CMSIncrementalPacing",
        "CMSIncrementalSafetyFactor",
        "CMSIncrementalOffset",
    ] {
        leaf(&mut b, &mut placed, icms, name);
    }
    bulk(&mut b, &mut placed, cms, Category::GcCms, registry);

    let serial = b.option(
        &sel,
        "serial",
        &[
            ("UseSerialGC", T),
            ("UseParallelGC", F),
            ("UseParallelOldGC", F),
            ("UseConcMarkSweepGC", F),
            ("UseG1GC", F),
            ("UseParNewGC", F),
        ],
    );
    bulk(&mut b, &mut placed, serial, Category::GcSerial, registry);

    let parallel = b.option(
        &sel,
        "parallel",
        &[
            ("UseParallelGC", T),
            ("UseParallelOldGC", T),
            ("UseSerialGC", F),
            ("UseConcMarkSweepGC", F),
            ("UseG1GC", F),
            ("UseParNewGC", F),
        ],
    );
    // The parallel collector's adaptive size policy gates its estimator
    // parameters.
    let asp = gate(&mut b, &mut placed, parallel, "UseAdaptiveSizePolicy", true);
    for name in [
        "PausePadding",
        "SurvivorPaddingMultiplier",
        "AdaptivePermSizeWeight",
        "UsePSAdaptiveSurvivorSizePolicy",
    ] {
        leaf(&mut b, &mut placed, asp, name);
    }
    bulk(
        &mut b,
        &mut placed,
        parallel,
        Category::GcParallel,
        registry,
    );

    // GC behaviour shared by all collectors.
    let gc_common = b.group(gc, "gc.common");
    bulk(&mut b, &mut placed, gc_common, Category::GcCommon, registry);

    // ---------------- jit ----------------
    // The whole compiler subtree is dead under -Xint (UseCompiler=false).
    let jit_root = b.group(root, "jit");
    let jit = gate(&mut b, &mut placed, jit_root, "UseCompiler", true);

    let mode = b.selector(jit, "jit.mode");
    let tiered = b.option(&mode, "tiered", &[("TieredCompilation", T)]);
    for name in [
        "TieredStopAtLevel",
        "Tier2CompileThreshold",
        "Tier3CompileThreshold",
        "Tier3InvocationThreshold",
        "Tier3MinInvocationThreshold",
        "Tier3BackEdgeThreshold",
        "Tier4CompileThreshold",
        "Tier4InvocationThreshold",
        "Tier4MinInvocationThreshold",
        "Tier4BackEdgeThreshold",
        "Tier3DelayOn",
        "Tier3DelayOff",
        "Tier3LoadFeedback",
        "Tier4LoadFeedback",
        "TieredRateUpdateMinTime",
        "TieredRateUpdateMaxTime",
    ] {
        leaf(&mut b, &mut placed, tiered, name);
    }
    let classic = b.option(&mode, "classic", &[("TieredCompilation", F)]);
    for name in [
        "CompileThreshold",
        "OnStackReplacePercentage",
        "InterpreterProfilePercentage",
        "UseCounterDecay",
        "CounterHalfLifeTime",
        "CounterDecayMinIntervalLength",
    ] {
        leaf(&mut b, &mut placed, classic, name);
    }

    // Inlining is gated on the master Inline switch.
    let inline = gate(&mut b, &mut placed, jit, "Inline", true);
    bulk(&mut b, &mut placed, inline, Category::Inlining, registry);

    // Escape analysis gates its elimination passes.
    let ea = gate(&mut b, &mut placed, jit, "DoEscapeAnalysis", true);
    for name in [
        "EliminateAllocations",
        "EliminateLocks",
        "EliminateNestedLocks",
        "OptimizePtrCompare",
    ] {
        leaf(&mut b, &mut placed, ea, name);
    }

    // Code cache; flushing gates its sweep parameters.
    let cc = b.group(jit, "jit.codecache");
    let ccf = gate(&mut b, &mut placed, cc, "UseCodeCacheFlushing", true);
    for name in [
        "MinCodeCacheFlushingInterval",
        "NmethodSweepFraction",
        "NmethodSweepCheckInterval",
    ] {
        leaf(&mut b, &mut placed, ccf, name);
    }
    bulk(&mut b, &mut placed, cc, Category::CodeCache, registry);

    bulk(&mut b, &mut placed, jit, Category::Jit, registry);
    bulk(&mut b, &mut placed, jit, Category::Optimization, registry);

    // Interpreter flags matter even under -Xint: outside the gate.
    let interp = b.group(root, "interpreter");
    bulk(&mut b, &mut placed, interp, Category::Interpreter, registry);

    // ---------------- runtime ----------------
    let rt = b.group(root, "runtime");

    let locking = b.group(rt, "locking");
    let biased = gate(&mut b, &mut placed, locking, "UseBiasedLocking", true);
    for name in [
        "BiasedLockingStartupDelay",
        "BiasedLockingBulkRebiasThreshold",
        "BiasedLockingBulkRevokeThreshold",
        "BiasedLockingDecayTime",
    ] {
        leaf(&mut b, &mut placed, biased, name);
    }
    let spin = gate(&mut b, &mut placed, locking, "UseSpinning", true);
    leaf(&mut b, &mut placed, spin, "PreBlockSpin");
    bulk(&mut b, &mut placed, locking, Category::Locking, registry);

    let memory = b.group(rt, "memory");
    let tlab = gate(&mut b, &mut placed, memory, "UseTLAB", true);
    for name in [
        "ResizeTLAB",
        "TLABSize",
        "MinTLABSize",
        "TLABAllocationWeight",
        "TLABWasteTargetPercent",
        "TLABRefillWasteFraction",
        "TLABWasteIncrement",
        "ZeroTLAB",
        "TLABStats",
    ] {
        leaf(&mut b, &mut placed, tlab, name);
    }
    let lp = gate(&mut b, &mut placed, memory, "UseLargePages", true);
    for name in [
        "LargePageSizeInBytes",
        "LargePageHeapSizeThreshold",
        "UseHugeTLBFS",
        "UseTransparentHugePages",
        "UseSHM",
        "UseLargePagesIndividualAllocation",
    ] {
        leaf(&mut b, &mut placed, lp, name);
    }
    let numa = gate(&mut b, &mut placed, memory, "UseNUMA", true);
    for name in [
        "UseNUMAInterleaving",
        "NUMAChunkResizeWeight",
        "NUMAPageScanRate",
        "NUMAStats",
        "ForceNUMA",
    ] {
        leaf(&mut b, &mut placed, numa, name);
    }
    bulk(&mut b, &mut placed, memory, Category::Memory, registry);

    let threads = b.group(rt, "threads");
    bulk(&mut b, &mut placed, threads, Category::Threads, registry);

    let cl = b.group(rt, "classloading");
    let cds = gate(&mut b, &mut placed, cl, "UseSharedSpaces", true);
    for name in [
        "RequireSharedSpaces",
        "SharedReadOnlySize",
        "SharedReadWriteSize",
        "SharedMiscDataSize",
        "SharedMiscCodeSize",
    ] {
        leaf(&mut b, &mut placed, cds, name);
    }
    bulk(&mut b, &mut placed, cl, Category::ClassLoading, registry);

    // ---------------- diagnostics & misc ----------------
    let diag = b.group(root, "diagnostics");
    bulk(&mut b, &mut placed, diag, Category::Diagnostics, registry);
    let misc = b.group(root, "misc");
    bulk(&mut b, &mut placed, misc, Category::Misc, registry);

    b.build()
}

fn leaf(
    b: &mut TreeBuilder<'_>,
    placed: &mut HashSet<&'static str>,
    parent: NodeId,
    name: &'static str,
) {
    if placed.insert(name) {
        b.leaf(parent, name);
    } else {
        panic!("flag {name} placed twice in the hierarchy");
    }
}

fn gate(
    b: &mut TreeBuilder<'_>,
    placed: &mut HashSet<&'static str>,
    parent: NodeId,
    name: &'static str,
    active_when: bool,
) -> NodeId {
    if !placed.insert(name) {
        panic!("gate flag {name} placed twice in the hierarchy");
    }
    b.gate(parent, name, active_when)
}

/// Attach every not-yet-placed tunable flag of `cat` as a leaf of `parent`.
fn bulk(
    b: &mut TreeBuilder<'_>,
    placed: &mut HashSet<&'static str>,
    parent: NodeId,
    cat: Category,
    registry: &Registry,
) {
    for id in registry.ids_in_category(cat) {
        let name = registry.spec(id).name;
        if placed.insert(name) {
            b.leaf(parent, name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_flags::JvmConfig;

    #[test]
    fn builds_and_is_shared() {
        let t1 = hotspot_tree();
        let t2 = hotspot_tree();
        assert!(std::ptr::eq(t1, t2));
        assert!(t1.len() > 600, "tree has only {} nodes", t1.len());
    }

    #[test]
    fn covers_every_tunable_flag_exactly_once() {
        let r = hotspot_registry();
        let tree = hotspot_tree();
        let mut seen = std::collections::HashMap::new();
        for flag in tree.all_tree_flags() {
            *seen.entry(flag).or_insert(0) += 1;
        }
        for &id in r.tunable_ids() {
            if tree.is_assigned(id) {
                assert!(
                    !seen.contains_key(&id),
                    "assigned flag {} must not be a leaf",
                    r.spec(id).name
                );
            } else {
                assert_eq!(
                    seen.get(&id),
                    Some(&1),
                    "tunable flag {} placed {} times",
                    r.spec(id).name,
                    seen.get(&id).unwrap_or(&0)
                );
            }
        }
        // And nothing non-tunable leaked in.
        for &id in seen.keys() {
            assert!(
                r.spec(id).tunable(),
                "develop flag {} in tree",
                r.spec(id).name
            );
        }
    }

    #[test]
    fn default_config_selects_parallel_and_classic() {
        let r = hotspot_registry();
        let tree = hotspot_tree();
        let c = JvmConfig::default_for(r);
        let labels: Vec<&str> = tree
            .selector_ids()
            .map(|sid| {
                let sel = tree.selector(sid);
                sel.options[sel.detect(&c)].label
            })
            .collect();
        assert!(labels.contains(&"parallel"));
        assert!(labels.contains(&"classic"));
    }

    #[test]
    fn choosing_each_collector_yields_consistent_configs() {
        let r = hotspot_registry();
        let tree = hotspot_tree();
        let gc_sel = tree
            .selector_ids()
            .find(|sid| tree.selector(*sid).name == "gc.collector")
            .unwrap();
        let n_opts = tree.selector(gc_sel).options.len();
        assert_eq!(n_opts, 4);
        for opt in 0..n_opts {
            let mut c = JvmConfig::default_for(r);
            tree.set_selector(r, &mut c, gc_sel, opt);
            // Exactly one primary collector flag set (ParNew rides along
            // with CMS).
            let on = [
                "UseSerialGC",
                "UseParallelGC",
                "UseConcMarkSweepGC",
                "UseG1GC",
            ]
            .iter()
            .filter(|n| c.get_by_name(r, n) == Some(FlagValue::Bool(true)))
            .count();
            assert_eq!(on, 1, "option {opt} left {on} collectors enabled");
            assert!(c.validate(r).is_ok());
            assert_eq!(tree.selector_state(gc_sel, &c), opt);
        }
    }

    #[test]
    fn active_set_shrinks_relative_to_flat_space() {
        let r = hotspot_registry();
        let tree = hotspot_tree();
        let mut c = JvmConfig::default_for(r);
        tree.enforce(r, &mut c);
        let active = tree.active_flags(&c).len();
        let tunable = r.tunable_ids().len();
        assert!(
            active < tunable * 8 / 10,
            "active {active} vs tunable {tunable}: hierarchy prunes too little"
        );
        // But the active set is still "the whole JVM", not a hand-picked
        // subset: hundreds of flags.
        assert!(active > 300, "active set suspiciously small: {active}");
    }

    #[test]
    fn cms_incremental_flags_only_active_under_cms_with_icms() {
        let r = hotspot_registry();
        let tree = hotspot_tree();
        let gc_sel = tree
            .selector_ids()
            .find(|sid| tree.selector(*sid).name == "gc.collector")
            .unwrap();
        let cms_opt = tree
            .selector(gc_sel)
            .options
            .iter()
            .position(|o| o.label == "cms")
            .unwrap();
        let mut c = JvmConfig::default_for(r);
        tree.set_selector(r, &mut c, gc_sel, cms_opt);
        let names = |c: &JvmConfig| -> Vec<&str> {
            tree.active_flags(c)
                .iter()
                .map(|f| r.spec(*f).name)
                .collect()
        };
        // iCMS gate closed by default.
        assert!(names(&c).contains(&"CMSIncrementalMode"));
        assert!(!names(&c).contains(&"CMSIncrementalDutyCycle"));
        c.set_by_name(r, "CMSIncrementalMode", FlagValue::Bool(true))
            .unwrap();
        assert!(names(&c).contains(&"CMSIncrementalDutyCycle"));
        // And under parallel, none of it is active.
        let mut p = JvmConfig::default_for(r);
        tree.enforce(r, &mut p);
        assert!(!names(&p).contains(&"CMSIncrementalMode"));
    }

    #[test]
    fn enforce_canonicalises_fingerprints() {
        let r = hotspot_registry();
        let tree = hotspot_tree();
        // Two configs that differ only in a dead (CMS) flag while running
        // parallel GC must canonicalise to the same fingerprint.
        let mut a = JvmConfig::default_for(r);
        let mut b2 = JvmConfig::default_for(r);
        b2.set_by_name(r, "CMSPrecleanIter", FlagValue::Int(7))
            .unwrap();
        tree.enforce(r, &mut a);
        tree.enforce(r, &mut b2);
        assert_eq!(a.fingerprint(), b2.fingerprint());
    }
}
