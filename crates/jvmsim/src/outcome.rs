//! Run results.

use jtune_util::{Histogram, SimDuration};

/// How the virtual run time divides among JVM activities.
#[derive(Clone, Debug, Default)]
pub struct TimeBreakdown {
    /// VM + class-loading startup before the first application work.
    pub startup: SimDuration,
    /// Application (mutator) execution.
    pub mutator: SimDuration,
    /// Stop-the-world GC pauses.
    pub gc_pause: SimDuration,
    /// Mutator slowdown attributable to concurrent GC work (CMS/G1 cycles
    /// stealing cores), expressed as extra elapsed time.
    pub gc_concurrent_drag: SimDuration,
    /// Compile stalls (foreground compilation / code-cache pressure); the
    /// *background* compile cost shows up as `gc_concurrent_drag`-style CPU
    /// stealing inside `mutator`.
    pub jit_stall: SimDuration,
    /// Safepoint synchronisation overhead.
    pub safepoint: SimDuration,
}

impl TimeBreakdown {
    /// Sum of all components.
    pub fn total(&self) -> SimDuration {
        self.startup
            + self.mutator
            + self.gc_pause
            + self.gc_concurrent_drag
            + self.jit_stall
            + self.safepoint
    }
}

/// GC activity counters.
#[derive(Clone, Debug, Default)]
pub struct GcStats {
    /// Young (minor) collections.
    pub young_collections: u64,
    /// Stop-the-world full collections (including CMS concurrent-mode
    /// failures).
    pub full_collections: u64,
    /// Concurrent cycles started (CMS/G1 marking).
    pub concurrent_cycles: u64,
    /// CMS concurrent-mode failures / G1 evacuation failures.
    pub failures: u64,
    /// Bytes promoted into the old generation.
    pub promoted_bytes: f64,
    /// Pause-time distribution.
    pub pauses: Histogram,
}

/// JIT activity counters.
#[derive(Clone, Debug, Default)]
pub struct JitStats {
    /// Methods compiled at tier 1-3 (C1).
    pub c1_compiles: u64,
    /// Methods compiled at tier 4 (C2).
    pub c2_compiles: u64,
    /// Compilations abandoned because the code cache filled.
    pub code_cache_full_drops: u64,
    /// Fraction of total work retired at C2 speed (warm-up quality).
    pub c2_work_fraction: f64,
}

/// Why a run did not complete.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunFailure {
    /// Live set plus GC overhead exceeded the configured heap.
    OutOfMemory,
    /// The configuration is semantically unusable (reported by the flag
    /// resolver, e.g. zero heap).
    InvalidConfig(String),
}

impl std::fmt::Display for RunFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunFailure::OutOfMemory => write!(f, "java.lang.OutOfMemoryError: Java heap space"),
            RunFailure::InvalidConfig(why) => write!(f, "invalid configuration: {why}"),
        }
    }
}

/// The result of one simulated JVM run.
#[derive(Clone, Debug)]
pub struct RunOutcome {
    /// Total virtual run time (equals `breakdown.total()` plus noise).
    pub total: SimDuration,
    /// Noise-free component breakdown.
    pub breakdown: TimeBreakdown,
    /// GC counters.
    pub gc: GcStats,
    /// JIT counters.
    pub jit: JitStats,
    /// Peak simulated heap use in bytes.
    pub peak_heap: f64,
    /// Configuration corrections the resolver applied (mirrors HotSpot's
    /// warnings, e.g. `InitialHeapSize` > `MaxHeapSize`).
    pub warnings: Vec<String>,
    /// Set when the run aborted; `total` then covers time until the abort.
    pub failure: Option<RunFailure>,
}

impl RunOutcome {
    /// True when the run completed.
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_total_sums_components() {
        let b = TimeBreakdown {
            startup: SimDuration::from_millis(100),
            mutator: SimDuration::from_secs(10),
            gc_pause: SimDuration::from_millis(400),
            gc_concurrent_drag: SimDuration::from_millis(250),
            jit_stall: SimDuration::from_millis(50),
            safepoint: SimDuration::from_millis(20),
        };
        assert_eq!(b.total(), SimDuration::from_millis(10_820));
    }

    #[test]
    fn failure_messages_render() {
        assert!(RunFailure::OutOfMemory
            .to_string()
            .contains("OutOfMemoryError"));
        assert!(RunFailure::InvalidConfig("zero heap".into())
            .to_string()
            .contains("zero heap"));
    }
}
