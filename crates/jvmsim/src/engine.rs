//! The simulation engine: the epoch loop tying JIT, GC and runtime models
//! together over a virtual clock.

use jtune_flags::{JvmConfig, Registry};
use jtune_util::{SimDuration, SimTime};

use crate::flagview::FlagView;
use crate::gc::{GcEvent, GcEventKind, GcModel};
use crate::jit::JitModel;
use crate::machine::Machine;
use crate::noise::NoiseModel;
use crate::outcome::{GcStats, JitStats, RunFailure, RunOutcome, TimeBreakdown};
use crate::runtime;
use crate::workload::Workload;

/// Work units per second per thread in the interpreter.
pub const INTERP_UNITS_PER_SEC: f64 = 50e6;
/// C1 speedup over the interpreter (before flag modulation).
pub const C1_SPEEDUP: f64 = 5.0;
/// C2 speedup over the interpreter (before flag modulation).
pub const C2_SPEEDUP: f64 = 12.0;
/// Upper bound on one epoch of virtual time.
const MAX_EPOCH_SECS: f64 = 0.05;
/// Hard iteration cap: no legitimate run needs this many epochs; hitting
/// it means a degenerate configuration, which we surface as a failure.
const MAX_EPOCHS: u64 = 3_000_000;

/// The simulated JVM.
#[derive(Clone, Debug, Default)]
pub struct JvmSim {
    machine: Machine,
}

impl JvmSim {
    /// A JVM on the default 8-core machine.
    pub fn new() -> JvmSim {
        JvmSim::default()
    }

    /// A JVM on a specific machine.
    pub fn on(machine: Machine) -> JvmSim {
        JvmSim { machine }
    }

    /// The machine this JVM runs on.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Execute `workload` under `config`. `seed` drives the measurement
    /// noise (and only the noise): same seed, same outcome.
    pub fn run(
        &self,
        registry: &Registry,
        config: &JvmConfig,
        workload: &Workload,
        seed: u64,
    ) -> RunOutcome {
        debug_assert!(workload.validate().is_ok(), "invalid workload");
        let mut noise = NoiseModel::new(seed ^ config.fingerprint());

        let (view, warnings) = match FlagView::resolve(registry, config, &self.machine) {
            Ok(v) => v,
            Err(why) => {
                return RunOutcome {
                    total: SimDuration::ZERO,
                    breakdown: TimeBreakdown::default(),
                    gc: GcStats::default(),
                    jit: JitStats::default(),
                    peak_heap: 0.0,
                    warnings: Vec::new(),
                    failure: Some(RunFailure::InvalidConfig(why)),
                }
            }
        };

        let mut breakdown = TimeBreakdown {
            startup: runtime::startup_time(&view, workload, &self.machine),
            ..TimeBreakdown::default()
        };

        let mut jit = JitModel::new(&view, workload);
        let mut gc = GcModel::new(&view, workload, &self.machine);
        let mut gc_stats = GcStats::default();

        let mutator_factor = runtime::mutator_factor(&view, workload, &self.machine);
        let waste = runtime::allocation_waste(&view);
        let sp_overhead = runtime::safepoint_overhead(&view, workload);

        // Effective application parallelism.
        let threads = workload.threads.min(self.machine.cores * 4) as f64;
        let app_parallelism = (threads.min(self.machine.cores as f64))
            * if workload.threads > self.machine.cores {
                0.95
            } else {
                1.0
            };

        let mut work_done = 0.0;
        let mut drag = 0.0;
        let mut failure = None;
        let mut clock = SimTime::ZERO + breakdown.startup;

        let mut epochs: u64 = 0;
        while work_done < workload.total_work {
            epochs += 1;
            if epochs > MAX_EPOCHS {
                failure = Some(RunFailure::InvalidConfig(
                    "configuration makes no forward progress".into(),
                ));
                break;
            }
            // Memory pressure: committed heap beyond physical memory swaps.
            let committed = gc.committed() + view.code_cache_size + 200e6;
            let mem = self.machine.memory as f64;
            let swap_factor = if committed > 0.9 * mem {
                1.0 / (1.0 + 6.0 * ((committed - 0.9 * mem) / mem))
            } else {
                1.0
            };

            let speed = INTERP_UNITS_PER_SEC
                * jit.speed_factor()
                * mutator_factor
                * app_parallelism
                * (1.0 - drag)
                * swap_factor;
            debug_assert!(speed > 0.0);

            // Epoch length: bounded by eden exhaustion and the epoch cap.
            let remaining = workload.total_work - work_done;
            let mut epoch_work = (speed * MAX_EPOCH_SECS).min(remaining);
            if workload.alloc_rate > 0.0 {
                let until_gc = gc.eden_room() / (workload.alloc_rate * waste) + 1.0;
                epoch_work = epoch_work.min(until_gc);
            }
            epoch_work = epoch_work.max(remaining.min(1000.0));
            let dt = epoch_work / speed;

            work_done += epoch_work;
            breakdown.mutator += SimDuration::from_secs_f64(dt * (1.0 - drag));
            breakdown.gc_concurrent_drag += SimDuration::from_secs_f64(dt * drag);
            breakdown.safepoint += SimDuration::from_secs_f64(dt * sp_overhead);
            clock += SimDuration::from_secs_f64(dt * (1.0 + sp_overhead));

            // JIT progress (possibly stalling the mutator).
            let stall = jit.advance(epoch_work, dt, workload.call_density);
            breakdown.jit_stall += SimDuration::from_secs_f64(stall);
            clock += SimDuration::from_secs_f64(stall);

            // Allocation → GC events.
            match gc.allocate(epoch_work * workload.alloc_rate * waste) {
                Ok(events) => {
                    absorb(&mut breakdown, &mut gc_stats, &mut clock, &events);
                }
                Err(f) => {
                    failure = Some(f);
                    break;
                }
            }
            // Concurrent GC progress.
            let (new_drag, events) = gc.tick_concurrent(dt);
            drag = new_drag;
            absorb(&mut breakdown, &mut gc_stats, &mut clock, &events);
        }

        gc_stats.young_collections = gc.young_collections;
        gc_stats.full_collections = gc.full_collections;
        gc_stats.concurrent_cycles = gc.concurrent_cycles;
        gc_stats.failures = gc.failures;
        gc_stats.promoted_bytes = gc.promoted_bytes;

        let jit_stats = JitStats {
            c1_compiles: jit.c1_compiles,
            c2_compiles: jit.c2_compiles,
            code_cache_full_drops: jit.dropped,
            c2_work_fraction: jit.c2_work_fraction(),
        };

        let raw_total = breakdown.total();
        let total = if failure.is_none() {
            noise.apply(raw_total)
        } else {
            raw_total
        };
        RunOutcome {
            total,
            breakdown,
            gc: gc_stats,
            jit: jit_stats,
            peak_heap: gc.peak_used,
            warnings,
            failure,
        }
    }
}

fn absorb(
    breakdown: &mut TimeBreakdown,
    stats: &mut GcStats,
    clock: &mut SimTime,
    events: &[GcEvent],
) {
    for e in events {
        breakdown.gc_pause += e.pause;
        *clock += e.pause;
        if e.kind != GcEventKind::Expansion {
            stats.pauses.record(e.pause);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_flags::{hotspot_registry, FlagValue};

    fn run_with(sets: &[(&str, FlagValue)], wl: &Workload, seed: u64) -> RunOutcome {
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        for (n, v) in sets {
            c.set_by_name(r, n, *v).unwrap();
        }
        JvmSim::new().run(r, &c, wl, seed)
    }

    #[test]
    fn default_run_completes_with_plausible_time() {
        let wl = Workload::baseline("w");
        let out = run_with(&[], &wl, 1);
        assert!(out.ok(), "{:?}", out.failure);
        let secs = out.total.as_secs_f64();
        assert!((1.0..600.0).contains(&secs), "total {secs}s");
        assert!(out.breakdown.mutator > SimDuration::ZERO);
        assert!(out.gc.young_collections > 0);
        assert!(out.jit.c2_compiles > 0);
    }

    #[test]
    fn same_seed_same_result_different_seed_different() {
        let wl = Workload::baseline("w");
        let a = run_with(&[], &wl, 7);
        let b = run_with(&[], &wl, 7);
        let c = run_with(&[], &wl, 8);
        assert_eq!(a.total, b.total);
        assert_ne!(a.total, c.total);
        // Noise-free breakdown identical regardless of seed.
        assert_eq!(a.breakdown.mutator, c.breakdown.mutator);
    }

    #[test]
    fn interpreter_only_is_much_slower() {
        let mut wl = Workload::baseline("w");
        // Long enough that JIT warm-up amortises.
        wl.total_work = 2e10;
        let jit = run_with(&[], &wl, 1);
        let interp = run_with(&[("UseCompiler", FlagValue::Bool(false))], &wl, 1);
        assert!(
            interp.total.as_secs_f64() > 3.0 * jit.total.as_secs_f64(),
            "interp {} vs jit {}",
            interp.total,
            jit.total
        );
    }

    #[test]
    fn tiered_helps_startup_workloads() {
        let mut wl = Workload::baseline("startup");
        wl.total_work = 8e8;
        wl.hot_methods = 2000;
        wl.hotness_skew = 0.6;
        assert!(wl.startup_sensitive());
        let classic = run_with(&[], &wl, 3);
        let tiered = run_with(&[("TieredCompilation", FlagValue::Bool(true))], &wl, 3);
        assert!(
            tiered.total < classic.total,
            "tiered {} vs classic {}",
            tiered.total,
            classic.total
        );
    }

    #[test]
    fn bigger_heap_reduces_gc_time_for_allocation_heavy_load() {
        let mut wl = Workload::baseline("alloc");
        wl.alloc_rate = 4.0;
        wl.live_set = 500e6;
        let small = run_with(&[("MaxHeapSize", FlagValue::Int(768 << 20))], &wl, 5);
        let big = run_with(&[("MaxHeapSize", FlagValue::Int(4 << 30))], &wl, 5);
        assert!(small.ok() && big.ok());
        assert!(
            big.breakdown.gc_pause < small.breakdown.gc_pause,
            "big {} vs small {}",
            big.breakdown.gc_pause,
            small.breakdown.gc_pause
        );
        assert!(big.total < small.total);
    }

    #[test]
    fn heap_larger_than_ram_swaps_and_loses() {
        let mut wl = Workload::baseline("w");
        wl.alloc_rate = 2.0;
        let sane = run_with(&[("MaxHeapSize", FlagValue::Int(2 << 30))], &wl, 5);
        let insane = run_with(
            &[
                ("MaxHeapSize", FlagValue::Int(16 << 30)),
                ("InitialHeapSize", FlagValue::Int(16 << 30)),
            ],
            &wl,
            5,
        );
        assert!(
            insane.total > sane.total,
            "swap-thrashing config won: {} vs {}",
            insane.total,
            sane.total
        );
    }

    #[test]
    fn tiny_heap_for_big_live_set_fails_oom() {
        let mut wl = Workload::baseline("w");
        wl.live_set = 900e6;
        wl.nursery_survival = 0.4;
        let out = run_with(&[("MaxHeapSize", FlagValue::Int(256 << 20))], &wl, 1);
        assert_eq!(out.failure, Some(RunFailure::OutOfMemory));
    }

    #[test]
    fn startup_dominated_by_class_loading_benefits_from_cds() {
        let mut wl = Workload::baseline("classy");
        wl.classes_loaded = 20_000;
        wl.total_work = 5e8;
        let with = run_with(&[], &wl, 2);
        let without = run_with(&[("UseSharedSpaces", FlagValue::Bool(false))], &wl, 2);
        assert!(with.breakdown.startup < without.breakdown.startup);
        assert!(with.total < without.total);
    }

    #[test]
    fn gc_choice_matters_for_gc_bound_workload() {
        let mut wl = Workload::baseline("gc-bound");
        wl.alloc_rate = 5.0;
        wl.live_set = 600e6;
        wl.nursery_survival = 0.12;
        wl.total_work = 3e9;
        let serial = run_with(
            &[
                ("UseSerialGC", FlagValue::Bool(true)),
                ("UseParallelGC", FlagValue::Bool(false)),
                ("UseParallelOldGC", FlagValue::Bool(false)),
            ],
            &wl,
            4,
        );
        let parallel = run_with(&[], &wl, 4);
        assert!(serial.ok() && parallel.ok());
        assert!(
            parallel.total < serial.total,
            "parallel {} vs serial {}",
            parallel.total,
            serial.total
        );
    }

    #[test]
    fn warnings_surface_in_outcome() {
        let wl = Workload::baseline("w");
        let out = run_with(
            &[
                ("InitialHeapSize", FlagValue::Int(2 << 30)),
                ("MaxHeapSize", FlagValue::Int(1 << 30)),
            ],
            &wl,
            1,
        );
        assert!(!out.warnings.is_empty());
        assert!(out.ok());
    }

    #[test]
    fn zero_allocation_workload_never_gcs() {
        let mut wl = Workload::baseline("pure-compute");
        wl.alloc_rate = 0.0;
        wl.live_set = 0.0;
        let out = run_with(&[], &wl, 1);
        assert!(out.ok());
        assert_eq!(out.gc.young_collections, 0);
        assert_eq!(out.breakdown.gc_pause, SimDuration::ZERO);
    }

    #[test]
    fn breakdown_total_close_to_reported_total() {
        let wl = Workload::baseline("w");
        let out = run_with(&[], &wl, 9);
        let raw = out.breakdown.total().as_secs_f64();
        let noisy = out.total.as_secs_f64();
        assert!((noisy / raw - 1.0).abs() < 0.15, "raw {raw} noisy {noisy}");
    }
}
