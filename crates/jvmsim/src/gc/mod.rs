//! The garbage-collection engine.
//!
//! [`GcModel`] owns the heap state and collector behaviour for one run.
//! The simulation engine feeds it allocation ([`GcModel::allocate`]) and
//! elapsed mutator time ([`GcModel::tick_concurrent`]); the model replies
//! with stop-the-world [`GcEvent`]s and a concurrent-drag fraction.
//!
//! Collector-specific pause-cost functions live in the per-collector
//! modules ([`serial`], [`parallel`], [`cms`], [`g1`]); this module holds
//! the generational mechanics they share: eden filling, survivor aging and
//! tenuring, promotion, old-generation occupancy, heap expansion and
//! out-of-memory behaviour.

pub mod cms;
pub mod g1;
pub mod parallel;
pub mod serial;

use jtune_util::SimDuration;

use crate::flagview::{CollectorKind, FlagView};
use crate::heap::{HeapGeometry, HeapState};
use crate::machine::Machine;
use crate::outcome::RunFailure;
use crate::workload::Workload;

/// What kind of stop-the-world event occurred.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GcEventKind {
    /// Young (minor) collection.
    Young,
    /// G1 mixed collection (young + some old regions).
    Mixed,
    /// Stop-the-world full collection.
    Full,
    /// CMS/G1 initial-mark pause.
    InitialMark,
    /// CMS remark / G1 final-mark pause.
    Remark,
    /// Committed-heap expansion.
    Expansion,
}

/// One stop-the-world event.
#[derive(Clone, Copy, Debug)]
pub struct GcEvent {
    /// Event kind.
    pub kind: GcEventKind,
    /// Pause duration.
    pub pause: SimDuration,
}

/// Concurrent-cycle phase (CMS concurrent phases / G1 marking).
#[derive(Clone, Copy, Debug, PartialEq)]
enum CyclePhase {
    Idle,
    /// Concurrent work remaining, in concurrent-thread-seconds.
    Running {
        remaining: f64,
    },
}

/// Per-run GC state machine.
#[derive(Clone, Debug)]
pub struct GcModel {
    view: FlagView,
    machine: Machine,
    /// Capacities (mutable under adaptive sizing / G1 pause control).
    pub geometry: HeapGeometry,
    /// Occupancy.
    pub state: HeapState,
    /// Committed heap (grows from `xms` towards `total`).
    committed: f64,
    /// CMS free-list fragmentation ∈ [0, 0.3]: reduces usable old space.
    fragmentation: f64,
    cycle: CyclePhase,
    /// G1: mixed collections remaining after the last marking.
    mixed_remaining: u32,
    /// Per-workload constants.
    nursery_survival: f64,
    humongous_fraction: f64,
    live_target: f64,
    /// Exponential average of promoted bytes per young GC (trigger
    /// ergonomics).
    promo_estimate: f64,
    /// Recent young-pause estimate in ms (G1 young sizing).
    pause_estimate_ms: f64,
    /// Counters mirrored into [`crate::outcome::GcStats`].
    pub young_collections: u64,
    /// Full (stop-the-world) collections.
    pub full_collections: u64,
    /// Concurrent cycles started.
    pub concurrent_cycles: u64,
    /// Concurrent-mode / evacuation failures.
    pub failures: u64,
    /// Total bytes promoted.
    pub promoted_bytes: f64,
    /// Consecutive ineffective full GCs (OOM detector).
    futile_full_gcs: u32,
    /// Peak heap occupancy observed.
    pub peak_used: f64,
}

impl GcModel {
    /// Build the model for one run.
    pub fn new(view: &FlagView, wl: &Workload, machine: &Machine) -> GcModel {
        let mut geometry = HeapGeometry::from_view(view);
        if view.collector == CollectorKind::G1 {
            // G1 sizes its young generation from the pause goal, not
            // NewRatio; start at the configured minimum.
            let young = (view.g1_new_pct / 100.0 * geometry.total).max(1e6);
            geometry.resize_young(young, view.survivor_ratio);
        }
        GcModel {
            view: view.clone(),
            machine: machine.clone(),
            geometry,
            state: HeapState::default(),
            committed: view.xms.max(1e6),
            fragmentation: 0.0,
            cycle: CyclePhase::Idle,
            mixed_remaining: 0,
            nursery_survival: wl.nursery_survival,
            humongous_fraction: wl.humongous_fraction,
            live_target: wl.live_set,
            promo_estimate: 0.0,
            pause_estimate_ms: 5.0,
            young_collections: 0,
            full_collections: 0,
            concurrent_cycles: 0,
            failures: 0,
            promoted_bytes: 0.0,
            futile_full_gcs: 0,
            peak_used: 0.0,
        }
    }

    /// Free space left in eden.
    pub fn eden_room(&self) -> f64 {
        (self.geometry.eden - self.state.eden_used).max(0.0)
    }

    /// Committed heap in bytes.
    pub fn committed(&self) -> f64 {
        self.committed
    }

    /// How many parallel STW workers this collector actually uses.
    fn stw_threads(&self) -> f64 {
        match self.view.collector {
            CollectorKind::Serial => 1.0,
            _ => effective_threads(self.view.parallel_gc_threads, self.machine.cores),
        }
    }

    /// Feed `bytes` of allocation into the heap, returning the STW events
    /// it caused. Humongous allocation bypasses eden under G1.
    pub fn allocate(&mut self, bytes: f64) -> Result<Vec<GcEvent>, RunFailure> {
        let mut events = Vec::new();
        let humongous = bytes * self.humongous_fraction;
        let ordinary = bytes - humongous;
        if humongous > 0.0 {
            // Region-rounding waste under G1; large-object slop elsewhere.
            let waste = if self.view.collector == CollectorKind::G1 {
                1.25
            } else {
                1.05
            };
            self.state.humongous += humongous * waste;
        }
        self.state.eden_used += ordinary;
        self.peak_used = self.peak_used.max(self.state.used());
        while self.state.eden_used >= self.geometry.eden {
            self.young_gc(&mut events)?;
        }
        self.maybe_start_cycle(&mut events);
        self.maybe_expand(&mut events);
        Ok(events)
    }

    /// Advance concurrent GC work by `dt` seconds of wall time. Returns the
    /// fraction of mutator throughput stolen by concurrent GC threads plus
    /// any pauses the cycle completion triggers.
    pub fn tick_concurrent(&mut self, dt: f64) -> (f64, Vec<GcEvent>) {
        let mut events = Vec::new();
        let CyclePhase::Running { remaining } = self.cycle else {
            return (0.0, events);
        };
        let duty = if self.view.collector == CollectorKind::Cms && self.view.cms_incremental {
            (self.view.cms_duty_cycle / 100.0).clamp(0.05, 1.0)
        } else {
            1.0
        };
        let threads = self.view.conc_gc_threads as f64;
        let progress = dt * threads * duty;
        let drag = ((threads * duty) / self.machine.cores as f64).min(0.4);
        if progress >= remaining {
            self.finish_cycle(&mut events);
        } else {
            self.cycle = CyclePhase::Running {
                remaining: remaining - progress,
            };
        }
        (drag, events)
    }

    // ---- young collection ----

    fn young_gc(&mut self, events: &mut Vec<GcEvent>) -> Result<(), RunFailure> {
        let eden_bytes = self.state.eden_used.min(self.geometry.eden);
        let overshoot = (self.state.eden_used - eden_bytes).max(0.0);
        let survive = eden_bytes * self.nursery_survival;

        // Tenuring: fraction of nursery survivors promoted this collection.
        let v = &self.view;
        let p_tenure = if v.always_tenure {
            1.0
        } else if v.never_tenure {
            0.0
        } else {
            0.30 + 0.70 * (-(v.max_tenuring as f64) / 3.0).exp()
        };
        // Survivor residency: survivors not yet promoted, living ~2 aging
        // rounds on average.
        let survivor_cap = self.geometry.survivor * (v.target_survivor / 100.0).clamp(0.05, 1.0);
        let resident = self.state.survivor_used * 0.5 + survive * (1.0 - p_tenure);
        let overflow = (resident - survivor_cap).max(0.0);
        let promoted = (survive * p_tenure + overflow).min(survive + self.state.survivor_used);
        self.state.survivor_used = (resident - overflow).max(0.0);

        // Old-generation intake.
        self.take_promotion(promoted, events)?;

        // Pause cost.
        let threads = self.stw_threads();
        let copied = survive + self.state.survivor_used;
        let mixed = self.view.collector == CollectorKind::G1 && self.mixed_remaining > 0;
        let mut pause_ms = match self.view.collector {
            CollectorKind::Serial => serial::young_pause_ms(copied, self.state.old_used()),
            CollectorKind::Parallel => {
                parallel::young_pause_ms(copied, self.state.old_used(), threads)
            }
            CollectorKind::Cms => cms::young_pause_ms(copied, self.state.old_used(), threads),
            CollectorKind::G1 => g1::young_pause_ms(
                copied,
                self.state.old_used(),
                threads,
                self.geometry.total,
                self.view.g1_region_size,
            ),
        };
        // Reference processing.
        pause_ms += if self.view.parallel_ref_proc {
            0.15
        } else {
            0.5
        };

        if mixed {
            // Reclaim a slice of old garbage in the same pause.
            let target = self.view.g1_mixed_count_target.max(1) as f64;
            let slice = self.state.old_garbage / target;
            let reclaimable_pct = 100.0 * self.state.old_garbage / self.geometry.old.max(1.0);
            if reclaimable_pct > self.view.g1_heap_waste_pct {
                pause_ms += g1::mixed_extra_pause_ms(slice, threads);
                self.state.old_garbage -= slice * 0.9;
                self.mixed_remaining -= 1;
            } else {
                self.mixed_remaining = 0;
            }
        }
        // G1 eagerly reclaims dead humongous regions at young pauses.
        if self.view.collector == CollectorKind::G1 && self.view.g1_eager_humongous {
            self.state.humongous *= 0.3;
        }

        self.state.eden_used = overshoot;
        self.young_collections += 1;
        self.promo_estimate = 0.7 * self.promo_estimate + 0.3 * promoted;
        self.pause_estimate_ms = 0.7 * self.pause_estimate_ms + 0.3 * pause_ms;
        events.push(GcEvent {
            kind: if mixed {
                GcEventKind::Mixed
            } else {
                GcEventKind::Young
            },
            pause: SimDuration::from_millis_f64(pause_ms),
        });

        self.adapt_young_size();
        Ok(())
    }

    /// Adaptive young-generation sizing: the parallel collector's
    /// `UseAdaptiveSizePolicy` grows the young gen while pauses are under
    /// the goal (throughput first); G1 sizes young directly from the pause
    /// goal. Other collectors keep the static geometry.
    fn adapt_young_size(&mut self) {
        let v = &self.view;
        match v.collector {
            CollectorKind::Parallel if v.use_adaptive_size => {
                let goal = v.max_gc_pause_ms;
                let young = self.geometry.young();
                // Pressure is about *live* data needing old-gen space;
                // reclaimable garbage filling the old gen is normal
                // operation and is handled by full collections.
                let old_pressure =
                    (self.state.old_live + self.state.humongous) / self.geometry.old.max(1.0);
                let new_young = if self.pause_estimate_ms > goal {
                    young * 0.85
                } else if old_pressure > 0.75 {
                    // Promotion pressure: cede space to the old generation
                    // (real PS ergonomics move the generation boundary).
                    young * 0.9
                } else {
                    // Grow towards lower GC frequency while pauses fit.
                    young * 1.1
                };
                // Keep the young generation within sane ergonomic bounds:
                // runaway shrinking would thrash tiny scavenges, runaway
                // growth would starve the old generation.
                let floor = 0.08 * self.geometry.total;
                let cap = 0.6 * self.geometry.total;
                self.geometry
                    .resize_young(new_young.clamp(floor, cap), v.survivor_ratio);
            }
            CollectorKind::G1 => {
                let goal = v.max_gc_pause_ms;
                let young = self.geometry.young();
                let ratio = (goal / self.pause_estimate_ms.max(0.1)).clamp(0.5, 2.0);
                let target = young * ratio.sqrt();
                let lo = v.g1_new_pct / 100.0 * self.geometry.total;
                let hi = (v.g1_max_new_pct / 100.0 * self.geometry.total)
                    .min(self.geometry.total - 1.2 * self.state.old_used());
                let hi = hi.max(lo + 1e6);
                self.geometry
                    .resize_young(target.clamp(lo, hi), v.survivor_ratio);
            }
            _ => {}
        }
    }

    // ---- old generation ----

    fn old_capacity_effective(&self) -> f64 {
        let mut cap = self.geometry.old * (1.0 - self.fragmentation);
        if self.view.collector == CollectorKind::G1 {
            cap *= 1.0 - (self.view.g1_reserve_pct / 100.0).clamp(0.0, 0.5);
        }
        cap
    }

    fn take_promotion(
        &mut self,
        promoted: f64,
        events: &mut Vec<GcEvent>,
    ) -> Result<(), RunFailure> {
        self.promoted_bytes += promoted;
        // Long-lived bytes build the live set; the rest is reclaimable.
        let long = promoted.min((self.live_target - self.state.old_live).max(0.0));
        self.state.old_live += long;
        self.state.old_garbage += promoted - long;

        if self.state.old_used() > self.old_capacity_effective() {
            self.full_gc(events)?;
        }
        Ok(())
    }

    fn full_gc(&mut self, events: &mut Vec<GcEvent>) -> Result<(), RunFailure> {
        let live = self.state.old_live;
        let garbage = self.state.old_garbage + self.state.humongous;
        let threads = self.stw_threads();
        let v = &self.view;
        let (pause_ms, reclaim_frac, defrag) = match v.collector {
            CollectorKind::Serial => (serial::full_pause_ms(live, garbage), 1.0, true),
            CollectorKind::Parallel => (parallel::full_pause_ms(live, garbage, threads), 1.0, true),
            CollectorKind::Cms => {
                // A stop-the-world CMS full collection is a concurrent-mode
                // failure: serial mark-sweep(-compact).
                self.failures += 1;
                self.cycle = CyclePhase::Idle;
                let compact = v.cms_compact_at_full;
                (cms::full_pause_ms(live, garbage, compact), 1.0, compact)
            }
            CollectorKind::G1 => {
                self.failures += 1;
                self.mixed_remaining = 0;
                self.cycle = CyclePhase::Idle;
                (g1::full_pause_ms(live, garbage), 1.0, true)
            }
        };
        let before = self.state.old_used();
        self.state.old_garbage *= 1.0 - reclaim_frac;
        self.state.humongous *= 1.0 - reclaim_frac;
        if defrag {
            self.fragmentation = 0.0;
        } else {
            self.fragmentation *= 0.5;
        }
        self.full_collections += 1;
        events.push(GcEvent {
            kind: GcEventKind::Full,
            pause: SimDuration::from_millis_f64(pause_ms),
        });

        // Out of memory: the live set simply does not fit, or repeated full
        // collections reclaim (almost) nothing.
        let after = self.state.old_used();
        if after > self.old_capacity_effective() {
            // Last resort before declaring OOM: collectors with flexible
            // generation boundaries (G1, adaptive parallel) hand the old
            // generation every byte the policy allows — real evacuation-
            // failure handling shrinks the young generation first.
            let v = &self.view;
            let can_shrink = v.collector == CollectorKind::G1
                || (v.collector == CollectorKind::Parallel && v.use_adaptive_size);
            if can_shrink {
                let sr = v.survivor_ratio;
                self.geometry.resize_young(0.05 * self.geometry.total, sr);
            }
            if after > self.old_capacity_effective() {
                return Err(RunFailure::OutOfMemory);
            }
        }
        if before - after < 0.02 * before.max(1.0) {
            self.futile_full_gcs += 1;
            if self.futile_full_gcs >= 4 {
                return Err(RunFailure::OutOfMemory);
            }
        } else {
            self.futile_full_gcs = 0;
        }
        Ok(())
    }

    // ---- concurrent cycles ----

    fn maybe_start_cycle(&mut self, events: &mut Vec<GcEvent>) {
        if self.cycle != CyclePhase::Idle {
            return;
        }
        let v = &self.view;
        match v.collector {
            CollectorKind::Cms => {
                let occ = 100.0 * self.state.old_used() / self.geometry.old.max(1.0);
                let mut trigger = v.cms_initiating;
                if !v.cms_occupancy_only {
                    // Ergonomic early trigger under promotion pressure.
                    let pressure = self.promo_estimate / self.geometry.old.max(1.0);
                    trigger = trigger.min(92.0 - (pressure * 400.0).min(30.0));
                }
                if occ >= trigger {
                    self.start_cycle(events, cms::initial_mark_pause_ms(self.state.old_live));
                }
            }
            CollectorKind::G1 => {
                let occ = 100.0 * self.state.used() / self.geometry.total.max(1.0);
                if occ >= v.g1_ihop && self.mixed_remaining == 0 {
                    self.start_cycle(events, g1::initial_mark_pause_ms(self.state.old_live));
                }
            }
            _ => {}
        }
    }

    fn start_cycle(&mut self, events: &mut Vec<GcEvent>, initial_mark_ms: f64) {
        self.concurrent_cycles += 1;
        let work = (self.state.old_used() / cms::CONC_MARK_RATE).max(0.01);
        self.cycle = CyclePhase::Running { remaining: work };
        events.push(GcEvent {
            kind: GcEventKind::InitialMark,
            pause: SimDuration::from_millis_f64(initial_mark_ms),
        });
    }

    fn finish_cycle(&mut self, events: &mut Vec<GcEvent>) {
        self.cycle = CyclePhase::Idle;
        let v = &self.view;
        match v.collector {
            CollectorKind::Cms => {
                let threads = self.stw_threads();
                let remark_ms = cms::remark_pause_ms(
                    self.state.old_used(),
                    self.state.eden_used,
                    v.cms_parallel_remark,
                    v.cms_scavenge_before_remark,
                    threads,
                );
                events.push(GcEvent {
                    kind: GcEventKind::Remark,
                    pause: SimDuration::from_millis_f64(remark_ms),
                });
                // Concurrent sweep reclaims garbage without compaction:
                // fragmentation accumulates.
                self.state.old_garbage *= 0.08;
                self.state.humongous *= 0.3;
                self.fragmentation = (self.fragmentation + 0.025).min(0.30);
            }
            CollectorKind::G1 => {
                events.push(GcEvent {
                    kind: GcEventKind::Remark,
                    pause: SimDuration::from_millis_f64(g1::remark_pause_ms(self.state.old_used())),
                });
                self.mixed_remaining = v.g1_mixed_count_target;
                // Marking identifies dead humongous objects.
                self.state.humongous *= 0.4;
            }
            _ => {}
        }
    }

    // ---- committed-heap growth ----

    fn maybe_expand(&mut self, events: &mut Vec<GcEvent>) {
        let needed = self.state.used().max(self.view.xms);
        while self.committed < needed.min(self.geometry.total) {
            self.committed = (self.committed * 1.3).min(self.geometry.total);
            // Commit + page-in cost; cheaper with large pages, prepaid by
            // AlwaysPreTouch (modelled as startup cost in the engine).
            let ms = if self.view.always_pretouch {
                0.2
            } else if self.view.large_pages && self.machine.large_pages_available {
                0.6
            } else {
                1.5
            };
            events.push(GcEvent {
                kind: GcEventKind::Expansion,
                pause: SimDuration::from_millis_f64(ms),
            });
        }
    }
}

/// STW GC worker scaling: near-linear to core count, with a coordination
/// penalty beyond it.
pub(crate) fn effective_threads(configured: u32, cores: u32) -> f64 {
    let t = configured.max(1) as f64;
    let c = cores as f64;
    if t <= c {
        t.powf(0.9)
    } else {
        // Oversubscription: progress capped at core scaling and degraded by
        // context switching.
        c.powf(0.9) / (1.0 + 0.08 * (t - c) / c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_flags::{hotspot_registry, FlagValue, JvmConfig};

    fn model_with(sets: &[(&str, FlagValue)], wl: &Workload) -> GcModel {
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        for (n, v) in sets {
            c.set_by_name(r, n, *v).unwrap();
        }
        let m = Machine::default();
        let (view, _) = FlagView::resolve(r, &c, &m).unwrap();
        GcModel::new(&view, wl, &m)
    }

    fn pump(model: &mut GcModel, bytes: f64, steps: usize) -> Vec<GcEvent> {
        let mut all = Vec::new();
        for _ in 0..steps {
            all.extend(
                model
                    .allocate(bytes / steps as f64)
                    .expect("no OOM expected"),
            );
            let (_, ev) = model.tick_concurrent(0.05);
            all.extend(ev);
        }
        all
    }

    #[test]
    fn eden_fills_and_triggers_young_gc() {
        let wl = Workload::baseline("w");
        // Static geometry: adaptive sizing would grow eden mid-test.
        let mut m = model_with(&[("UseAdaptiveSizePolicy", FlagValue::Bool(false))], &wl);
        let eden = m.geometry.eden;
        let events = pump(&mut m, eden * 3.5, 10);
        let young = events
            .iter()
            .filter(|e| e.kind == GcEventKind::Young)
            .count();
        assert!(young >= 3, "{young} young GCs");
        assert!(m.young_collections >= 3);
    }

    #[test]
    fn bigger_young_gen_means_fewer_young_gcs() {
        let wl = Workload::baseline("w");
        // Disable adaptive sizing so the static geometry is what we test.
        let mut small = model_with(
            &[
                ("NewRatio", FlagValue::Int(7)),
                ("UseAdaptiveSizePolicy", FlagValue::Bool(false)),
            ],
            &wl,
        );
        let mut big = model_with(
            &[
                ("NewRatio", FlagValue::Int(1)),
                ("UseAdaptiveSizePolicy", FlagValue::Bool(false)),
            ],
            &wl,
        );
        let bytes = 2e9;
        pump(&mut small, bytes, 100);
        pump(&mut big, bytes, 100);
        assert!(
            big.young_collections < small.young_collections,
            "big {} vs small {}",
            big.young_collections,
            small.young_collections
        );
    }

    #[test]
    fn live_set_exceeding_heap_is_oom() {
        let mut wl = Workload::baseline("w");
        wl.live_set = 2e9; // 2 GB live in a 1 GB heap
        wl.nursery_survival = 0.5;
        let mut m = model_with(&[("UseAdaptiveSizePolicy", FlagValue::Bool(false))], &wl);
        let mut oom = false;
        for _ in 0..4000 {
            match m.allocate(10e6) {
                Ok(_) => {}
                Err(RunFailure::OutOfMemory) => {
                    oom = true;
                    break;
                }
                Err(e) => panic!("unexpected failure {e:?}"),
            }
        }
        assert!(oom, "expected OutOfMemory");
    }

    #[test]
    fn cms_runs_concurrent_cycles_not_full_gcs_when_headroom() {
        let mut wl = Workload::baseline("w");
        wl.live_set = 300e6;
        wl.nursery_survival = 0.15;
        let mut m = model_with(
            &[
                ("UseConcMarkSweepGC", FlagValue::Bool(true)),
                ("UseParallelGC", FlagValue::Bool(false)),
                ("CMSInitiatingOccupancyFraction", FlagValue::Int(45)),
                ("UseCMSInitiatingOccupancyOnly", FlagValue::Bool(true)),
            ],
            &wl,
        );
        pump(&mut m, 6e9, 600);
        assert!(m.concurrent_cycles > 0, "no CMS cycles started");
        assert_eq!(m.failures, 0, "unexpected concurrent-mode failures");
    }

    #[test]
    fn cms_late_trigger_causes_concurrent_mode_failure() {
        let mut wl = Workload::baseline("w");
        wl.live_set = 500e6;
        wl.nursery_survival = 0.35;
        let mut m = model_with(
            &[
                ("UseConcMarkSweepGC", FlagValue::Bool(true)),
                ("UseParallelGC", FlagValue::Bool(false)),
                ("CMSInitiatingOccupancyFraction", FlagValue::Int(99)),
                ("UseCMSInitiatingOccupancyOnly", FlagValue::Bool(true)),
            ],
            &wl,
        );
        // Very fast allocation with a late trigger: old gen fills before a
        // cycle can help.
        for _ in 0..2000 {
            if m.allocate(5e6).is_err() {
                break;
            }
            let _ = m.tick_concurrent(0.001);
        }
        assert!(m.failures > 0, "expected concurrent-mode failures");
    }

    #[test]
    fn g1_marking_then_mixed_collections() {
        let mut wl = Workload::baseline("w");
        wl.live_set = 350e6;
        wl.nursery_survival = 0.2;
        let mut m = model_with(
            &[
                ("UseG1GC", FlagValue::Bool(true)),
                ("UseParallelGC", FlagValue::Bool(false)),
                ("InitiatingHeapOccupancyPercent", FlagValue::Int(35)),
            ],
            &wl,
        );
        let events = pump(&mut m, 8e9, 800);
        assert!(m.concurrent_cycles > 0, "no G1 marking cycles");
        assert!(
            events.iter().any(|e| e.kind == GcEventKind::Mixed),
            "no mixed collections"
        );
    }

    #[test]
    fn g1_young_size_tracks_pause_goal() {
        let mut wl = Workload::baseline("w");
        wl.nursery_survival = 0.25;
        let mut tight = model_with(
            &[
                ("UseG1GC", FlagValue::Bool(true)),
                ("UseParallelGC", FlagValue::Bool(false)),
                ("MaxGCPauseMillis", FlagValue::Int(2)),
            ],
            &wl,
        );
        let mut loose = model_with(
            &[
                ("UseG1GC", FlagValue::Bool(true)),
                ("UseParallelGC", FlagValue::Bool(false)),
                ("MaxGCPauseMillis", FlagValue::Int(2000)),
            ],
            &wl,
        );
        pump(&mut tight, 4e9, 400);
        pump(&mut loose, 4e9, 400);
        assert!(
            loose.geometry.young() > tight.geometry.young(),
            "loose {} <= tight {}",
            loose.geometry.young(),
            tight.geometry.young()
        );
    }

    #[test]
    fn serial_pauses_longer_than_parallel() {
        let mut wl = Workload::baseline("w");
        wl.nursery_survival = 0.2;
        let run = |sets: &[(&str, FlagValue)]| -> f64 {
            let mut m = model_with(sets, &wl);
            let events = pump(&mut m, 2e9, 200);
            let total: f64 = events
                .iter()
                .filter(|e| e.kind == GcEventKind::Young)
                .map(|e| e.pause.as_millis_f64())
                .sum();
            total / m.young_collections.max(1) as f64
        };
        let serial = run(&[
            ("UseSerialGC", FlagValue::Bool(true)),
            ("UseParallelGC", FlagValue::Bool(false)),
            ("UseParallelOldGC", FlagValue::Bool(false)),
        ]);
        let parallel = run(&[]);
        assert!(serial > parallel, "serial {serial} <= parallel {parallel}");
    }

    #[test]
    fn always_tenure_promotes_more() {
        let wl = Workload::baseline("w");
        let mut at = model_with(&[("AlwaysTenure", FlagValue::Bool(true))], &wl);
        let mut nt = model_with(&[("NeverTenure", FlagValue::Bool(true))], &wl);
        pump(&mut at, 2e9, 200);
        pump(&mut nt, 2e9, 200);
        assert!(at.promoted_bytes > nt.promoted_bytes);
    }

    #[test]
    fn committed_heap_grows_from_xms_with_expansion_events() {
        let wl = Workload::baseline("w");
        let mut m = model_with(&[("InitialHeapSize", FlagValue::Int(16 << 20))], &wl);
        assert!((m.committed() - (16u64 << 20) as f64).abs() < 1.0);
        let events = pump(&mut m, 1e9, 100);
        assert!(events.iter().any(|e| e.kind == GcEventKind::Expansion));
        assert!(m.committed() > (16u64 << 20) as f64);
    }

    #[test]
    fn effective_threads_scaling() {
        assert_eq!(effective_threads(1, 8), 1.0);
        assert!(effective_threads(8, 8) > 6.0);
        assert!(effective_threads(8, 8) <= 8.0);
        // Oversubscription hurts.
        assert!(effective_threads(32, 8) < effective_threads(8, 8));
    }
}
