//! Concurrent-mark-sweep cost model (`-XX:+UseConcMarkSweepGC`).
//!
//! Old-generation collection happens concurrently (initial-mark and remark
//! pauses only), young collections use ParNew. The price: concurrent
//! threads steal mutator CPU, the free-list allocator fragments (no
//! compaction), and a late trigger ends in a *concurrent mode failure* — a
//! single-threaded stop-the-world full collection, the worst pause HotSpot
//! can produce.

const MB: f64 = 1024.0 * 1024.0;

/// Concurrent marking+sweeping rate per concurrent thread, bytes/second.
/// Used by the cycle-duration computation in `gc::GcModel`.
pub const CONC_MARK_RATE: f64 = 140.0 * MB;

/// ParNew young pause (same copying machinery as the parallel collector,
/// slightly higher fixed cost from free-list promotion).
pub fn young_pause_ms(copied_bytes: f64, old_used: f64, threads: f64) -> f64 {
    let t = threads.max(1.0);
    1.0 + 1e3 * copied_bytes / (super::parallel::COPY_RATE * 0.9 * t) + 0.0018 * old_used / MB / t
}

/// Initial-mark pause: roots only.
pub fn initial_mark_pause_ms(old_live: f64) -> f64 {
    0.6 + 0.0012 * old_live / MB
}

/// Remark pause. Dominated by re-scanning dirty cards and the young
/// generation; `CMSScavengeBeforeRemark` empties eden first and
/// `CMSParallelRemarkEnabled` divides the scan across workers.
pub fn remark_pause_ms(
    old_used: f64,
    eden_used: f64,
    parallel_remark: bool,
    scavenged_before: bool,
    threads: f64,
) -> f64 {
    let eden_cost = if scavenged_before {
        0.0
    } else {
        0.012 * eden_used / MB
    };
    let card_cost = 0.006 * old_used / MB;
    let div = if parallel_remark {
        threads.max(1.0)
    } else {
        1.0
    };
    1.2 + (eden_cost + card_cost) / div
}

/// Concurrent-mode-failure full collection: single-threaded mark-sweep,
/// optionally compacting (`UseCMSCompactAtFullCollection`).
pub fn full_pause_ms(live: f64, garbage: f64, compact: bool) -> f64 {
    let base = 4.0 + 1e3 * live / (110.0 * MB) + 1e3 * garbage / (1500.0 * MB);
    if compact {
        base + 1e3 * live / (400.0 * MB)
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scavenge_before_remark_shortens_remark() {
        let with = remark_pause_ms(400.0 * MB, 200.0 * MB, true, true, 6.0);
        let without = remark_pause_ms(400.0 * MB, 200.0 * MB, true, false, 6.0);
        assert!(with < without);
    }

    #[test]
    fn parallel_remark_divides_cost() {
        let par = remark_pause_ms(400.0 * MB, 0.0, true, true, 6.0);
        let ser = remark_pause_ms(400.0 * MB, 0.0, false, true, 6.0);
        assert!(par < ser);
    }

    #[test]
    fn cmf_is_catastrophically_slower_than_remark() {
        let remark = remark_pause_ms(400.0 * MB, 100.0 * MB, true, false, 6.0);
        let cmf = full_pause_ms(400.0 * MB, 100.0 * MB, true);
        assert!(cmf > remark * 20.0, "remark {remark} cmf {cmf}");
    }

    #[test]
    fn compaction_costs_extra() {
        assert!(full_pause_ms(400.0 * MB, 0.0, true) > full_pause_ms(400.0 * MB, 0.0, false));
    }
}
