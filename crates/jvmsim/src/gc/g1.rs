//! Garbage-First cost model (`-XX:+UseG1GC`).
//!
//! Region-based evacuation with remembered sets: young pauses carry an
//! extra remembered-set update/scan cost (larger for smaller regions),
//! mixed collections fold old-region evacuation into young pauses, and a
//! failed evacuation falls back to a single-threaded full collection.

const MB: f64 = 1024.0 * 1024.0;

/// Young/mixed evacuation pause in milliseconds.
pub fn young_pause_ms(
    copied_bytes: f64,
    old_used: f64,
    threads: f64,
    heap_total: f64,
    region_size: f64,
) -> f64 {
    let t = threads.max(1.0);
    // Remembered-set work grows with region count: smaller regions mean
    // more cross-region references to track.
    let regions = (heap_total / region_size.max(1.0 * MB)).max(1.0);
    let rset = 0.35 + 0.0006 * regions / t + 0.003 * old_used / MB / t;
    1.1 + 1e3 * copied_bytes / (super::parallel::COPY_RATE * 0.85 * t) + rset
}

/// Additional pause cost of evacuating `old_bytes` of old regions in a
/// mixed collection.
pub fn mixed_extra_pause_ms(old_bytes: f64, threads: f64) -> f64 {
    1e3 * old_bytes / (300.0 * MB * threads.max(1.0))
}

/// Initial-mark piggy-back pause.
pub fn initial_mark_pause_ms(old_live: f64) -> f64 {
    0.5 + 0.001 * old_live / MB
}

/// Final-mark (remark) pause.
pub fn remark_pause_ms(old_used: f64) -> f64 {
    0.9 + 0.004 * old_used / MB
}

/// Evacuation-failure / System.gc full collection: serial mark-compact in
/// the JDK-7 era (G1's full GC was not parallel until JDK 10).
pub fn full_pause_ms(live: f64, garbage: f64) -> f64 {
    5.0 + 1e3 * live / (100.0 * MB) + 1e3 * garbage / (1200.0 * MB)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_regions_cost_more_rset_work() {
        let small = young_pause_ms(16.0 * MB, 300.0 * MB, 6.0, 1024.0 * MB, 1.0 * MB);
        let big = young_pause_ms(16.0 * MB, 300.0 * MB, 6.0, 1024.0 * MB, 32.0 * MB);
        assert!(small > big);
    }

    #[test]
    fn g1_young_dearer_than_parallel_young() {
        let g1 = young_pause_ms(16.0 * MB, 300.0 * MB, 6.0, 1024.0 * MB, 1.0 * MB);
        let ps = super::super::parallel::young_pause_ms(16.0 * MB, 300.0 * MB, 6.0);
        assert!(g1 > ps, "g1 {g1} vs ps {ps}");
    }

    #[test]
    fn full_gc_is_the_disaster_case() {
        let full = full_pause_ms(500.0 * MB, 200.0 * MB);
        let young = young_pause_ms(16.0 * MB, 500.0 * MB, 6.0, 1024.0 * MB, 2.0 * MB);
        assert!(full > young * 50.0);
    }

    #[test]
    fn mixed_cost_scales_with_evacuated_bytes() {
        assert!(mixed_extra_pause_ms(64.0 * MB, 6.0) > mixed_extra_pause_ms(8.0 * MB, 6.0));
    }
}
