//! Serial collector cost model (`-XX:+UseSerialGC`).
//!
//! Single-threaded copying young collections and single-threaded
//! mark-sweep-compact full collections. Cheap fixed costs (no worker
//! coordination) but pause times scale with live bytes un-divided — the
//! reason the paper-era default abandons it beyond small heaps.

const MB: f64 = 1024.0 * 1024.0;

/// Copying rate of the single GC thread, bytes/second.
pub const COPY_RATE: f64 = 500.0 * MB;
/// Mark-compact processing rate over live bytes, bytes/second.
pub const COMPACT_RATE: f64 = 170.0 * MB;
/// Sweep rate over garbage bytes, bytes/second.
pub const SWEEP_RATE: f64 = 2500.0 * MB;

/// Young pause in milliseconds.
pub fn young_pause_ms(copied_bytes: f64, old_used: f64) -> f64 {
    // Low fixed cost, full copy cost, card-table scan over the old gen.
    0.4 + 1e3 * copied_bytes / COPY_RATE + 0.0016 * old_used / MB
}

/// Full-collection pause in milliseconds.
pub fn full_pause_ms(live: f64, garbage: f64) -> f64 {
    2.0 + 1e3 * live / COMPACT_RATE + 1e3 * garbage / SWEEP_RATE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn young_pause_scales_with_copied_bytes() {
        let small = young_pause_ms(1.0 * MB, 100.0 * MB);
        let big = young_pause_ms(50.0 * MB, 100.0 * MB);
        assert!(big > small * 10.0);
    }

    #[test]
    fn full_pause_dominated_by_live_not_garbage() {
        let livey = full_pause_ms(400.0 * MB, 50.0 * MB);
        let garbagey = full_pause_ms(50.0 * MB, 400.0 * MB);
        assert!(livey > garbagey);
    }

    #[test]
    fn magnitudes_are_plausible() {
        // 16 MB survivors, 300 MB old: a few tens of ms.
        let p = young_pause_ms(16.0 * MB, 300.0 * MB);
        assert!((5.0..100.0).contains(&p), "young pause {p} ms");
        // 500 MB live full GC: single-digit seconds.
        let f = full_pause_ms(500.0 * MB, 300.0 * MB);
        assert!((1000.0..10_000.0).contains(&f), "full pause {f} ms");
    }
}
