//! Parallel scavenge / parallel-old cost model (`-XX:+UseParallelGC`,
//! `-XX:+UseParallelOldGC`) — the JDK-7 server default.
//!
//! Work divides across `ParallelGCThreads` with sub-linear scaling
//! (`gc::effective_threads`); fixed costs are higher than serial
//! because of worker coordination and termination protocols.

const MB: f64 = 1024.0 * 1024.0;

/// Per-thread copying rate, bytes/second.
pub const COPY_RATE: f64 = 450.0 * MB;
/// Per-thread mark-compact rate over live bytes, bytes/second.
pub const COMPACT_RATE: f64 = 160.0 * MB;
/// Per-thread sweep rate over garbage, bytes/second.
pub const SWEEP_RATE: f64 = 2200.0 * MB;

/// Young pause in milliseconds for `threads` effective workers.
pub fn young_pause_ms(copied_bytes: f64, old_used: f64, threads: f64) -> f64 {
    let t = threads.max(1.0);
    0.9 + 1e3 * copied_bytes / (COPY_RATE * t) + 0.0016 * old_used / MB / t
}

/// Full-collection pause in milliseconds (parallel-old compaction).
pub fn full_pause_ms(live: f64, garbage: f64, threads: f64) -> f64 {
    let t = threads.max(1.0).powf(0.85);
    3.0 + 1e3 * live / (COMPACT_RATE * t) + 1e3 * garbage / (SWEEP_RATE * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_threads_shorter_pause() {
        let one = young_pause_ms(32.0 * MB, 200.0 * MB, 1.0);
        let eight = young_pause_ms(32.0 * MB, 200.0 * MB, 6.6);
        assert!(eight < one / 3.0, "one {one} eight {eight}");
    }

    #[test]
    fn fixed_cost_floors_the_pause() {
        let p = young_pause_ms(0.0, 0.0, 8.0);
        assert!(p >= 0.9);
    }

    #[test]
    fn full_gc_seconds_for_large_live_sets() {
        let p = full_pause_ms(600.0 * MB, 200.0 * MB, 6.6);
        assert!((500.0..5000.0).contains(&p), "full pause {p} ms");
    }
}
