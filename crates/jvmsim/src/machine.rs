//! The simulated host machine.

/// Hardware the simulated JVM runs on.
///
/// The paper's testbed is a multi-core x86 server; [`Machine::default`]
/// models an 8-core, 8 GB machine of that era. GC thread scaling, NUMA
/// effects and ergonomic defaults all read these fields.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Hardware threads available.
    pub cores: u32,
    /// Physical memory in bytes.
    pub memory: u64,
    /// NUMA nodes (1 = UMA).
    pub numa_nodes: u32,
    /// Whether the OS has large pages configured (the JVM flag only helps
    /// if it does).
    pub large_pages_available: bool,
    /// Whether a class-data-sharing archive exists (UseSharedSpaces only
    /// helps if it does).
    pub cds_archive_present: bool,
}

impl Default for Machine {
    fn default() -> Self {
        Machine {
            cores: 8,
            memory: 8 << 30,
            numa_nodes: 1,
            large_pages_available: true,
            cds_archive_present: true,
        }
    }
}

impl Machine {
    /// A small 2-core desktop (used by tests exercising thread-scaling
    /// saturation).
    pub fn small() -> Self {
        Machine {
            cores: 2,
            memory: 2 << 30,
            numa_nodes: 1,
            large_pages_available: false,
            cds_archive_present: true,
        }
    }

    /// A 32-core two-socket server.
    pub fn big_server() -> Self {
        Machine {
            cores: 32,
            memory: 64 << 30,
            numa_nodes: 2,
            large_pages_available: true,
            cds_archive_present: true,
        }
    }

    /// HotSpot's ergonomic default for `ParallelGCThreads`: all cores up to
    /// 8, then 8 + 5/8 of the rest.
    pub fn default_parallel_gc_threads(&self) -> u32 {
        if self.cores <= 8 {
            self.cores
        } else {
            8 + (self.cores - 8) * 5 / 8
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ergonomic_gc_threads() {
        assert_eq!(
            Machine {
                cores: 4,
                ..Machine::default()
            }
            .default_parallel_gc_threads(),
            4
        );
        assert_eq!(
            Machine {
                cores: 8,
                ..Machine::default()
            }
            .default_parallel_gc_threads(),
            8
        );
        assert_eq!(
            Machine {
                cores: 16,
                ..Machine::default()
            }
            .default_parallel_gc_threads(),
            13
        );
        assert_eq!(
            Machine {
                cores: 32,
                ..Machine::default()
            }
            .default_parallel_gc_threads(),
            23
        );
    }
}
