//! Typed, resolved view of the performance-relevant flags.
//!
//! [`FlagView::resolve`] reads a [`JvmConfig`] once per run and produces a
//! plain struct the simulation loop consumes — no name lookups or enum
//! matching in hot paths. Resolution also performs HotSpot's *ergonomics*:
//! `ParallelGCThreads = 0` becomes the machine-derived default,
//! `CMSInitiatingOccupancyFraction = -1` becomes the classic
//! `(100 - MinHeapFreeRatio) + …` formula, `-Xms > -Xmx` is corrected with
//! a warning, and so on.

use jtune_flags::{JvmConfig, Registry};

use crate::machine::Machine;

/// Which collector the configuration selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectorKind {
    /// `-XX:+UseSerialGC`.
    Serial,
    /// `-XX:+UseParallelGC` (the JDK-7 server default).
    Parallel,
    /// `-XX:+UseConcMarkSweepGC`.
    Cms,
    /// `-XX:+UseG1GC`.
    G1,
}

impl CollectorKind {
    /// Display name matching the option labels in `jtune-flagtree`.
    pub fn name(self) -> &'static str {
        match self {
            CollectorKind::Serial => "serial",
            CollectorKind::Parallel => "parallel",
            CollectorKind::Cms => "cms",
            CollectorKind::G1 => "g1",
        }
    }
}

/// Resolved snapshot of every flag the simulator reads.
#[derive(Clone, Debug)]
pub struct FlagView {
    // ---- heap ----
    /// Initial heap (bytes), after correction against `xmx`.
    pub xms: f64,
    /// Maximum heap (bytes).
    pub xmx: f64,
    /// Young-generation size (bytes), resolved from NewSize/MaxNewSize/
    /// NewRatio against `xmx`.
    pub young_size: f64,
    /// Eden-to-one-survivor ratio.
    pub survivor_ratio: f64,
    /// Target survivor occupancy percentage.
    pub target_survivor: f64,
    /// Maximum object age before tenuring.
    pub max_tenuring: u32,
    /// `NeverTenure` / `AlwaysTenure` (mutually overriding).
    pub never_tenure: bool,
    /// See `never_tenure`.
    pub always_tenure: bool,
    /// Touch heap pages at startup.
    pub always_pretouch: bool,

    // ---- collector ----
    /// The selected collector (first enabled wins: G1, CMS, serial, else
    /// parallel).
    pub collector: CollectorKind,
    /// STW parallel GC workers (resolved; ≥ 1).
    pub parallel_gc_threads: u32,
    /// Concurrent workers for CMS/G1 (resolved; ≥ 1).
    pub conc_gc_threads: u32,
    /// Parallel collector adaptive sizing.
    pub use_adaptive_size: bool,
    /// Pause goal in ms (parallel-adaptive and G1).
    pub max_gc_pause_ms: f64,
    /// Throughput goal: app/gc time ratio.
    pub gc_time_ratio: f64,
    /// Parallel reference processing.
    pub parallel_ref_proc: bool,
    /// `DisableExplicitGC` (the workload model has no System.gc calls, but
    /// the flag participates in validity tests).
    pub disable_explicit_gc: bool,

    // ---- CMS ----
    /// Occupancy percentage starting a CMS cycle (resolved from -1).
    pub cms_initiating: f64,
    /// Only use the occupancy trigger.
    pub cms_occupancy_only: bool,
    /// Incremental mode (duty-cycled concurrent work).
    pub cms_incremental: bool,
    /// i-CMS duty cycle percentage.
    pub cms_duty_cycle: f64,
    /// Scavenge before remark (shortens remark pauses).
    pub cms_scavenge_before_remark: bool,
    /// Parallel remark.
    pub cms_parallel_remark: bool,
    /// Compact on stop-the-world full collections.
    pub cms_compact_at_full: bool,

    // ---- G1 ----
    /// Region size in bytes (resolved from 0 = ergonomic).
    pub g1_region_size: f64,
    /// Reserve percentage.
    pub g1_reserve_pct: f64,
    /// Marking-trigger occupancy percentage.
    pub g1_ihop: f64,
    /// Young-gen bounds as heap percentages.
    pub g1_new_pct: f64,
    /// Upper bound of young gen as heap percentage.
    pub g1_max_new_pct: f64,
    /// Stop mixed GCs below this reclaimable percentage.
    pub g1_heap_waste_pct: f64,
    /// Mixed collections targeted after each marking.
    pub g1_mixed_count_target: u32,
    /// Eagerly reclaim dead humongous objects.
    pub g1_eager_humongous: bool,

    // ---- JIT ----
    /// Compiler enabled at all.
    pub use_compiler: bool,
    /// Tiered compilation.
    pub tiered: bool,
    /// Highest tier used (0 = interpreter only … 4 = C2).
    pub tiered_stop_level: u32,
    /// Classic-mode C2 threshold.
    pub compile_threshold: f64,
    /// Tiered C1 threshold.
    pub tier3_threshold: f64,
    /// Tiered C2 threshold.
    pub tier4_threshold: f64,
    /// Background compiler threads.
    pub ci_compiler_count: u32,
    /// Background (non-blocking) compilation.
    pub background_compilation: bool,
    /// On-stack replacement enabled.
    pub use_osr: bool,
    /// Interpreter profiling (slows interpretation slightly, improves C2).
    pub profile_interpreter: bool,
    /// Skip huge methods.
    pub dont_compile_huge: bool,

    // ---- inlining ----
    /// Master inlining switch.
    pub inline: bool,
    /// Max bytecode size of ordinary inline candidates.
    pub max_inline_size: f64,
    /// Max bytecode size of hot inline candidates.
    pub freq_inline_size: f64,
    /// Max native-code size of already-compiled inline candidates.
    pub inline_small_code: f64,
    /// Nesting depth limit.
    pub max_inline_level: u32,
    /// Trivial-accessor inlining.
    pub inline_accessors: bool,
    /// Math intrinsics.
    pub inline_math: bool,

    // ---- code cache ----
    /// Reserved code-cache bytes.
    pub code_cache_size: f64,
    /// Sweep cold code when full.
    pub code_cache_flushing: bool,

    // ---- optimisation ----
    /// Escape analysis master switch.
    pub escape_analysis: bool,
    /// Scalar replacement (requires escape analysis).
    pub eliminate_allocations: bool,
    /// Lock elision (requires escape analysis).
    pub eliminate_locks: bool,
    /// Auto-vectorisation.
    pub use_superword: bool,
    /// Unroll budget.
    pub loop_unroll_limit: f64,
    /// `AggressiveOpts` bundle.
    pub aggressive_opts: bool,

    // ---- runtime ----
    /// Biased locking.
    pub biased_locking: bool,
    /// Delay before biasing starts (ms).
    pub biased_delay_ms: f64,
    /// Spin before blocking.
    pub use_spinning: bool,
    /// Spin iterations.
    pub pre_block_spin: f64,
    /// Inflate all monitors.
    pub heavy_monitors: bool,
    /// TLAB allocation.
    pub use_tlab: bool,
    /// Adaptive TLAB sizing.
    pub resize_tlab: bool,
    /// Fixed TLAB size (0 = adaptive).
    pub tlab_size: f64,
    /// Eden waste target percentage.
    pub tlab_waste_target: f64,
    /// Eager TLAB zeroing.
    pub zero_tlab: bool,
    /// Compressed oops (auto-disabled above 32 GB heaps).
    pub compressed_oops: bool,
    /// Object alignment (bytes).
    pub object_alignment: u32,
    /// Large pages requested.
    pub large_pages: bool,
    /// NUMA-aware allocation.
    pub use_numa: bool,
    /// Allocation prefetch style (0-3).
    pub prefetch_style: u32,
    /// Prefetch distance in bytes (resolved from -1).
    pub prefetch_distance: f64,
    /// Lines prefetched.
    pub prefetch_lines: f64,
    /// Guaranteed safepoint interval (ms; 0 = disabled).
    pub safepoint_interval_ms: f64,
    /// Real memory barriers on state transitions.
    pub use_membar: bool,
    /// CDS mapped (faster startup when the archive exists).
    pub shared_spaces: bool,
    /// Verify remotely loaded classes.
    pub verify_remote: bool,
    /// Verify locally loaded classes (slows startup).
    pub verify_local: bool,
    /// Fast JNI accessors / fast accessor methods.
    pub fast_accessors: bool,
    /// Record stack traces in throwables.
    pub stack_traces: bool,
}

impl FlagView {
    /// Resolve `config` against `registry` for `machine`.
    ///
    /// Returns the view plus the HotSpot-style correction warnings, or an
    /// error string when the configuration is unusable (mirrors a JVM that
    /// refuses to start).
    pub fn resolve(
        registry: &Registry,
        config: &JvmConfig,
        machine: &Machine,
    ) -> Result<(FlagView, Vec<String>), String> {
        let mut warnings = Vec::new();
        let b = |name: &str| -> bool {
            config
                .get_by_name(registry, name)
                .and_then(|v| v.as_bool())
                .unwrap_or_else(|| panic!("flag {name} missing or not bool"))
        };
        let int = |name: &str| -> f64 {
            config
                .get_by_name(registry, name)
                .and_then(|v| v.as_int())
                .unwrap_or_else(|| panic!("flag {name} missing or not int")) as f64
        };

        // Collector selection. Like real HotSpot, *conflicting collector
        // combinations are fatal*: enabling more than one of the exclusive
        // selection flags refuses to start ("Conflicting collector
        // combinations in option list"). This is exactly the dependency
        // problem the paper's flag hierarchy exists to resolve — a
        // structure-blind tuner pays for it in crashed evaluations.
        let exclusive = [b("UseSerialGC"), b("UseConcMarkSweepGC"), b("UseG1GC")];
        let enabled = exclusive.iter().filter(|&&x| x).count()
            + (b("UseParallelGC") && (exclusive[0] || exclusive[1] || exclusive[2])) as usize;
        if enabled > 1 {
            return Err("Conflicting collector combinations in option list".into());
        }
        if b("UseParNewGC") && !b("UseConcMarkSweepGC") {
            return Err("UseParNewGC is only valid with UseConcMarkSweepGC".into());
        }
        let collector = if b("UseG1GC") {
            CollectorKind::G1
        } else if b("UseConcMarkSweepGC") {
            CollectorKind::Cms
        } else if b("UseSerialGC") {
            CollectorKind::Serial
        } else {
            CollectorKind::Parallel
        };

        // Heap sizing.
        let xmx = int("MaxHeapSize");
        if xmx <= 0.0 {
            return Err("MaxHeapSize must be positive".into());
        }
        let mut xms = int("InitialHeapSize");
        if xms > xmx {
            warnings.push(format!(
                "InitialHeapSize ({xms}) larger than MaxHeapSize ({xmx}); using MaxHeapSize"
            ));
            xms = xmx;
        }

        // Young generation: explicit NewSize/MaxNewSize beat NewRatio.
        let new_ratio = int("NewRatio").max(1.0);
        let by_ratio = xmx / (new_ratio + 1.0);
        let new_size = int("NewSize");
        let max_new = int("MaxNewSize");
        let mut young = if max_new < xmx {
            // User constrained the young gen explicitly.
            max_new.min(by_ratio.max(new_size))
        } else {
            by_ratio
        };
        young = young.clamp(1e6, 0.95 * xmx);

        let survivor_ratio = int("SurvivorRatio").max(1.0);
        let max_tenuring = int("MaxTenuringThreshold").clamp(0.0, 15.0) as u32;

        // GC threads.
        let pgct = int("ParallelGCThreads") as u32;
        let parallel_gc_threads = if pgct == 0 {
            machine.default_parallel_gc_threads()
        } else {
            pgct
        }
        .max(1);
        let cgct = int("ConcGCThreads") as u32;
        let conc_gc_threads = if cgct == 0 {
            parallel_gc_threads.div_ceil(4)
        } else {
            cgct
        }
        .max(1);

        // CMS trigger: -1 resolves to the classic ergonomic formula.
        let cms_raw = int("CMSInitiatingOccupancyFraction");
        let cms_initiating = if cms_raw < 0.0 {
            let min_free = int("MinHeapFreeRatio");
            ((100.0 - min_free) + (int("CMSTriggerRatio") / 100.0) * min_free).clamp(0.0, 100.0)
        } else {
            cms_raw
        };

        // G1 region size: 0 resolves ergonomically to heap/2048 clamped to
        // [1 MB, 32 MB], rounded to a power of two.
        let g1_raw = int("G1HeapRegionSize");
        let g1_region_size = if g1_raw <= 0.0 {
            let target = (xmx / 2048.0).clamp(1e6, 32.0 * 1024.0 * 1024.0);
            2f64.powf(target.log2().round())
                .clamp(1048576.0, 33554432.0)
        } else {
            g1_raw.max(1048576.0)
        };

        // Compressed oops are unusable above ~32 GB.
        let mut compressed_oops = b("UseCompressedOops");
        if compressed_oops && xmx > 32.0 * (1u64 << 30) as f64 {
            warnings.push("UseCompressedOops disabled: heap exceeds 32 GB".into());
            compressed_oops = false;
        }

        let prefetch_distance_raw = int("AllocatePrefetchDistance");
        let prefetch_distance = if prefetch_distance_raw < 0.0 {
            192.0
        } else {
            prefetch_distance_raw
        };

        let tiered = b("TieredCompilation");
        let view = FlagView {
            xms,
            xmx,
            young_size: young,
            survivor_ratio,
            target_survivor: int("TargetSurvivorRatio"),
            max_tenuring,
            never_tenure: b("NeverTenure"),
            always_tenure: b("AlwaysTenure"),
            always_pretouch: b("AlwaysPreTouch"),
            collector,
            parallel_gc_threads,
            conc_gc_threads,
            use_adaptive_size: b("UseAdaptiveSizePolicy"),
            max_gc_pause_ms: int("MaxGCPauseMillis"),
            gc_time_ratio: int("GCTimeRatio").max(1.0),
            parallel_ref_proc: b("ParallelRefProcEnabled"),
            disable_explicit_gc: b("DisableExplicitGC"),
            cms_initiating,
            cms_occupancy_only: b("UseCMSInitiatingOccupancyOnly"),
            cms_incremental: b("CMSIncrementalMode"),
            cms_duty_cycle: int("CMSIncrementalDutyCycle"),
            cms_scavenge_before_remark: b("CMSScavengeBeforeRemark"),
            cms_parallel_remark: b("CMSParallelRemarkEnabled"),
            cms_compact_at_full: b("UseCMSCompactAtFullCollection"),
            g1_region_size,
            g1_reserve_pct: int("G1ReservePercent"),
            g1_ihop: int("InitiatingHeapOccupancyPercent"),
            g1_new_pct: int("G1NewSizePercent"),
            g1_max_new_pct: int("G1MaxNewSizePercent"),
            g1_heap_waste_pct: int("G1HeapWastePercent"),
            g1_mixed_count_target: int("G1MixedGCCountTarget").max(1.0) as u32,
            g1_eager_humongous: b("G1EagerReclaimHumongousObjects"),
            use_compiler: b("UseCompiler"),
            tiered,
            tiered_stop_level: int("TieredStopAtLevel").clamp(0.0, 4.0) as u32,
            compile_threshold: int("CompileThreshold").max(1.0),
            tier3_threshold: int("Tier3CompileThreshold").max(1.0),
            tier4_threshold: int("Tier4CompileThreshold").max(1.0),
            ci_compiler_count: (int("CICompilerCount") as u32).max(1),
            background_compilation: b("BackgroundCompilation"),
            use_osr: b("UseOnStackReplacement"),
            profile_interpreter: b("ProfileInterpreter"),
            dont_compile_huge: b("DontCompileHugeMethods"),
            inline: b("Inline"),
            max_inline_size: int("MaxInlineSize"),
            freq_inline_size: int("FreqInlineSize"),
            inline_small_code: int("InlineSmallCode"),
            max_inline_level: int("MaxInlineLevel") as u32,
            inline_accessors: b("InlineAccessors"),
            inline_math: b("InlineMathNatives"),
            code_cache_size: int("ReservedCodeCacheSize"),
            code_cache_flushing: b("UseCodeCacheFlushing"),
            escape_analysis: b("DoEscapeAnalysis"),
            eliminate_allocations: b("EliminateAllocations"),
            eliminate_locks: b("EliminateLocks"),
            use_superword: b("UseSuperWord"),
            loop_unroll_limit: int("LoopUnrollLimit"),
            aggressive_opts: b("AggressiveOpts"),
            biased_locking: b("UseBiasedLocking"),
            biased_delay_ms: int("BiasedLockingStartupDelay"),
            use_spinning: b("UseSpinning"),
            pre_block_spin: int("PreBlockSpin"),
            heavy_monitors: b("UseHeavyMonitors"),
            use_tlab: b("UseTLAB"),
            resize_tlab: b("ResizeTLAB"),
            tlab_size: int("TLABSize"),
            tlab_waste_target: int("TLABWasteTargetPercent"),
            zero_tlab: b("ZeroTLAB"),
            compressed_oops,
            object_alignment: int("ObjectAlignmentInBytes") as u32,
            large_pages: b("UseLargePages"),
            use_numa: b("UseNUMA"),
            prefetch_style: int("AllocatePrefetchStyle") as u32,
            prefetch_distance,
            prefetch_lines: int("AllocatePrefetchLines"),
            safepoint_interval_ms: int("GuaranteedSafepointInterval"),
            use_membar: b("UseMembar"),
            shared_spaces: b("UseSharedSpaces"),
            verify_remote: b("BytecodeVerificationRemote"),
            verify_local: b("BytecodeVerificationLocal"),
            fast_accessors: b("UseFastAccessorMethods"),
            stack_traces: b("StackTraceInThrowable"),
        };
        Ok((view, warnings))
    }

    /// Eden size implied by young size and survivor ratio.
    pub fn eden_size(&self) -> f64 {
        self.young_size * self.survivor_ratio / (self.survivor_ratio + 2.0)
    }

    /// Size of one survivor space.
    pub fn survivor_size(&self) -> f64 {
        self.young_size / (self.survivor_ratio + 2.0)
    }

    /// Old-generation capacity.
    pub fn old_size(&self) -> f64 {
        (self.xmx - self.young_size).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_flags::{hotspot_registry, FlagValue};

    fn default_view() -> FlagView {
        let r = hotspot_registry();
        let c = JvmConfig::default_for(r);
        FlagView::resolve(r, &c, &Machine::default()).unwrap().0
    }

    #[test]
    fn default_resolves_to_parallel_classic() {
        let v = default_view();
        assert_eq!(v.collector, CollectorKind::Parallel);
        assert!(!v.tiered);
        assert_eq!(v.parallel_gc_threads, 8);
        assert_eq!(v.conc_gc_threads, 2);
        assert!(v.compressed_oops);
    }

    #[test]
    fn heap_geometry_from_defaults() {
        let v = default_view();
        assert_eq!(v.xmx, (1u64 << 30) as f64);
        // NewRatio = 2 → young = xmx / 3.
        assert!((v.young_size - v.xmx / 3.0).abs() < 1.0);
        assert!(v.eden_size() > v.survivor_size());
        assert!((v.eden_size() + 2.0 * v.survivor_size() - v.young_size).abs() < 1.0);
        assert!((v.old_size() + v.young_size - v.xmx).abs() < 1.0);
    }

    #[test]
    fn xms_greater_than_xmx_corrected_with_warning() {
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        c.set_by_name(r, "MaxHeapSize", FlagValue::Int(64 << 20))
            .unwrap();
        c.set_by_name(r, "InitialHeapSize", FlagValue::Int(256 << 20))
            .unwrap();
        let (v, warnings) = FlagView::resolve(r, &c, &Machine::default()).unwrap();
        assert_eq!(v.xms, v.xmx);
        assert_eq!(warnings.len(), 1);
    }

    #[test]
    fn conflicting_collectors_refuse_to_start() {
        // Real HotSpot exits with "Conflicting collector combinations";
        // so do we. (The flag hierarchy exists so the tuner never produces
        // such configurations.)
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        c.set_by_name(r, "UseG1GC", FlagValue::Bool(true)).unwrap();
        // UseParallelGC is still on from the defaults.
        let err = FlagView::resolve(r, &c, &Machine::default()).unwrap_err();
        assert!(err.contains("Conflicting collector"), "{err}");
        // Disabling the default collector resolves the conflict.
        c.set_by_name(r, "UseParallelGC", FlagValue::Bool(false))
            .unwrap();
        c.set_by_name(r, "UseParallelOldGC", FlagValue::Bool(false))
            .unwrap();
        let (v, _) = FlagView::resolve(r, &c, &Machine::default()).unwrap();
        assert_eq!(v.collector, CollectorKind::G1);
    }

    #[test]
    fn parnew_requires_cms() {
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        c.set_by_name(r, "UseParNewGC", FlagValue::Bool(true))
            .unwrap();
        let err = FlagView::resolve(r, &c, &Machine::default()).unwrap_err();
        assert!(err.contains("UseParNewGC"), "{err}");
    }

    #[test]
    fn cms_ergonomic_trigger_resolves() {
        let v = default_view();
        // MinHeapFreeRatio=40, CMSTriggerRatio=80 → 60 + 0.8*40 = 92.
        assert!((v.cms_initiating - 92.0).abs() < 1e-9);
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        c.set_by_name(r, "CMSInitiatingOccupancyFraction", FlagValue::Int(55))
            .unwrap();
        let (v, _) = FlagView::resolve(r, &c, &Machine::default()).unwrap();
        assert_eq!(v.cms_initiating, 55.0);
    }

    #[test]
    fn g1_region_ergonomics() {
        let v = default_view();
        // 1 GB heap / 2048 = 512 KB → clamped to 1 MB.
        assert_eq!(v.g1_region_size, 1048576.0);
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        c.set_by_name(r, "MaxHeapSize", FlagValue::Int(16 << 30))
            .unwrap();
        let (v, _) = FlagView::resolve(r, &c, &Machine::default()).unwrap();
        // 16 GB / 2048 = 8 MB.
        assert_eq!(v.g1_region_size, 8.0 * 1048576.0);
    }

    #[test]
    fn huge_heap_disables_compressed_oops() {
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        // Above the 32 GB compressed-oops ceiling (33 GB fits the domain's
        // 32 GiB hi? MaxHeapSize hi is 32 GB, so use exactly the boundary).
        c.set_by_name(r, "MaxHeapSize", FlagValue::Int(32 << 30))
            .unwrap();
        let (v, _) = FlagView::resolve(r, &c, &Machine::default()).unwrap();
        // 32 GB is not *above* the ceiling; oops stay on.
        assert!(v.compressed_oops);
        assert!((v.xmx - (32u64 << 30) as f64).abs() < 1.0);
    }

    #[test]
    fn prefetch_distance_default_resolves() {
        let v = default_view();
        assert_eq!(v.prefetch_distance, 192.0);
    }

    #[test]
    fn explicit_new_size_constrains_young_gen() {
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        c.set_by_name(r, "MaxNewSize", FlagValue::Int(64 << 20))
            .unwrap();
        let (v, _) = FlagView::resolve(r, &c, &Machine::default()).unwrap();
        assert!(v.young_size <= (64u64 << 20) as f64 + 1.0);
    }
}
