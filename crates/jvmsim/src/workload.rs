//! Workload characterisation.
//!
//! A [`Workload`] is everything the simulator needs to know about a Java
//! program: how much abstract work it does, how it allocates, how its
//! object lifetimes distribute, how its hot methods look to the JIT, and
//! how it synchronises. The `jtune-workloads` crate provides calibrated
//! instances named after the SPECjvm2008 and DaCapo programs; this module
//! defines the schema and its invariants.

/// A simulated Java program.
///
/// All `*_density` fields are *per work unit*; one work unit corresponds
/// loosely to one bytecode-level operation batch. Interpreted execution
/// retires [`crate::engine::INTERP_UNITS_PER_SEC`] units per second per
/// thread, so `total_work = 5e9` is roughly a two-minute interpreted run or
/// a ten-second fully-JIT-compiled one.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Display name (`"compress"`, `"avrora"`, …).
    pub name: String,
    /// Total abstract work units to retire.
    pub total_work: f64,
    /// Application threads retiring work concurrently.
    pub threads: u32,
    /// Bytes allocated per work unit.
    pub alloc_rate: f64,
    /// Mean allocated-object size in bytes.
    pub mean_object_size: f64,
    /// Fraction of allocated *bytes* in humongous objects (≥ half a G1
    /// region); these bypass eden under G1 and fragment other collectors.
    pub humongous_fraction: f64,
    /// Fraction of allocated bytes still live at their first minor
    /// collection (the weak generational hypothesis says this is small).
    pub nursery_survival: f64,
    /// Of the bytes that survive nursery collection, the fraction that die
    /// "soon" in the old generation — reclaimable by concurrent collectors
    /// without a full compaction.
    pub mid_life_fraction: f64,
    /// Steady-state live set in bytes (long-lived data).
    pub live_set: f64,
    /// Number of distinct hot methods (the JIT working set).
    pub hot_methods: u32,
    /// Zipf skew of hot-method invocation frequency (≥ 0; larger = a few
    /// methods dominate and warm up fast).
    pub hotness_skew: f64,
    /// Mean bytecode size of hot methods (inlining interacts with this).
    pub mean_method_size: f64,
    /// Method calls per work unit (inlining benefit scales with this).
    pub call_density: f64,
    /// Monitor operations per work unit.
    pub lock_density: f64,
    /// Probability that a monitor operation is contended.
    pub lock_contention: f64,
    /// Reference (pointer) loads per work unit; compressed-oops sensitivity.
    pub pointer_density: f64,
    /// Fraction of work that streams linearly through arrays; allocation-
    /// prefetch and large-page sensitivity.
    pub array_stream_fraction: f64,
    /// Fraction of work in `java.lang.Math`-style kernels (intrinsics).
    pub fp_fraction: f64,
    /// Classes loaded during startup.
    pub classes_loaded: u32,
}

impl Workload {
    /// A neutral mid-size workload; tests and examples start from this and
    /// override fields.
    pub fn baseline(name: &str) -> Workload {
        Workload {
            name: name.to_string(),
            total_work: 4e9,
            threads: 4,
            alloc_rate: 0.8,
            mean_object_size: 48.0,
            humongous_fraction: 0.0,
            nursery_survival: 0.06,
            mid_life_fraction: 0.3,
            live_set: 120e6,
            hot_methods: 400,
            hotness_skew: 1.0,
            mean_method_size: 60.0,
            call_density: 0.02,
            lock_density: 0.001,
            lock_contention: 0.02,
            pointer_density: 0.3,
            array_stream_fraction: 0.3,
            fp_fraction: 0.2,
            classes_loaded: 2500,
        }
    }

    /// Check the schema invariants, returning the first violation.
    pub fn validate(&self) -> Result<(), String> {
        let frac = |v: f64, what: &str| -> Result<(), String> {
            if (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(format!("{}: {what} = {v} outside [0,1]", self.name))
            }
        };
        if self.total_work <= 0.0 {
            return Err(format!("{}: total_work must be positive", self.name));
        }
        if self.threads == 0 {
            return Err(format!("{}: threads must be positive", self.name));
        }
        if self.alloc_rate < 0.0 {
            return Err(format!("{}: alloc_rate negative", self.name));
        }
        if self.mean_object_size < 8.0 {
            return Err(format!("{}: objects smaller than a header", self.name));
        }
        if self.live_set < 0.0 {
            return Err(format!("{}: live_set negative", self.name));
        }
        if self.hot_methods == 0 {
            return Err(format!("{}: hot_methods must be positive", self.name));
        }
        if self.hotness_skew < 0.0 {
            return Err(format!("{}: hotness_skew negative", self.name));
        }
        frac(self.humongous_fraction, "humongous_fraction")?;
        frac(self.nursery_survival, "nursery_survival")?;
        frac(self.mid_life_fraction, "mid_life_fraction")?;
        frac(self.lock_contention, "lock_contention")?;
        frac(self.array_stream_fraction, "array_stream_fraction")?;
        frac(self.fp_fraction, "fp_fraction")?;
        Ok(())
    }

    /// Total bytes this workload will allocate over its lifetime.
    pub fn total_allocation(&self) -> f64 {
        self.total_work * self.alloc_rate
    }

    // ---- builder-style adjusters (each returns the modified workload,
    // so profiles can be derived fluently from the built-in ones) ----

    /// Scale the total work (run length) by `factor`.
    pub fn scaled(mut self, factor: f64) -> Workload {
        self.total_work = (self.total_work * factor.max(0.0)).max(1.0);
        self
    }

    /// Replace the thread count.
    pub fn with_threads(mut self, threads: u32) -> Workload {
        self.threads = threads.max(1);
        self
    }

    /// Replace the allocation rate (bytes per work unit).
    pub fn with_alloc_rate(mut self, rate: f64) -> Workload {
        self.alloc_rate = rate.max(0.0);
        self
    }

    /// Replace the steady-state live set.
    pub fn with_live_set(mut self, bytes: f64) -> Workload {
        self.live_set = bytes.max(0.0);
        self
    }

    /// Rename (derived profiles should not shadow their parent's name in
    /// reports).
    pub fn named(mut self, name: &str) -> Workload {
        self.name = name.to_string();
        self
    }

    /// Rough classification used in reports: a workload is *startup
    /// sensitive* when an ideal fully-compiled single thread would retire
    /// its work in under ~4 s, so warm-up and class loading are first-order
    /// costs (the SPECjvm2008 startup suite by construction).
    pub fn startup_sensitive(&self) -> bool {
        let ideal_secs =
            self.total_work / (crate::engine::INTERP_UNITS_PER_SEC * crate::engine::C2_SPEEDUP);
        ideal_secs < 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid() {
        assert_eq!(Workload::baseline("x").validate(), Ok(()));
    }

    #[test]
    fn validation_catches_bad_fields() {
        let mut w = Workload::baseline("bad");
        w.nursery_survival = 1.5;
        assert!(w.validate().is_err());
        let mut w = Workload::baseline("bad");
        w.total_work = 0.0;
        assert!(w.validate().is_err());
        let mut w = Workload::baseline("bad");
        w.threads = 0;
        assert!(w.validate().is_err());
        let mut w = Workload::baseline("bad");
        w.mean_object_size = 4.0;
        assert!(w.validate().is_err());
        let mut w = Workload::baseline("bad");
        w.hot_methods = 0;
        assert!(w.validate().is_err());
    }

    #[test]
    fn total_allocation_is_product() {
        let w = Workload::baseline("x");
        assert_eq!(w.total_allocation(), w.total_work * w.alloc_rate);
    }

    #[test]
    fn builder_adjusters_compose_and_stay_valid() {
        let w = Workload::baseline("base")
            .scaled(2.0)
            .with_threads(16)
            .with_alloc_rate(3.5)
            .with_live_set(1e9)
            .named("derived");
        assert_eq!(w.name, "derived");
        assert_eq!(w.total_work, 8e9);
        assert_eq!(w.threads, 16);
        assert_eq!(w.alloc_rate, 3.5);
        assert_eq!(w.live_set, 1e9);
        assert_eq!(w.validate(), Ok(()));
    }

    #[test]
    fn builder_adjusters_clamp_degenerate_inputs() {
        let w = Workload::baseline("x")
            .scaled(-1.0)
            .with_threads(0)
            .with_alloc_rate(-5.0)
            .with_live_set(-1.0);
        assert!(w.total_work >= 1.0);
        assert_eq!(w.threads, 1);
        assert_eq!(w.alloc_rate, 0.0);
        assert_eq!(w.live_set, 0.0);
        assert_eq!(w.validate(), Ok(()));
    }

    #[test]
    fn startup_sensitivity_follows_work() {
        let mut w = Workload::baseline("short");
        w.total_work = 1e9;
        assert!(w.startup_sensitive());
        w.total_work = 1e12;
        assert!(!w.startup_sensitive());
    }
}
