//! Runtime-system effects on mutator throughput and startup.
//!
//! Everything here is a *static* property of (configuration, workload,
//! machine): multiplicative mutator speed effects (locking, compressed
//! oops, large pages, prefetch, NUMA, TLAB path), the eden-fill waste
//! factor, the safepoint overhead rate, and the startup-time model.

use jtune_util::SimDuration;

use crate::flagview::FlagView;
use crate::machine::Machine;
use crate::workload::Workload;

/// Multiplicative mutator speed factor (1.0 = nominal). Applied on top of
/// the JIT tier speed.
pub fn mutator_factor(view: &FlagView, wl: &Workload, machine: &Machine) -> f64 {
    let mut cost = 1.0_f64; // abstract cost per work unit

    // ---- allocation path ----
    let allocs_per_unit = wl.alloc_rate / wl.mean_object_size.max(8.0);
    if view.use_tlab {
        if view.zero_tlab {
            cost += (allocs_per_unit * 4.0).min(0.02);
        }
        if !view.resize_tlab && wl.threads > 1 {
            cost += 0.015;
        }
        if view.tlab_size > 0.0 && view.tlab_size < 64.0 * 1024.0 {
            // Tiny fixed TLABs mean frequent refills.
            cost += (allocs_per_unit * 10.0).min(0.03);
        }
    } else {
        // Shared-eden CAS allocation.
        cost +=
            (allocs_per_unit * 40.0).min(0.30) * (1.0 + 0.1 * (wl.threads as f64 - 1.0)).min(2.0);
    }

    // ---- locking ----
    let c = wl.lock_contention;
    let per_lock = if view.heavy_monitors {
        28.0
    } else if view.biased_locking {
        // Biased fast path when uncontended; revocation storms when not.
        // The startup delay slightly reduces the benefit on short runs.
        let delay_penalty = if view.biased_delay_ms > 10_000.0 {
            0.5
        } else {
            0.0
        };
        (2.5 + delay_penalty) * (1.0 - c) + 55.0 * c
    } else {
        9.0 * (1.0 - c) + 38.0 * c
    };
    let contended_relief = if view.use_spinning && (1.0..=200_000.0).contains(&view.pre_block_spin)
    {
        // Spinning rescues short critical sections; excessive spin burns CPU.
        if view.pre_block_spin <= 20_000.0 {
            0.70
        } else {
            0.95
        }
    } else {
        1.0
    };
    cost += wl.lock_density * (per_lock * (1.0 - c) + per_lock * c * contended_relief) / 10.0;

    // ---- memory system ----
    let mut speed = 1.0_f64;
    if view.compressed_oops {
        speed *= 1.0 + 0.08 * wl.pointer_density;
    }
    if view.large_pages && machine.large_pages_available {
        let footprint_gb = (wl.live_set / 1e9).min(2.0);
        speed *= 1.0 + 0.012 * wl.array_stream_fraction + 0.015 * footprint_gb;
    }
    if view.use_numa {
        speed *= if machine.numa_nodes > 1 { 1.04 } else { 0.995 };
    }
    if view.prefetch_style > 0 {
        let style_eff = match view.prefetch_style {
            1 => 1.0,
            2 => 0.9,
            _ => 1.05,
        };
        // Distance sweet spot around ~192-256 bytes.
        let d = view.prefetch_distance.max(16.0);
        let dist_eff = (-((d / 192.0).ln().powi(2)) / 0.8).exp();
        let lines_eff = 1.0 - ((view.prefetch_lines - 3.0).abs() / 12.0).min(0.3);
        speed *= 1.0
            + 0.035 * wl.array_stream_fraction * style_eff * dist_eff * lines_eff
            + 0.01 * (allocs_per_unit * 20.0).min(1.0) * dist_eff;
    }
    if view.use_membar && wl.threads > 1 {
        speed *= 0.985;
    }
    if !view.stack_traces {
        speed *= 1.004;
    }
    if view.object_alignment > 8 {
        // Wasted cache density.
        speed *= 1.0
            - 0.02 * ((view.object_alignment as f64 / 8.0).log2() * wl.pointer_density).min(0.3);
    }

    speed / cost
}

/// Eden-fill inflation from TLAB slack: allocated bytes consume
/// `waste_factor ×` their size of eden.
pub fn allocation_waste(view: &FlagView) -> f64 {
    if view.use_tlab {
        1.0 + (view.tlab_waste_target / 100.0) * 0.5 + if view.resize_tlab { 0.0 } else { 0.03 }
    } else {
        1.02
    }
}

/// Fraction of mutator time lost to guaranteed-safepoint synchronisation.
pub fn safepoint_overhead(view: &FlagView, wl: &Workload) -> f64 {
    if view.safepoint_interval_ms <= 0.0 {
        return 0.0;
    }
    // Each safepoint costs ~0.2 ms plus a per-thread sync tail.
    let per_sp_ms = 0.2 + 0.02 * wl.threads as f64;
    (per_sp_ms / view.safepoint_interval_ms.max(1.0)).min(0.2)
}

/// VM + class-loading startup time.
pub fn startup_time(view: &FlagView, wl: &Workload, machine: &Machine) -> SimDuration {
    let mut ms = 90.0; // bare VM bring-up
    let classes = wl.classes_loaded as f64;
    let mut per_class = 0.11;
    if view.shared_spaces && machine.cds_archive_present {
        per_class *= 0.45;
    }
    if view.verify_local {
        per_class += 0.05;
    }
    if view.verify_remote {
        // Only a fraction of classes come from "remote" (non-boot) loaders.
        per_class += 0.03 * 0.3;
    }
    ms += classes * per_class;
    if view.always_pretouch {
        let rate_bytes_per_ms = if view.large_pages && machine.large_pages_available {
            16e6
        } else {
            6e6
        };
        ms += view.xms / rate_bytes_per_ms;
    }
    SimDuration::from_millis_f64(ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_flags::{hotspot_registry, FlagValue, JvmConfig};

    fn view_with(sets: &[(&str, FlagValue)]) -> FlagView {
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        for (n, v) in sets {
            c.set_by_name(r, n, *v).unwrap();
        }
        FlagView::resolve(r, &c, &Machine::default()).unwrap().0
    }

    #[test]
    fn disabling_tlab_hurts_allocation_heavy_workloads() {
        let mut wl = Workload::baseline("w");
        wl.alloc_rate = 3.0;
        let m = Machine::default();
        let on = mutator_factor(&view_with(&[]), &wl, &m);
        let off = mutator_factor(&view_with(&[("UseTLAB", FlagValue::Bool(false))]), &wl, &m);
        assert!(on > off * 1.05, "on {on} off {off}");
    }

    #[test]
    fn biased_locking_helps_uncontended_hurts_contended() {
        let m = Machine::default();
        let mut quiet = Workload::baseline("q");
        quiet.lock_density = 0.02;
        quiet.lock_contention = 0.01;
        let mut noisy = Workload::baseline("n");
        noisy.lock_density = 0.02;
        noisy.lock_contention = 0.6;
        let biased = view_with(&[]);
        let unbiased = view_with(&[("UseBiasedLocking", FlagValue::Bool(false))]);
        assert!(mutator_factor(&biased, &quiet, &m) > mutator_factor(&unbiased, &quiet, &m));
        assert!(mutator_factor(&biased, &noisy, &m) < mutator_factor(&unbiased, &noisy, &m));
    }

    #[test]
    fn compressed_oops_benefit_scales_with_pointer_density() {
        let m = Machine::default();
        let mut ptr_heavy = Workload::baseline("p");
        ptr_heavy.pointer_density = 0.9;
        let on = view_with(&[]);
        let off = view_with(&[("UseCompressedOops", FlagValue::Bool(false))]);
        let gain = mutator_factor(&on, &ptr_heavy, &m) / mutator_factor(&off, &ptr_heavy, &m);
        assert!(gain > 1.05, "gain {gain}");
        let mut ptr_light = Workload::baseline("l");
        ptr_light.pointer_density = 0.05;
        let gain_light = mutator_factor(&on, &ptr_light, &m) / mutator_factor(&off, &ptr_light, &m);
        assert!(gain > gain_light);
    }

    #[test]
    fn large_pages_need_os_support() {
        let wl = Workload::baseline("w");
        let lp = view_with(&[("UseLargePages", FlagValue::Bool(true))]);
        let base = view_with(&[]);
        let with_os = Machine::default();
        let without_os = Machine {
            large_pages_available: false,
            ..Machine::default()
        };
        assert!(mutator_factor(&lp, &wl, &with_os) > mutator_factor(&base, &wl, &with_os));
        let a = mutator_factor(&lp, &wl, &without_os);
        let b = mutator_factor(&base, &wl, &without_os);
        assert!(
            (a - b).abs() < 1e-12,
            "large pages did something without OS support"
        );
    }

    #[test]
    fn numa_only_helps_on_numa_machines() {
        let wl = Workload::baseline("w");
        let numa = view_with(&[("UseNUMA", FlagValue::Bool(true))]);
        let base = view_with(&[]);
        let uma = Machine::default();
        let multi = Machine::big_server();
        assert!(mutator_factor(&numa, &wl, &multi) > mutator_factor(&base, &wl, &multi));
        assert!(mutator_factor(&numa, &wl, &uma) <= mutator_factor(&base, &wl, &uma));
    }

    #[test]
    fn prefetch_distance_has_a_sweet_spot() {
        let m = Machine::default();
        let mut wl = Workload::baseline("w");
        wl.array_stream_fraction = 0.9;
        let f = |d: i64| {
            mutator_factor(
                &view_with(&[("AllocatePrefetchDistance", FlagValue::Int(d))]),
                &wl,
                &m,
            )
        };
        let sweet = f(192);
        assert!(sweet >= f(16), "sweet {sweet} vs near {}", f(16));
        assert!(sweet >= f(512 - 1), "sweet {sweet} vs far");
    }

    #[test]
    fn waste_factor_reflects_tlab_flags() {
        let base = allocation_waste(&view_with(&[]));
        assert!(base > 1.0 && base < 1.2);
        let no_resize = allocation_waste(&view_with(&[("ResizeTLAB", FlagValue::Bool(false))]));
        assert!(no_resize > base);
    }

    #[test]
    fn safepoint_overhead_grows_with_frequency() {
        let wl = Workload::baseline("w");
        let frequent = view_with(&[("GuaranteedSafepointInterval", FlagValue::Int(10))]);
        let rare = view_with(&[("GuaranteedSafepointInterval", FlagValue::Int(10_000))]);
        assert!(safepoint_overhead(&frequent, &wl) > safepoint_overhead(&rare, &wl) * 10.0);
        let off = view_with(&[("GuaranteedSafepointInterval", FlagValue::Int(0))]);
        assert_eq!(safepoint_overhead(&off, &wl), 0.0);
    }

    #[test]
    fn cds_accelerates_class_loading() {
        let m = Machine::default();
        let mut wl = Workload::baseline("w");
        wl.classes_loaded = 10_000;
        let with = startup_time(&view_with(&[]), &wl, &m);
        let without = startup_time(
            &view_with(&[("UseSharedSpaces", FlagValue::Bool(false))]),
            &wl,
            &m,
        );
        assert!(without > with, "CDS did not help: {with} vs {without}");
    }

    #[test]
    fn pretouch_charges_startup() {
        let m = Machine::default();
        let wl = Workload::baseline("w");
        let pre = startup_time(
            &view_with(&[
                ("AlwaysPreTouch", FlagValue::Bool(true)),
                ("InitialHeapSize", FlagValue::Int(1 << 30)),
            ]),
            &wl,
            &m,
        );
        let base = startup_time(&view_with(&[]), &wl, &m);
        assert!(pre.as_millis_f64() > base.as_millis_f64() + 100.0);
    }
}
