//! # jtune-jvmsim
//!
//! A **flag-sensitive HotSpot JVM performance simulator** — the substrate
//! standing in for Oracle's JVM in this reproduction (see DESIGN.md for the
//! substitution argument). Given a [`jtune_flags::JvmConfig`] and a
//! [`Workload`], [`JvmSim::run`] produces a [`RunOutcome`]: total run time
//! with a breakdown into mutator execution, GC pauses, JIT compilation and
//! startup, plus GC/JIT statistics.
//!
//! The simulator is *mechanistic*, not a lookup table. A run advances a
//! virtual clock through an epoch loop in which
//!
//! - the **JIT model** ([`jit`]) promotes methods through interpreter → C1
//!   → C2 tiers according to the compilation-policy flags, with a compile
//!   queue served by background compiler threads, inlining effectiveness
//!   derived from the inlining flags vs. the workload's call profile, and a
//!   code-cache capacity constraint;
//! - the **heap model** ([`heap`], [`gc`]) fills eden at the workload's
//!   allocation rate, triggers young collections, ages and promotes
//!   survivors, and runs one of five collector models (serial, parallel,
//!   parallel-old, CMS, G1) with distinct pause/throughput/concurrency
//!   behaviour;
//! - the **runtime model** ([`runtime`]) applies multiplicative mutator
//!   effects: TLAB allocation, biased locking vs. contention, compressed
//!   oops, large pages, allocation prefetch, safepoint overhead;
//! - the **noise model** ([`noise`]) applies seeded log-normal measurement
//!   noise so that repeat-and-take-median protocols are load-bearing.
//!
//! Roughly 60 flags move the needle; the remaining ~640 registry flags are
//! inert — matching the real JVM, where most flags are irrelevant to any
//! given workload.
//!
//! Invalid configurations behave like the real JVM too: a heap smaller than
//! the live set ends in [`RunFailure::OutOfMemory`], a saturated code cache
//! stops compilation, and `-Xms > -Xmx` is corrected with a warning flag in
//! the outcome.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod engine;
pub mod flagview;
pub mod gc;
pub mod gclog;
pub mod heap;
pub mod jit;
pub mod machine;
pub mod noise;
pub mod outcome;
pub mod runtime;
pub mod workload;

pub use engine::JvmSim;
pub use flagview::{CollectorKind, FlagView};
pub use machine::Machine;
pub use noise::NoiseModel;
pub use outcome::{RunFailure, RunOutcome, TimeBreakdown};
pub use workload::Workload;
