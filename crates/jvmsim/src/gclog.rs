//! HotSpot-style GC/JIT log rendering.
//!
//! Formats a [`RunOutcome`] the way `-verbose:gc` /
//! `-XX:+PrintGCDetails` output looks, so people who read real GC logs can
//! eyeball a simulated run — and so the `jtune simulate` CLI has something
//! familiar to print. Purely presentational: nothing here feeds back into
//! the model.

use std::fmt::Write as _;

use crate::flagview::CollectorKind;
use crate::outcome::RunOutcome;

/// Render an aggregate, HotSpot-flavoured log summary of a run.
///
/// Real logs are per-event; the simulator aggregates, so this prints the
/// event *statistics* in log vocabulary (counts, totals, pause
/// percentiles) plus the heap and JIT summaries HotSpot prints at exit
/// under `-XX:+PrintGCDetails` / `-XX:+CITime`.
pub fn render(outcome: &RunOutcome, collector: CollectorKind) -> String {
    let mut out = String::new();
    let b = &outcome.breakdown;

    let _ = writeln!(
        out,
        "[startup {:.3}s: VM initialised, class data sharing mapped]",
        b.startup.as_secs_f64(),
    );

    let gc_name = match collector {
        CollectorKind::Serial => "DefNew",
        CollectorKind::Parallel => "PSYoungGen",
        CollectorKind::Cms => "ParNew",
        CollectorKind::G1 => "G1 Evacuation Pause (young)",
    };
    let full_name = match collector {
        CollectorKind::Serial => "Tenured",
        CollectorKind::Parallel => "PSOldGen (parallel compacting)",
        CollectorKind::Cms => "concurrent mode failure",
        CollectorKind::G1 => "Full GC (Allocation Failure)",
    };

    let young = outcome.gc.young_collections;
    if young > 0 {
        let _ = writeln!(
            out,
            "[GC [{gc_name}: {young} collections, {:.3}s total, avg {:.1}ms, p99 {:.1}ms, max {:.1}ms]",
            outcome.gc.pauses.sum().as_secs_f64(),
            outcome.gc.pauses.mean().as_millis_f64(),
            outcome.gc.pauses.percentile(99.0).as_millis_f64(),
            outcome.gc.pauses.max().as_millis_f64(),
        );
        let _ = writeln!(
            out,
            "[GC promoted {:.1} MB to the old generation]",
            outcome.gc.promoted_bytes / 1e6
        );
    } else {
        let _ = writeln!(out, "[GC no collections: eden never filled]");
    }
    if outcome.gc.full_collections > 0 {
        let _ = writeln!(
            out,
            "[Full GC [{full_name}: {} collections]",
            outcome.gc.full_collections
        );
    }
    if outcome.gc.concurrent_cycles > 0 {
        let phase = if collector == CollectorKind::G1 {
            "concurrent-mark"
        } else {
            "CMS-concurrent-mark-sweep"
        };
        let _ = writeln!(
            out,
            "[{phase}: {} cycles, {:.3}s of mutator drag]",
            outcome.gc.concurrent_cycles,
            b.gc_concurrent_drag.as_secs_f64()
        );
    }
    if outcome.gc.failures > 0 {
        let what = if collector == CollectorKind::G1 {
            "to-space exhausted"
        } else {
            "concurrent mode failure"
        };
        let _ = writeln!(out, "[GC WARNING: {} x {what}]", outcome.gc.failures);
    }

    let _ = writeln!(
        out,
        "[CITime: {} C1 + {} C2 nmethods, {:.0}% of work at peak tier{}]",
        outcome.jit.c1_compiles,
        outcome.jit.c2_compiles,
        outcome.jit.c2_work_fraction * 100.0,
        if outcome.jit.code_cache_full_drops > 0 {
            format!(
                ", CodeCache is full: {} compilations dropped",
                outcome.jit.code_cache_full_drops
            )
        } else {
            String::new()
        }
    );
    let _ = writeln!(out, "[Heap peak {:.1} MB]", outcome.peak_heap / 1e6);
    for w in &outcome.warnings {
        let _ = writeln!(out, "Java HotSpot(TM) 64-Bit Server VM warning: {w}");
    }
    match &outcome.failure {
        None => {
            let _ = writeln!(
                out,
                "[Total: {:.3}s = mutator {:.3}s + gc {:.3}s + jit-stall {:.3}s + safepoint {:.3}s + startup {:.3}s + drag {:.3}s]",
                b.total().as_secs_f64(),
                b.mutator.as_secs_f64(),
                b.gc_pause.as_secs_f64(),
                b.jit_stall.as_secs_f64(),
                b.safepoint.as_secs_f64(),
                b.startup.as_secs_f64(),
                b.gc_concurrent_drag.as_secs_f64(),
            );
        }
        Some(f) => {
            let _ = writeln!(out, "Exception in thread \"main\" {f}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JvmSim, Workload};
    use jtune_flags::{hotspot_registry, FlagValue, JvmConfig};

    fn run(sets: &[(&str, FlagValue)], wl: &Workload) -> (RunOutcome, CollectorKind) {
        let registry = hotspot_registry();
        let mut config = JvmConfig::default_for(registry);
        for (n, v) in sets {
            config.set_by_name(registry, n, *v).unwrap();
        }
        jtune_flagtree::hotspot_tree().enforce(registry, &mut config);
        let outcome = JvmSim::new().run(registry, &config, wl, 1);
        let (view, _) =
            crate::FlagView::resolve(registry, &config, JvmSim::new().machine()).unwrap();
        (outcome, view.collector)
    }

    fn gc_workload() -> Workload {
        let mut w = Workload::baseline("log-test");
        w.alloc_rate = 3.0;
        w.live_set = 400e6;
        w.total_work = 2e9;
        w
    }

    #[test]
    fn parallel_log_mentions_psyounggen_and_totals() {
        let (outcome, collector) = run(&[], &gc_workload());
        let log = render(&outcome, collector);
        assert!(log.contains("PSYoungGen"), "{log}");
        assert!(log.contains("collections"));
        assert!(log.contains("[Total:"));
        assert!(log.contains("p99"));
    }

    #[test]
    fn cms_log_reports_concurrent_cycles() {
        let mut wl = gc_workload();
        wl.nursery_survival = 0.15;
        let (outcome, collector) = run(&[("UseConcMarkSweepGC", FlagValue::Bool(true))], &wl);
        let log = render(&outcome, collector);
        assert!(log.contains("ParNew"), "{log}");
        if outcome.gc.concurrent_cycles > 0 {
            assert!(log.contains("CMS-concurrent-mark-sweep"));
        }
    }

    #[test]
    fn quiet_workload_logs_no_collections() {
        let mut wl = Workload::baseline("quiet");
        wl.alloc_rate = 0.0;
        wl.live_set = 0.0;
        let (outcome, collector) = run(&[], &wl);
        let log = render(&outcome, collector);
        assert!(log.contains("no collections"), "{log}");
    }

    #[test]
    fn oom_run_renders_an_exception_line() {
        let mut wl = gc_workload();
        wl.live_set = 3e9;
        wl.nursery_survival = 0.5;
        wl.alloc_rate = 8.0;
        let (outcome, collector) = run(&[("MaxHeapSize", FlagValue::Int(256 << 20))], &wl);
        assert!(!outcome.ok());
        let log = render(&outcome, collector);
        assert!(log.contains("OutOfMemoryError"), "{log}");
    }

    #[test]
    fn warnings_render_in_hotspot_style() {
        let wl = gc_workload();
        let (outcome, collector) = run(
            &[
                ("InitialHeapSize", FlagValue::Int(4 << 30)),
                ("MaxHeapSize", FlagValue::Int(1 << 30)),
            ],
            &wl,
        );
        let log = render(&outcome, collector);
        assert!(log.contains("VM warning"), "{log}");
    }
}
