//! Measurement noise.
//!
//! Real JVM benchmarking is noisy: scheduling, cache state, ASLR, daemons.
//! The simulator applies seeded log-normal multiplicative noise plus rare
//! positive outliers so that single measurements lie and the harness's
//! repeat-and-take-median protocol earns its keep — as it must in the
//! paper's methodology.

use jtune_util::{Rng, SimDuration, Xoshiro256pp};

/// Default relative noise (σ of the underlying normal).
pub const DEFAULT_SIGMA: f64 = 0.015;
/// Probability of an outlier run.
pub const OUTLIER_P: f64 = 0.03;

/// Seeded noise generator for one measurement stream.
#[derive(Clone, Debug)]
pub struct NoiseModel {
    rng: Xoshiro256pp,
    sigma: f64,
}

impl NoiseModel {
    /// Noise stream from a seed with the default magnitude.
    pub fn new(seed: u64) -> NoiseModel {
        Self::with_sigma(seed, DEFAULT_SIGMA)
    }

    /// Noise stream with custom magnitude (tests use 0 for determinism).
    pub fn with_sigma(seed: u64, sigma: f64) -> NoiseModel {
        NoiseModel {
            rng: Xoshiro256pp::seed_from_u64(seed ^ 0x6e_6f69_7365u64),
            sigma: sigma.max(0.0),
        }
    }

    /// Apply noise to a measured duration.
    pub fn apply(&mut self, d: SimDuration) -> SimDuration {
        if self.sigma == 0.0 {
            return d;
        }
        let mut factor = self.rng.next_lognormal(0.0, self.sigma);
        if self.rng.next_bool(OUTLIER_P) {
            factor *= 1.0 + self.rng.next_range_f64(0.02, 0.08);
        }
        d.mul_f64(factor)
    }

    /// One-shot interference spike factor, for fault injection: the
    /// multiplier (≥ `magnitude`, which must be ≥ 1) a run suffers when a
    /// co-tenant steals the machine mid-measurement — far beyond what
    /// [`NoiseModel::apply`]'s steady-state model produces, which is what
    /// makes spiked runs *measurement poison* rather than noise. Pure
    /// function of `seed` so injected faults replay bit-identically.
    pub fn spike_factor(seed: u64, magnitude: f64) -> f64 {
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x73_7069_6b65u64);
        magnitude.max(1.0) * rng.next_lognormal(0.0, 0.25)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sigma_is_identity() {
        let mut n = NoiseModel::with_sigma(1, 0.0);
        let d = SimDuration::from_secs(10);
        assert_eq!(n.apply(d), d);
    }

    #[test]
    fn noise_is_reproducible_per_seed() {
        let d = SimDuration::from_secs(10);
        let mut a = NoiseModel::new(42);
        let mut b = NoiseModel::new(42);
        for _ in 0..100 {
            assert_eq!(a.apply(d), b.apply(d));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let d = SimDuration::from_secs(10);
        let mut a = NoiseModel::new(1);
        let mut b = NoiseModel::new(2);
        let same = (0..50).filter(|_| a.apply(d) == b.apply(d)).count();
        assert!(same < 5);
    }

    #[test]
    fn spike_factor_is_large_and_deterministic() {
        let a = NoiseModel::spike_factor(9, 3.0);
        assert_eq!(a, NoiseModel::spike_factor(9, 3.0));
        assert_ne!(a, NoiseModel::spike_factor(10, 3.0));
        // A spike always at least doubles a run at magnitude 3 (lognormal
        // σ=0.25 rarely dips below 0.5×, and the floor clamps magnitude).
        for seed in 0..200 {
            let f = NoiseModel::spike_factor(seed, 3.0);
            assert!(f > 1.0, "spike {f} too small at seed {seed}");
        }
        assert_eq!(
            NoiseModel::spike_factor(1, 0.1),
            NoiseModel::spike_factor(1, 1.0)
        );
    }

    #[test]
    fn noise_magnitude_is_percent_scale() {
        let d = SimDuration::from_secs(100);
        let mut n = NoiseModel::new(7);
        let mut max_dev: f64 = 0.0;
        let mut sum = 0.0;
        let reps = 2000;
        for _ in 0..reps {
            let x = n.apply(d).as_secs_f64();
            max_dev = max_dev.max((x - 100.0).abs());
            sum += x;
        }
        let mean = sum / reps as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
        assert!(max_dev > 1.0, "no visible noise");
        assert!(max_dev < 20.0, "noise implausibly large: {max_dev}");
    }
}
