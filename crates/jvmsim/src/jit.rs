//! The tiered-JIT model.
//!
//! Methods are modelled in *buckets*: the workload's `hot_methods` are
//! ranked by a Zipf distribution over invocation frequency and grouped into
//! a fixed number of rank buckets. Each bucket tracks per-method invocation
//! counts; crossing the (flag-derived) tier thresholds enqueues the
//! bucket's methods for compilation. A compile queue, served by
//! `CICompilerCount` background threads at realistic bytecode-per-second
//! rates, delays the speedup — which is exactly why `TieredCompilation` and
//! low thresholds transform *startup* workloads and barely move long
//! steady-state runs.
//!
//! The overall mutator speed factor at any instant is the
//! invocation-weighted mean of the tier speeds, where the C1/C2 speeds are
//! themselves modulated by the inlining and optimisation flags against the
//! workload's call profile.

use crate::flagview::FlagView;
use crate::workload::Workload;

/// Number of rank buckets the hot-method distribution is folded into.
const BUCKETS: usize = 24;

/// Bytecodes per second a C1 compiler thread retires.
const C1_COMPILE_RATE: f64 = 600_000.0;
/// Bytecodes per second a C2 compiler thread retires (before inlining
/// expansion).
const C2_COMPILE_RATE: f64 = 25_000.0;
/// Native bytes emitted per bytecode (code-cache footprint).
const NATIVE_BYTES_PER_BYTECODE: f64 = 10.0;

/// Execution tier of a bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Template interpreter.
    Interp,
    /// C1 (client) compiled.
    C1,
    /// C2 (server) compiled.
    C2,
}

/// Relative speeds of the three tiers for a given config + workload
/// (interpreter ≡ 1.0).
#[derive(Clone, Copy, Debug)]
pub struct TierSpeeds {
    /// Interpreter relative speed (can dip below 1.0 with profiling).
    pub interp: f64,
    /// C1 relative speed.
    pub c1: f64,
    /// C2 relative speed.
    pub c2: f64,
}

/// Inlining coverage in `[0, 1]`: the fraction of call sites the inliner
/// can fold away, derived from the size-threshold flags against the
/// workload's (exponentially distributed) method sizes.
pub fn inline_coverage(view: &FlagView, wl: &Workload) -> f64 {
    if !view.inline || !view.use_compiler {
        return 0.0;
    }
    let mean = wl.mean_method_size.max(1.0);
    // P(size ≤ threshold) under Exp(mean).
    let p_small = 1.0 - (-view.max_inline_size / mean).exp();
    let p_hot = 1.0 - (-view.freq_inline_size / mean).exp();
    // Hot call sites (~40 % of dynamic calls) get the frequent threshold;
    // InlineSmallCode re-admits already-compiled callees for ~half of the
    // remainder.
    let p_code = 1.0 - (-view.inline_small_code / (mean * NATIVE_BYTES_PER_BYTECODE)).exp();
    let breadth = 0.4 * p_hot + 0.45 * p_small + 0.15 * p_small.max(p_code * 0.8);
    // Depth: diminishing returns past ~5 levels.
    let depth = 1.0 - (-(view.max_inline_level as f64) / 3.0).exp();
    let accessors = if view.inline_accessors { 1.0 } else { 0.85 };
    (breadth * depth * accessors).clamp(0.0, 1.0)
}

/// Steady-state tier speeds for this configuration and workload.
pub fn tier_speeds(view: &FlagView, wl: &Workload) -> TierSpeeds {
    let cov = inline_coverage(view, wl);
    // Dynamic call overhead: each call costs ~12 work units of overhead in
    // compiled code when not inlined; inlining removes it and unlocks
    // cross-call optimisation.
    let call_tax = (wl.call_density * 6.0 * (1.0 - cov)).min(0.35);
    let opt_bonus =
        1.0 * if view.escape_analysis && view.eliminate_allocations {
            1.0 + 0.05 * (wl.alloc_rate / (wl.alloc_rate + 1.0))
        } else {
            1.0
        } * if view.escape_analysis && view.eliminate_locks {
            1.0 + (0.04 * wl.lock_density * 400.0).min(0.04)
        } else {
            1.0
        } * if view.use_superword {
            1.0 + 0.06 * wl.array_stream_fraction
        } else {
            1.0
        } * (1.0
            + 0.04 * wl.array_stream_fraction * (view.loop_unroll_limit / 60.0).min(2.0) / 2.0)
            * if view.inline_math {
                1.0 + 0.08 * wl.fp_fraction
            } else {
                1.0
            }
            * if view.aggressive_opts { 1.02 } else { 1.0 };
    let cross_call = 1.0 + 0.08 * cov * (wl.call_density * 30.0).min(1.0);

    // Profile quality: C2 leans on branch/type profiles. Under the classic
    // policy those come from interpreter counters, so compiling very early
    // (a tiny CompileThreshold) produces measurably poorer code; tiered
    // compilation profiles in C1 and does not pay this tax — which is the
    // real reason tiered is HotSpot's startup answer rather than "just
    // lower the threshold".
    let profile_quality = if view.tiered {
        1.0
    } else {
        let maturity = (view.compile_threshold / 10_000.0).min(1.0);
        let base = 0.86 + 0.14 * maturity.powf(0.35);
        if view.profile_interpreter {
            base
        } else {
            base * 0.95
        }
    };

    let c2 =
        crate::engine::C2_SPEEDUP * (1.0 - call_tax) * opt_bonus * cross_call * profile_quality;
    // C1: lighter inlining, no loop opts; profiling variant (tiered level
    // 3) is a bit slower than pure C1 but we fold that into the constant.
    let c1 = crate::engine::C1_SPEEDUP * (1.0 - 0.7 * call_tax) * (1.0 + 0.015 * cov);
    let interp = 1.0
        * if view.profile_interpreter { 0.95 } else { 1.0 }
        * if view.fast_accessors {
            1.0 + (wl.call_density * 2.0).min(0.04)
        } else {
            1.0
        };
    TierSpeeds { interp, c1, c2 }
}

#[derive(Clone, Debug)]
struct Bucket {
    /// Share of all dynamic calls landing in this bucket.
    call_share: f64,
    /// Methods in the bucket.
    methods: f64,
    /// Invocations accumulated per method.
    invocations: f64,
    tier: Tier,
    /// Tier queued for compilation (compile work already enqueued).
    queued: Option<Tier>,
}

/// Live JIT state during a run.
#[derive(Clone, Debug)]
pub struct JitModel {
    buckets: Vec<Bucket>,
    speeds: TierSpeeds,
    /// Outstanding compile work, in compiler-thread seconds.
    backlog: Vec<(usize, Tier, f64)>,
    code_cache_used: f64,
    code_cache_capacity: f64,
    compile_seconds_per_method_c1: f64,
    compile_seconds_per_method_c2: f64,
    native_bytes_per_method: f64,
    /// Counters for the outcome report.
    pub c1_compiles: u64,
    /// Counters for the outcome report.
    pub c2_compiles: u64,
    /// Compilations dropped to a full code cache.
    pub dropped: u64,
    /// Work retired at C2 speed (for `c2_work_fraction`).
    c2_work: f64,
    total_work: f64,
    tiered: bool,
    stop_at: Tier,
    use_compiler: bool,
    tier_up_c1: f64,
    tier_up_c2: f64,
    ci_threads: f64,
    background: bool,
    flushing: bool,
}

impl JitModel {
    /// Build the model for one run.
    pub fn new(view: &FlagView, wl: &Workload) -> JitModel {
        // Zipf weights over method ranks, folded into BUCKETS groups of
        // equal rank width.
        let n = wl.hot_methods.max(1) as usize;
        let s = wl.hotness_skew;
        let mut rank_w: Vec<f64> = (1..=n).map(|r| 1.0 / (r as f64).powf(s)).collect();
        let total: f64 = rank_w.iter().sum();
        for w in &mut rank_w {
            *w /= total;
        }
        let per = n.div_ceil(BUCKETS);
        let mut buckets = Vec::with_capacity(BUCKETS);
        for chunk in rank_w.chunks(per) {
            buckets.push(Bucket {
                call_share: chunk.iter().sum(),
                methods: chunk.len() as f64,
                invocations: 0.0,
                tier: Tier::Interp,
                queued: None,
            });
        }

        // Inlining inflates C2 compile cost and code size.
        let cov = inline_coverage(view, wl);
        let expansion = 1.0 + 2.0 * cov;
        let msize = wl.mean_method_size;
        let stop_at = if !view.use_compiler || view.tiered_stop_level == 0 {
            Tier::Interp
        } else if view.tiered && view.tiered_stop_level <= 3 {
            Tier::C1
        } else {
            Tier::C2
        };
        // Thresholds: tiered uses the tier3/tier4 pair; the classic policy
        // compiles straight to C2 at CompileThreshold.
        let (t_c1, t_c2) = if view.tiered {
            (view.tier3_threshold, view.tier4_threshold)
        } else {
            (f64::INFINITY, view.compile_threshold)
        };
        JitModel {
            buckets,
            speeds: tier_speeds(view, wl),
            backlog: Vec::new(),
            code_cache_used: 0.0,
            code_cache_capacity: view.code_cache_size,
            compile_seconds_per_method_c1: msize / C1_COMPILE_RATE,
            compile_seconds_per_method_c2: msize * expansion / C2_COMPILE_RATE,
            native_bytes_per_method: msize * expansion * NATIVE_BYTES_PER_BYTECODE,
            c1_compiles: 0,
            c2_compiles: 0,
            dropped: 0,
            c2_work: 0.0,
            total_work: 0.0,
            tiered: view.tiered,
            stop_at,
            use_compiler: view.use_compiler && view.tiered_stop_level > 0,
            tier_up_c1: t_c1,
            tier_up_c2: t_c2,
            ci_threads: view.ci_compiler_count as f64,
            background: view.background_compilation,
            flushing: view.code_cache_flushing,
        }
    }

    /// Current mutator speed factor relative to the interpreter (≥ ~1).
    pub fn speed_factor(&self) -> f64 {
        let mut f = 0.0;
        for b in &self.buckets {
            let tier_speed = match b.tier {
                Tier::Interp => self.speeds.interp,
                Tier::C1 => self.speeds.c1,
                Tier::C2 => self.speeds.c2,
            };
            f += b.call_share * tier_speed;
        }
        f.max(0.05)
    }

    /// The best factor this run can ever reach (all buckets at `stop_at`).
    pub fn asymptotic_factor(&self) -> f64 {
        match self.stop_at {
            Tier::Interp => self.speeds.interp,
            Tier::C1 => self.speeds.c1,
            Tier::C2 => self.speeds.c2,
        }
    }

    /// Advance the model by `work` units retired over `dt_secs` of mutator
    /// time; `calls_per_unit` comes from the workload.
    ///
    /// Returns the foreground **stall seconds** to charge to the run
    /// (non-zero only with `-XX:-BackgroundCompilation`).
    pub fn advance(&mut self, work: f64, dt_secs: f64, calls_per_unit: f64) -> f64 {
        self.total_work += work;
        self.c2_work += work
            * self
                .buckets
                .iter()
                .filter(|b| b.tier == Tier::C2)
                .map(|b| b.call_share)
                .sum::<f64>();
        if !self.use_compiler {
            return 0.0;
        }
        let calls = work * calls_per_unit;
        let mut stall = 0.0;
        // Threshold crossings enqueue compiles.
        for (i, b) in self.buckets.iter_mut().enumerate() {
            if b.methods == 0.0 || b.call_share == 0.0 {
                continue;
            }
            b.invocations += calls * b.call_share / b.methods;
            let want = if self.tiered {
                if b.tier == Tier::Interp && b.invocations >= self.tier_up_c1 {
                    Some(Tier::C1)
                } else if b.tier <= Tier::C1
                    && b.invocations >= self.tier_up_c2
                    && self.stop_at == Tier::C2
                {
                    Some(Tier::C2)
                } else {
                    None
                }
            } else if b.tier == Tier::Interp && b.invocations >= self.tier_up_c2 {
                Some(Tier::C2)
            } else {
                None
            };
            if let Some(t) = want {
                let t = t.min(self.stop_at);
                if t > b.tier && b.queued.is_none_or(|q| q < t) {
                    let per_method = match t {
                        Tier::C1 => self.compile_seconds_per_method_c1,
                        Tier::C2 => self.compile_seconds_per_method_c2,
                        Tier::Interp => 0.0,
                    };
                    // Code-cache space is reserved at enqueue time (the
                    // real allocator rejects compilations whose result the
                    // cache cannot hold).
                    let bytes = b.methods * self.native_bytes_per_method;
                    if self.code_cache_used + bytes > self.code_cache_capacity && !self.flushing {
                        // Cache full, no sweeper: compilation stops.
                        self.dropped += b.methods as u64;
                        continue;
                    } else {
                        if self.code_cache_used + bytes > self.code_cache_capacity {
                            // Sweeper makes room at a small throughput cost,
                            // modelled as extra compile work; occupancy
                            // stays pinned at capacity.
                            self.backlog.push((i, t, 0.2 * per_method * b.methods));
                            self.code_cache_used = self.code_cache_capacity;
                        } else {
                            self.code_cache_used += bytes;
                        }
                        b.queued = Some(t);
                        let cost = per_method * b.methods;
                        self.backlog.push((i, t, cost));
                        if !self.background {
                            // Foreground compilation blocks the mutator for
                            // the full compile cost (spread over compiler
                            // threads).
                            stall += cost / self.ci_threads;
                        }
                    }
                }
            }
        }
        // Serve the queue with CICompilerCount threads.
        let mut budget = dt_secs * self.ci_threads;
        if !self.background {
            // Foreground mode: everything already accounted as stall;
            // drain instantly.
            budget = f64::INFINITY;
        }
        let mut k = 0;
        while k < self.backlog.len() && budget > 0.0 {
            let (i, t, ref mut remaining) = self.backlog[k];
            let spend = remaining.min(budget);
            *remaining -= spend;
            if budget.is_finite() {
                budget -= spend;
            }
            if *remaining <= 1e-12 {
                let b = &mut self.buckets[i];
                if t > b.tier {
                    b.tier = t;
                    match t {
                        Tier::C1 => self.c1_compiles += b.methods as u64,
                        Tier::C2 => self.c2_compiles += b.methods as u64,
                        Tier::Interp => {}
                    }
                }
                if b.queued == Some(t) {
                    b.queued = None;
                }
                self.backlog.remove(k);
            } else {
                k += 1;
            }
        }
        stall
    }

    /// Fraction of all retired work that ran at C2 speed.
    pub fn c2_work_fraction(&self) -> f64 {
        if self.total_work <= 0.0 {
            0.0
        } else {
            self.c2_work / self.total_work
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use jtune_flags::{hotspot_registry, FlagValue, JvmConfig};

    fn view_with(sets: &[(&str, FlagValue)]) -> FlagView {
        let r = hotspot_registry();
        let mut c = JvmConfig::default_for(r);
        for (n, v) in sets {
            c.set_by_name(r, n, *v).unwrap();
        }
        FlagView::resolve(r, &c, &Machine::default()).unwrap().0
    }

    fn drive(model: &mut JitModel, wl: &Workload, work: f64, steps: usize) {
        let per = work / steps as f64;
        for _ in 0..steps {
            // dt consistent with ~interpreter-ish speed; exact value only
            // matters for queue draining.
            model.advance(per, per / 100e6, wl.call_density);
        }
    }

    #[test]
    fn warmup_monotonically_speeds_up() {
        let view = view_with(&[]);
        let wl = Workload::baseline("w");
        let mut m = JitModel::new(&view, &wl);
        let s0 = m.speed_factor();
        assert!((s0 - tier_speeds(&view, &wl).interp).abs() < 1e-9);
        let mut last = s0;
        for _ in 0..50 {
            drive(&mut m, &wl, 2e8, 10);
            let s = m.speed_factor();
            assert!(s >= last - 1e-9, "speed regressed {last} -> {s}");
            last = s;
        }
        assert!(last > 3.0, "never warmed up: {last}");
    }

    #[test]
    fn tiered_warms_up_faster_early() {
        let wl = {
            let mut w = Workload::baseline("w");
            w.call_density = 0.01;
            w
        };
        let classic = view_with(&[]);
        let tiered = view_with(&[("TieredCompilation", FlagValue::Bool(true))]);
        let mut mc = JitModel::new(&classic, &wl);
        let mut mt = JitModel::new(&tiered, &wl);
        // Early in the run (well before the classic 10k threshold bites for
        // most buckets):
        drive(&mut mc, &wl, 3e8, 30);
        drive(&mut mt, &wl, 3e8, 30);
        assert!(
            mt.speed_factor() > mc.speed_factor(),
            "tiered {} vs classic {}",
            mt.speed_factor(),
            mc.speed_factor()
        );
    }

    #[test]
    fn lower_threshold_compiles_sooner() {
        let wl = Workload::baseline("w");
        let hi = view_with(&[("CompileThreshold", FlagValue::Int(100_000))]);
        let lo = view_with(&[("CompileThreshold", FlagValue::Int(500))]);
        let mut mhi = JitModel::new(&hi, &wl);
        let mut mlo = JitModel::new(&lo, &wl);
        drive(&mut mhi, &wl, 5e8, 50);
        drive(&mut mlo, &wl, 5e8, 50);
        assert!(mlo.speed_factor() > mhi.speed_factor());
    }

    #[test]
    fn interpreter_only_never_speeds_up() {
        let view = view_with(&[("UseCompiler", FlagValue::Bool(false))]);
        let wl = Workload::baseline("w");
        let mut m = JitModel::new(&view, &wl);
        drive(&mut m, &wl, 5e9, 100);
        assert!(m.speed_factor() <= 1.05);
        assert_eq!(m.c1_compiles + m.c2_compiles, 0);
    }

    #[test]
    fn inlining_off_hurts_call_dense_workloads() {
        let mut wl = Workload::baseline("w");
        wl.call_density = 0.03;
        let on = view_with(&[]);
        let off = view_with(&[("Inline", FlagValue::Bool(false))]);
        let s_on = tier_speeds(&on, &wl);
        let s_off = tier_speeds(&off, &wl);
        assert!(s_on.c2 > s_off.c2 * 1.1, "{} vs {}", s_on.c2, s_off.c2);
    }

    #[test]
    fn inline_coverage_monotone_in_thresholds() {
        let wl = Workload::baseline("w");
        let small = view_with(&[("MaxInlineSize", FlagValue::Int(5))]);
        let big = view_with(&[("MaxInlineSize", FlagValue::Int(200))]);
        assert!(inline_coverage(&big, &wl) > inline_coverage(&small, &wl));
    }

    #[test]
    fn tiny_code_cache_without_flushing_strands_methods() {
        let wl = Workload::baseline("w");
        let tiny = view_with(&[("ReservedCodeCacheSize", FlagValue::Int(2 << 20))]);
        let mut m = JitModel::new(&tiny, &wl);
        // Ensure the per-bucket footprint exceeds 2 MB at some point.
        drive(&mut m, &wl, 1e10, 200);
        let full = view_with(&[]);
        let mut mf = JitModel::new(&full, &wl);
        drive(&mut mf, &wl, 1e10, 200);
        assert!(
            m.speed_factor() <= mf.speed_factor(),
            "tiny cache should not beat a roomy one"
        );
    }

    #[test]
    fn foreground_compilation_reports_stalls() {
        let wl = Workload::baseline("w");
        let fg = view_with(&[("BackgroundCompilation", FlagValue::Bool(false))]);
        let mut m = JitModel::new(&fg, &wl);
        let mut stall = 0.0;
        for _ in 0..100 {
            stall += m.advance(1e8, 1.0, wl.call_density);
        }
        assert!(stall > 0.0, "no stalls with foreground compilation");
    }

    #[test]
    fn c2_work_fraction_grows() {
        let view = view_with(&[("TieredCompilation", FlagValue::Bool(true))]);
        let wl = Workload::baseline("w");
        let mut m = JitModel::new(&view, &wl);
        drive(&mut m, &wl, 1e8, 10);
        let early = m.c2_work_fraction();
        drive(&mut m, &wl, 2e10, 100);
        assert!(m.c2_work_fraction() > early);
        assert!(m.c2_work_fraction() <= 1.0);
    }

    #[test]
    fn stop_at_level_one_caps_at_c1() {
        let view = view_with(&[
            ("TieredCompilation", FlagValue::Bool(true)),
            ("TieredStopAtLevel", FlagValue::Int(1)),
        ]);
        let wl = Workload::baseline("w");
        let mut m = JitModel::new(&view, &wl);
        drive(&mut m, &wl, 2e10, 200);
        assert_eq!(m.c2_compiles, 0);
        assert!(m.c1_compiles > 0);
        let speeds = tier_speeds(&view, &wl);
        assert!(m.speed_factor() <= speeds.c1 + 1e-9);
    }
}
