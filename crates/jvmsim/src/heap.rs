//! Heap geometry and occupancy state.

use crate::flagview::FlagView;

/// Generation capacities in bytes, derived from the flag view and mutated
/// at run time by adaptive sizing (parallel collector) or pause-target
/// young sizing (G1).
#[derive(Clone, Copy, Debug)]
pub struct HeapGeometry {
    /// Eden capacity.
    pub eden: f64,
    /// One survivor space's capacity.
    pub survivor: f64,
    /// Old-generation capacity.
    pub old: f64,
    /// Total heap (invariant: `eden + 2*survivor + old`).
    pub total: f64,
}

impl HeapGeometry {
    /// Initial geometry from the resolved flags.
    pub fn from_view(view: &FlagView) -> HeapGeometry {
        let eden = view.eden_size();
        let survivor = view.survivor_size();
        let old = view.old_size();
        HeapGeometry {
            eden,
            survivor,
            old,
            total: eden + 2.0 * survivor + old,
        }
    }

    /// Resize the young generation to `young` bytes (keeping the survivor
    /// ratio), moving the balance to/from the old generation. Used by
    /// adaptive sizing; the total is preserved.
    pub fn resize_young(&mut self, young: f64, survivor_ratio: f64) {
        let young = young.clamp(1e6, 0.9 * self.total);
        let sr = survivor_ratio.max(1.0);
        self.eden = young * sr / (sr + 2.0);
        self.survivor = young / (sr + 2.0);
        self.old = (self.total - young).max(0.0);
    }

    /// Young-generation capacity.
    pub fn young(&self) -> f64 {
        self.eden + 2.0 * self.survivor
    }
}

/// Current heap occupancy.
#[derive(Clone, Copy, Debug, Default)]
pub struct HeapState {
    /// Bytes allocated in eden since the last young collection.
    pub eden_used: f64,
    /// Bytes resident in the active survivor space.
    pub survivor_used: f64,
    /// Long-lived bytes in the old generation (the live set).
    pub old_live: f64,
    /// Reclaimable (dead or soon-dead) bytes in the old generation.
    pub old_garbage: f64,
    /// Humongous bytes resident (G1) or large objects in old (others).
    pub humongous: f64,
}

impl HeapState {
    /// Total old-generation occupancy.
    pub fn old_used(&self) -> f64 {
        self.old_live + self.old_garbage + self.humongous
    }

    /// Total heap occupancy.
    pub fn used(&self) -> f64 {
        self.eden_used + self.survivor_used + self.old_used()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Machine;
    use jtune_flags::{hotspot_registry, JvmConfig};

    fn geometry() -> HeapGeometry {
        let r = hotspot_registry();
        let c = JvmConfig::default_for(r);
        let (v, _) = FlagView::resolve(r, &c, &Machine::default()).unwrap();
        HeapGeometry::from_view(&v)
    }

    #[test]
    fn geometry_partitions_heap() {
        let g = geometry();
        assert!((g.eden + 2.0 * g.survivor + g.old - g.total).abs() < 1.0);
        assert!(g.eden > g.survivor);
        assert!(g.old > g.young() / 2.0);
    }

    #[test]
    fn resize_young_preserves_total() {
        let mut g = geometry();
        let total = g.total;
        g.resize_young(0.5 * total, 8.0);
        assert!((g.total - total).abs() < 1.0);
        assert!((g.eden + 2.0 * g.survivor + g.old - total).abs() < 1.0);
        assert!((g.young() - 0.5 * total).abs() < 1.0);
    }

    #[test]
    fn resize_young_clamps_extremes() {
        let mut g = geometry();
        let total = g.total;
        g.resize_young(10.0 * total, 8.0);
        assert!(g.young() <= 0.9 * total + 1.0);
        g.resize_young(0.0, 8.0);
        assert!(g.young() >= 1e6 - 1.0);
    }

    #[test]
    fn state_totals() {
        let s = HeapState {
            eden_used: 10.0,
            survivor_used: 5.0,
            old_live: 100.0,
            old_garbage: 20.0,
            humongous: 3.0,
        };
        assert_eq!(s.old_used(), 123.0);
        assert_eq!(s.used(), 138.0);
    }
}
