//! Flag-sensitivity audit: the simulator's honesty test.
//!
//! For every flag the registry marks performance-relevant in a subsystem
//! the simulator models, there must exist a (workload, value) pair under
//! which changing that flag changes the *noise-free* outcome. A perf flag
//! the simulator silently ignores would make the tuner's search space lie.
//!
//! The test table lists each audited flag with a workload profile chosen
//! to be sensitive to it and an alternative value far from the default.

use jtune_flags::{hotspot_registry, FlagValue, JvmConfig};
use jtune_jvmsim::{JvmSim, Workload};

/// Workload archetypes the flags below are audited against.
fn workload(kind: &str) -> Workload {
    let mut w = Workload::baseline(kind);
    match kind {
        // Allocation- and GC-bound.
        "alloc" => {
            w.alloc_rate = 4.0;
            w.live_set = 500e6;
            w.nursery_survival = 0.12;
            w.total_work = 3e9;
        }
        // Short run dominated by JIT warm-up.
        "startup" => {
            w.total_work = 6e8;
            w.hot_methods = 2000;
            w.hotness_skew = 0.6;
            w.call_density = 0.04;
            // Big methods: the compiled footprint (~15 MB) must be able to
            // overflow a minimum-size code cache.
            w.mean_method_size = 300.0;
        }
        // Lock-contended and parallel.
        "locky" => {
            w.threads = 8;
            w.lock_density = 0.01;
            w.lock_contention = 0.5;
        }
        // Streaming numeric kernel.
        "streamy" => {
            w.array_stream_fraction = 0.9;
            w.fp_fraction = 0.6;
            w.pointer_density = 0.6;
        }
        // Class-loading heavy startup.
        "classy" => {
            w.classes_loaded = 20_000;
            w.total_work = 5e8;
        }
        _ => {}
    }
    w
}

/// Noise-free total (breakdown sum) under one flag override.
fn total_with(wl: &Workload, name: &str, value: FlagValue) -> f64 {
    let registry = hotspot_registry();
    let mut config = JvmConfig::default_for(registry);
    if name != "<default>" {
        config
            .set_by_name(registry, name, value)
            .unwrap_or_else(|e| panic!("setting {name}: {e}"));
    }
    // Collector switches need their conflicts resolved first.
    jtune_flagtree::hotspot_tree().enforce(registry, &mut config);
    let outcome = JvmSim::new().run(registry, &config, wl, 1);
    assert!(outcome.ok(), "{name}: run failed {:?}", outcome.failure);
    outcome.breakdown.total().as_secs_f64()
}

#[test]
fn audited_perf_flags_all_move_the_needle() {
    // (flag, alternative value, sensitive workload)
    let audits: &[(&str, FlagValue, &str)] = &[
        ("MaxHeapSize", FlagValue::Int(8 << 30), "alloc"),
        ("InitialHeapSize", FlagValue::Int(1 << 30), "alloc"),
        ("NewRatio", FlagValue::Int(8), "alloc"),
        ("SurvivorRatio", FlagValue::Int(1), "alloc"),
        ("MaxTenuringThreshold", FlagValue::Int(0), "alloc"),
        ("TargetSurvivorRatio", FlagValue::Int(5), "alloc"),
        ("AlwaysTenure", FlagValue::Bool(true), "alloc"),
        ("UseAdaptiveSizePolicy", FlagValue::Bool(false), "alloc"),
        ("MaxGCPauseMillis", FlagValue::Int(5), "alloc"),
        ("ParallelGCThreads", FlagValue::Int(1), "alloc"),
        ("UseSerialGC", FlagValue::Bool(true), "alloc"),
        ("UseConcMarkSweepGC", FlagValue::Bool(true), "alloc"),
        ("UseG1GC", FlagValue::Bool(true), "alloc"),
        ("AlwaysPreTouch", FlagValue::Bool(true), "alloc"),
        ("TieredCompilation", FlagValue::Bool(true), "startup"),
        ("CompileThreshold", FlagValue::Int(500), "startup"),
        ("CICompilerCount", FlagValue::Int(8), "startup"),
        ("BackgroundCompilation", FlagValue::Bool(false), "startup"),
        ("UseCompiler", FlagValue::Bool(false), "startup"),
        ("Inline", FlagValue::Bool(false), "startup"),
        ("MaxInlineSize", FlagValue::Int(200), "startup"),
        ("FreqInlineSize", FlagValue::Int(10), "startup"),
        ("MaxInlineLevel", FlagValue::Int(1), "startup"),
        ("ProfileInterpreter", FlagValue::Bool(false), "startup"),
        ("UseBiasedLocking", FlagValue::Bool(false), "locky"),
        ("UseHeavyMonitors", FlagValue::Bool(true), "locky"),
        ("UseSpinning", FlagValue::Bool(true), "locky"),
        ("UseMembar", FlagValue::Bool(true), "locky"),
        ("UseTLAB", FlagValue::Bool(false), "alloc"),
        ("TLABWasteTargetPercent", FlagValue::Int(50), "alloc"),
        ("UseCompressedOops", FlagValue::Bool(false), "streamy"),
        ("UseLargePages", FlagValue::Bool(true), "streamy"),
        ("AllocatePrefetchStyle", FlagValue::Int(0), "streamy"),
        ("AllocatePrefetchDistance", FlagValue::Int(16), "streamy"),
        ("UseSuperWord", FlagValue::Bool(false), "streamy"),
        ("LoopUnrollLimit", FlagValue::Int(0), "streamy"),
        ("InlineMathNatives", FlagValue::Bool(false), "streamy"),
        ("DoEscapeAnalysis", FlagValue::Bool(false), "startup"),
        ("AggressiveOpts", FlagValue::Bool(true), "streamy"),
        ("ObjectAlignmentInBytes", FlagValue::Int(64), "streamy"),
        ("UseSharedSpaces", FlagValue::Bool(false), "classy"),
        ("BytecodeVerificationLocal", FlagValue::Bool(true), "classy"),
        ("GuaranteedSafepointInterval", FlagValue::Int(5), "locky"),
        ("StackTraceInThrowable", FlagValue::Bool(false), "streamy"),
    ];

    let mut dead = Vec::new();
    for (name, value, kind) in audits {
        let wl = workload(kind);
        let base = total_with(&wl, "<default>", FlagValue::Bool(false));
        let flipped = total_with(&wl, name, *value);
        let rel = (flipped - base).abs() / base;
        if rel < 1e-4 {
            dead.push(format!("{name} ({kind}): {base:.4} -> {flipped:.4}"));
        }
    }
    assert!(
        dead.is_empty(),
        "perf flags with no measurable effect:\n{}",
        dead.join("\n")
    );
}

#[test]
fn code_cache_pressure_matters_under_tiered_compilation() {
    // ReservedCodeCacheSize only binds when compile bandwidth can fill it:
    // under tiered compilation C1 floods the cache, so a minimum-size
    // cache strands methods in the interpreter.
    let registry = hotspot_registry();
    let wl = workload("startup");
    let sim = JvmSim::new();
    let mut roomy = JvmConfig::default_for(registry);
    roomy
        .set_by_name(registry, "TieredCompilation", FlagValue::Bool(true))
        .unwrap();
    let mut tiny = roomy.clone();
    tiny.set_by_name(registry, "ReservedCodeCacheSize", FlagValue::Int(2 << 20))
        .unwrap();
    let a = sim.run(registry, &roomy, &wl, 1);
    let b = sim.run(registry, &tiny, &wl, 1);
    assert!(a.ok() && b.ok());
    assert_eq!(
        a.jit.code_cache_full_drops, 0,
        "roomy cache dropped compiles"
    );
    assert!(b.jit.code_cache_full_drops > 0, "tiny cache never filled");
    assert!(
        b.breakdown.total() > a.breakdown.total(),
        "cache starvation did not slow the run: {} vs {}",
        b.breakdown.total(),
        a.breakdown.total()
    );
}

#[test]
fn inert_flags_really_are_inert() {
    // The flip side: diagnostics and misc flags must NOT change outcomes.
    let wl = workload("alloc");
    let base = total_with(&wl, "<default>", FlagValue::Bool(false));
    for (name, value) in [
        ("PrintGCDetails", FlagValue::Bool(true)),
        ("TraceClassLoading", FlagValue::Bool(true)),
        ("PrintCompilation", FlagValue::Bool(true)),
        ("HeapDumpOnOutOfMemoryError", FlagValue::Bool(true)),
        ("MaxFDLimit", FlagValue::Bool(false)),
        ("UseSignalChaining", FlagValue::Bool(false)),
        ("PerfDataSamplingInterval", FlagValue::Int(10_000)),
        ("EventLogLength", FlagValue::Int(50_000)),
    ] {
        let flipped = total_with(&wl, name, value);
        assert!(
            (flipped - base).abs() / base < 1e-9,
            "{name} unexpectedly changed the outcome: {base} -> {flipped}"
        );
    }
}

#[test]
fn collector_choice_changes_pause_profile_not_just_total() {
    let registry = hotspot_registry();
    let wl = workload("alloc");
    let sim = JvmSim::new();
    let tree = jtune_flagtree::hotspot_tree();

    let mut parallel = JvmConfig::default_for(registry);
    tree.enforce(registry, &mut parallel);
    let mut cms = JvmConfig::default_for(registry);
    cms.set_by_name(registry, "UseConcMarkSweepGC", FlagValue::Bool(true))
        .unwrap();
    tree.enforce(registry, &mut cms);

    let p = sim.run(registry, &parallel, &wl, 1);
    let c = sim.run(registry, &cms, &wl, 1);
    assert!(p.ok() && c.ok());
    // CMS runs concurrent cycles; the parallel collector cannot.
    assert_eq!(p.gc.concurrent_cycles, 0);
    assert!(c.gc.concurrent_cycles > 0, "CMS never cycled");
    // And CMS trades mutator drag for shorter worst-case pauses.
    assert!(c.breakdown.gc_concurrent_drag.as_nanos() > 0);
}
