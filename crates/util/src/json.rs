//! Minimal JSON emission.
//!
//! The telemetry stream and the `--json` CLI surface need JSON output,
//! but the workspace is deliberately dependency-free (see the crate
//! docs): this module is a hand-rolled *writer* for the small, flat
//! shapes we serialise. It makes two guarantees the telemetry
//! determinism contract relies on:
//!
//! - **Byte determinism**: the same value always renders to the same
//!   bytes (fields are written in call order; numbers use Rust's
//!   shortest round-trip `Display`).
//! - **Valid JSON**: strings are escaped per RFC 8259, and non-finite
//!   floats (which JSON cannot represent) are written as `null`.

use std::fmt::Write as _;

/// Escape `s` and append it, quoted, to `out`.
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a JSON number (`null` for NaN/±∞, which JSON cannot encode).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Incremental writer for one JSON object. Fields appear in call order.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Start `{`.
    pub fn new() -> JsonObject {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_str_escaped(&mut self.buf, key);
        self.buf.push(':');
    }

    /// String field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        push_str_escaped(&mut self.buf, value);
        self
    }

    /// Optional string field (`null` when absent).
    pub fn opt_str(mut self, key: &str, value: Option<&str>) -> Self {
        self.key(key);
        match value {
            Some(v) => push_str_escaped(&mut self.buf, v),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Float field (`null` for non-finite values).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        push_f64(&mut self.buf, value);
        self
    }

    /// Optional float field.
    pub fn opt_f64(mut self, key: &str, value: Option<f64>) -> Self {
        self.key(key);
        match value {
            Some(v) => push_f64(&mut self.buf, v),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Array-of-strings field.
    pub fn str_array(mut self, key: &str, values: &[String]) -> Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            push_str_escaped(&mut self.buf, v);
        }
        self.buf.push(']');
        self
    }

    /// Array-of-floats field.
    pub fn f64_array(mut self, key: &str, values: &[f64]) -> Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            push_f64(&mut self.buf, *v);
        }
        self.buf.push(']');
        self
    }

    /// Field whose value is already-rendered JSON (nested object/array).
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Close `}` and return the rendered object.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Render a slice of pre-rendered JSON values as a JSON array.
pub fn array_of(values: &[String]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(v);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut s = String::new();
        push_str_escaped(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn object_renders_fields_in_call_order() {
        let j = JsonObject::new()
            .str("type", "X")
            .u64("n", 3)
            .f64("x", 1.5)
            .bool("ok", true)
            .opt_str("err", None)
            .str_array("delta", &["-XX:+UseG1GC".to_string()])
            .f64_array("samples", &[0.25, 0.5])
            .finish();
        assert_eq!(
            j,
            r#"{"type":"X","n":3,"x":1.5,"ok":true,"err":null,"delta":["-XX:+UseG1GC"],"samples":[0.25,0.5]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let j = JsonObject::new()
            .f64("inf", f64::INFINITY)
            .opt_f64("nan", Some(f64::NAN))
            .finish();
        assert_eq!(j, r#"{"inf":null,"nan":null}"#);
    }

    #[test]
    fn array_of_joins_rendered_values() {
        let vals = vec!["1".to_string(), r#"{"a":2}"#.to_string()];
        assert_eq!(array_of(&vals), r#"[1,{"a":2}]"#);
    }

    #[test]
    fn identical_values_render_identical_bytes() {
        let render = || JsonObject::new().f64("t", 0.1 + 0.2).finish();
        assert_eq!(render(), render());
    }
}
