//! Minimal JSON emission and parsing.
//!
//! The telemetry stream and the `--json` CLI surface need JSON output,
//! but the workspace is deliberately dependency-free (see the crate
//! docs): this module is a hand-rolled *writer* for the small, flat
//! shapes we serialise, plus a small recursive-descent *parser*
//! ([`parse`]) used by the crash-safe trial journal to read those shapes
//! back. The writer makes two guarantees the telemetry determinism
//! contract relies on:
//!
//! - **Byte determinism**: the same value always renders to the same
//!   bytes (fields are written in call order; numbers use Rust's
//!   shortest round-trip `Display`).
//! - **Valid JSON**: strings are escaped per RFC 8259, and non-finite
//!   floats (which JSON cannot represent) are written as `null`.
//!
//! The parser preserves number tokens as raw text ([`JsonValue::Number`])
//! so 64-bit integers — configuration fingerprints, nanosecond durations —
//! round-trip exactly instead of being squeezed through `f64`.

use std::fmt::Write as _;

/// Escape `s` and append it, quoted, to `out`.
pub fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render a JSON number (`null` for NaN/±∞, which JSON cannot encode).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Incremental writer for one JSON object. Fields appear in call order.
#[derive(Debug)]
pub struct JsonObject {
    buf: String,
    first: bool,
}

impl JsonObject {
    /// Start `{`.
    pub fn new() -> JsonObject {
        JsonObject {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, key: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        push_str_escaped(&mut self.buf, key);
        self.buf.push(':');
    }

    /// String field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        push_str_escaped(&mut self.buf, value);
        self
    }

    /// Optional string field (`null` when absent).
    pub fn opt_str(mut self, key: &str, value: Option<&str>) -> Self {
        self.key(key);
        match value {
            Some(v) => push_str_escaped(&mut self.buf, v),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Float field (`null` for non-finite values).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        push_f64(&mut self.buf, value);
        self
    }

    /// Optional float field.
    pub fn opt_f64(mut self, key: &str, value: Option<f64>) -> Self {
        self.key(key);
        match value {
            Some(v) => push_f64(&mut self.buf, v),
            None => self.buf.push_str("null"),
        }
        self
    }

    /// Unsigned integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    /// Boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Array-of-strings field.
    pub fn str_array(mut self, key: &str, values: &[String]) -> Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            push_str_escaped(&mut self.buf, v);
        }
        self.buf.push(']');
        self
    }

    /// Array-of-floats field.
    pub fn f64_array(mut self, key: &str, values: &[f64]) -> Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            push_f64(&mut self.buf, *v);
        }
        self.buf.push(']');
        self
    }

    /// Array-of-unsigned-integers field (exact, unlike [`f64_array`]).
    ///
    /// [`f64_array`]: JsonObject::f64_array
    pub fn u64_array(mut self, key: &str, values: &[u64]) -> Self {
        self.key(key);
        self.buf.push('[');
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            let _ = write!(self.buf, "{v}");
        }
        self.buf.push(']');
        self
    }

    /// Field whose value is already-rendered JSON (nested object/array).
    pub fn raw(mut self, key: &str, json: &str) -> Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Close `}` and return the rendered object.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObject {
    fn default() -> Self {
        Self::new()
    }
}

/// Render a slice of pre-rendered JSON values as a JSON array.
pub fn array_of(values: &[String]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(v);
    }
    out.push(']');
    out
}

/// A parsed JSON value.
///
/// Numbers keep their raw source text so integer-valued fields (u64
/// fingerprints, nanosecond durations) can be re-parsed exactly via
/// [`JsonValue::as_u64`] without an intermediate lossy `f64`.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its raw token text.
    Number(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, as key/value pairs in source order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object (`None` for other kinds or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The number as an exact `u64`, if this is a non-negative integer
    /// token (no exponent, no fraction).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Is this `null`?
    pub fn is_null(&self) -> bool {
        matches!(self, JsonValue::Null)
    }
}

/// Parse one JSON document. Trailing non-whitespace is an error (the
/// journal stores exactly one value per line).
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&token) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", token as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte '{}' at {pos}", *c as char)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    // Validate the token by asking Rust's float parser; the raw text is
    // what we keep.
    raw.parse::<f64>()
        .map_err(|_| format!("invalid number '{raw}' at byte {start}"))?;
    Ok(JsonValue::Number(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, pos)?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: expect a \uXXXX low half.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err("unpaired surrogate".to_string());
                            }
                            *pos += 2;
                            let lo = parse_hex4(bytes, pos)?;
                            0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00) & 0x3FF)
                        } else {
                            hi
                        };
                        out.push(char::from_u32(code).ok_or("invalid \\u escape")?);
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so slicing on
                // a char boundary is safe once we find the next one).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    // `*pos` is on the 'u'; consume 4 hex digits, leaving `*pos` on the
    // last one (the caller advances past it).
    let start = *pos + 1;
    let end = start + 4;
    if end > bytes.len() {
        return Err("truncated \\u escape".to_string());
    }
    let hex = std::str::from_utf8(&bytes[start..end]).map_err(|e| e.to_string())?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape".to_string())?;
    *pos = end - 1;
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut s = String::new();
        push_str_escaped(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn object_renders_fields_in_call_order() {
        let j = JsonObject::new()
            .str("type", "X")
            .u64("n", 3)
            .f64("x", 1.5)
            .bool("ok", true)
            .opt_str("err", None)
            .str_array("delta", &["-XX:+UseG1GC".to_string()])
            .f64_array("samples", &[0.25, 0.5])
            .finish();
        assert_eq!(
            j,
            r#"{"type":"X","n":3,"x":1.5,"ok":true,"err":null,"delta":["-XX:+UseG1GC"],"samples":[0.25,0.5]}"#
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let j = JsonObject::new()
            .f64("inf", f64::INFINITY)
            .opt_f64("nan", Some(f64::NAN))
            .finish();
        assert_eq!(j, r#"{"inf":null,"nan":null}"#);
    }

    #[test]
    fn array_of_joins_rendered_values() {
        let vals = vec!["1".to_string(), r#"{"a":2}"#.to_string()];
        assert_eq!(array_of(&vals), r#"[1,{"a":2}]"#);
    }

    #[test]
    fn identical_values_render_identical_bytes() {
        let render = || JsonObject::new().f64("t", 0.1 + 0.2).finish();
        assert_eq!(render(), render());
    }

    #[test]
    fn parses_what_the_writer_emits() {
        let j = JsonObject::new()
            .str("type", "Trial")
            .u64("fp", u64::MAX)
            .opt_str("err", None)
            .f64("p", 0.125)
            .bool("ok", true)
            .u64_array("samples", &[1, 2, 9_007_199_254_740_993])
            .finish();
        let v = parse(&j).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("Trial"));
        assert_eq!(v.get("fp").and_then(JsonValue::as_u64), Some(u64::MAX));
        assert!(v.get("err").unwrap().is_null());
        assert_eq!(v.get("p").and_then(JsonValue::as_f64), Some(0.125));
        assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
        let samples: Vec<u64> = v
            .get("samples")
            .and_then(JsonValue::as_array)
            .unwrap()
            .iter()
            .map(|s| s.as_u64().unwrap())
            .collect();
        // 2^53 + 1 survives: no f64 round-trip on integer tokens.
        assert_eq!(samples, vec![1, 2, 9_007_199_254_740_993]);
    }

    #[test]
    fn parses_escapes_and_nesting() {
        let v = parse(r#"{"a":"x\"\né😀","b":[{"c":null},-1.5e2]}"#).unwrap();
        assert_eq!(
            v.get("a").and_then(JsonValue::as_str),
            Some("x\"\né\u{1F600}")
        );
        let b = v.get("b").and_then(JsonValue::as_array).unwrap();
        assert!(b[0].get("c").unwrap().is_null());
        assert_eq!(b[1].as_f64(), Some(-150.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            r#"{"a":}"#,
            "[1,",
            "tru",
            r#""unterminated"#,
            "1 2",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn float_display_round_trips_exactly() {
        // The journal stores p-values via Display; shortest-repr floats
        // must re-parse to the identical bit pattern.
        for f in [0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300] {
            let v = parse(&format!("{f}")).unwrap();
            assert_eq!(v.as_f64(), Some(f));
        }
    }
}
