//! # jtune-util
//!
//! Foundation utilities shared by every crate in the HotSpot auto-tuner
//! workspace:
//!
//! - [`rng`] — deterministic, seedable pseudo-random number generators
//!   (SplitMix64 for seeding, Xoshiro256++ as the workhorse). Determinism is
//!   a hard requirement: every experiment in the reproduction must print the
//!   same table on every run, and parallel candidate evaluation must not
//!   depend on thread scheduling.
//! - [`stats`] — the statistics the measurement protocol needs: mean /
//!   median / variance, confidence intervals, bootstrap resampling, and the
//!   Mann-Whitney U test used to decide whether a tuned configuration is
//!   *significantly* better than the default.
//! - [`simtime`] — a nanosecond-resolution simulated-time type (`SimTime`,
//!   `SimDuration`) used by the JVM simulator's virtual clock and by the
//!   tuner's budget accounting.
//! - [`histogram`] — fixed-bucket latency histograms for GC-pause
//!   distributions.
//! - [`table`] — plain-text table rendering for experiment output.
//! - [`json`] — minimal, byte-deterministic JSON emission for the
//!   telemetry trace stream and the CLI's `--json` surface.
//!
//! The RNG and statistics are implemented here rather than pulled from
//! crates so the numerical core of the reproduction is auditable and
//! dependency-free.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod histogram;
pub mod json;
pub mod rng;
pub mod simtime;
pub mod stats;
pub mod table;

pub use histogram::Histogram;
pub use rng::{Rng, SplitMix64, Xoshiro256pp};
pub use simtime::{SimDuration, SimTime};
