//! Plain-text table rendering for experiment output.
//!
//! Every experiment binary prints its results as an aligned ASCII table so
//! the regenerated "paper tables" are readable in a terminal and diffable in
//! CI. Deliberately minimal: left/right alignment, a header rule, and a
//! footer rule for summary rows.

use std::fmt::Write as _;

/// Column alignment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (text).
    Left,
    /// Pad on the left (numbers).
    Right,
}

/// An ASCII table builder.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<String>>,
    /// Row indices after which a horizontal rule is drawn (e.g. before a
    /// summary row).
    rules_after: Vec<usize>,
}

impl Table {
    /// Create a table with the given column headers and alignments.
    ///
    /// # Panics
    /// Panics if `headers` and `aligns` differ in length or are empty.
    pub fn new(headers: &[&str], aligns: &[Align]) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        assert_eq!(
            headers.len(),
            aligns.len(),
            "headers/aligns length mismatch"
        );
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            aligns: aligns.to_vec(),
            rows: Vec::new(),
            rules_after: Vec::new(),
        }
    }

    /// Append a data row.
    ///
    /// # Panics
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Draw a horizontal rule after the most recently added row.
    pub fn rule(&mut self) -> &mut Self {
        if !self.rows.is_empty() {
            self.rules_after.push(self.rows.len() - 1);
        }
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (with trailing newline).
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let rule_line = |out: &mut String| {
            for (i, w) in widths.iter().enumerate() {
                if i > 0 {
                    out.push_str("-+-");
                }
                out.push_str(&"-".repeat(*w));
            }
            out.push('\n');
        };
        let write_row = |out: &mut String, cells: &[String], aligns: &[Align]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str(" | ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.len();
                match aligns[i] {
                    Align::Left => {
                        out.push_str(cell);
                        if i + 1 < cols {
                            out.push_str(&" ".repeat(pad));
                        }
                    }
                    Align::Right => {
                        out.push_str(&" ".repeat(pad));
                        out.push_str(cell);
                    }
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers, &vec![Align::Left; cols]);
        rule_line(&mut out);
        for (ri, row) in self.rows.iter().enumerate() {
            write_row(&mut out, row, &self.aligns);
            if self.rules_after.contains(&ri) && ri + 1 < self.rows.len() {
                rule_line(&mut out);
            }
        }
        out
    }
}

/// Format a float with the given number of decimals (helper for row cells).
pub fn fnum(x: f64, decimals: usize) -> String {
    let mut s = String::new();
    let _ = write!(s, "{x:.decimals$}");
    s
}

/// Format a percentage with sign, one decimal: `+19.3%`, `-2.1%`.
pub fn fpct(x: f64) -> String {
    format!("{x:+.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "value"], &[Align::Left, Align::Right]);
        t.row(vec!["alpha".into(), "1.0".into()]);
        t.row(vec!["b".into(), "123.45".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-' || c == '+'));
        // Right-aligned numeric column: both rows end at same column.
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].ends_with("123.45"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(&["a", "b"], &[Align::Left, Align::Left]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn rule_inserts_separator() {
        let mut t = Table::new(&["x"], &[Align::Left]);
        t.row(vec!["1".into()]);
        t.rule();
        t.row(vec!["sum".into()]);
        let s = t.render();
        assert_eq!(s.lines().filter(|l| l.starts_with('-')).count(), 2);
    }

    #[test]
    fn trailing_rule_not_duplicated() {
        let mut t = Table::new(&["x"], &[Align::Left]);
        t.row(vec!["1".into()]);
        t.rule();
        let s = t.render();
        // header rule only; rule after the last row is suppressed.
        assert_eq!(s.lines().filter(|l| l.starts_with('-')).count(), 1);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fnum(12.3456, 2), "12.35");
        assert_eq!(fpct(19.25), "+19.2%");
        assert_eq!(fpct(-2.07), "-2.1%");
    }
}
