//! Simulated time.
//!
//! The whole reproduction runs on a virtual clock: the JVM simulator
//! advances it through mutator execution and GC pauses, and the tuner's
//! budget accountant charges each candidate evaluation against it, mirroring
//! the paper's 200-wall-clock-minute tuning budgets without spending real
//! minutes.
//!
//! [`SimDuration`] is a nanosecond-resolution unsigned duration;
//! [`SimTime`] is an instant (nanoseconds since the start of a run). Both
//! are thin wrappers over `u64` with saturating arithmetic — a simulation
//! that would overflow ~584 years of virtual time is a bug upstream, and
//! saturation keeps it observable rather than wrapping.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time, nanosecond resolution.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// From whole minutes (the paper's budget unit).
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000_000)
    }

    /// From fractional seconds. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// From fractional milliseconds. Negative and non-finite inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// As fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// As fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / 60e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply by a non-negative float (used for scaling pause costs).
    /// NaN / negative factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((self.0 as f64 * factor).min(u64::MAX as f64) as u64)
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 60_000_000_000 {
            write!(f, "{:.2}min", self.as_mins_f64())
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

/// An instant on the virtual clock (nanoseconds since run start).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SimTime(u64);

impl SimTime {
    /// The run-start instant.
    pub const ZERO: SimTime = SimTime(0);

    /// From raw nanoseconds since start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration elapsed since `earlier` (zero if `earlier` is later).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.as_nanos()))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_mins(200).as_mins_f64(), 200.0);
        assert!((SimDuration::from_secs_f64(1.5).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn negative_and_nan_float_inputs_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs(1).mul_f64(f64::NAN),
            SimDuration::ZERO
        );
    }

    #[test]
    fn arithmetic_saturates() {
        let big = SimDuration::from_nanos(u64::MAX);
        assert_eq!((big + big).as_nanos(), u64::MAX);
        assert_eq!(
            SimDuration::from_secs(1) - SimDuration::from_secs(2),
            SimDuration::ZERO
        );
        assert_eq!((big * 3).as_nanos(), u64::MAX);
    }

    #[test]
    fn div_by_zero_is_guarded() {
        assert_eq!(
            (SimDuration::from_secs(4) / 0).as_nanos(),
            SimDuration::from_secs(4).as_nanos()
        );
        assert_eq!((SimDuration::from_secs(4) / 2).as_secs_f64(), 2.0);
    }

    #[test]
    fn instants_advance_and_diff() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_millis(250);
        t += SimDuration::from_millis(750);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_secs(1));
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(10));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(7)), "7.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(3)), "3.000s");
        assert_eq!(format!("{}", SimDuration::from_mins(200)), "200.00min");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10).mul_f64(0.25);
        assert_eq!(d, SimDuration::from_millis(2500));
    }
}
