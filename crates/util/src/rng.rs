//! Deterministic pseudo-random number generation.
//!
//! Two generators are provided:
//!
//! - [`SplitMix64`]: a tiny, fast generator with perfect 64-bit avalanche,
//!   used to expand a single `u64` seed into the larger state of the main
//!   generator (and to derive independent per-candidate streams from a
//!   master seed, see [`Rng::derive`]).
//! - [`Xoshiro256pp`]: Blackman & Vigna's xoshiro256++ 1.0, the workhorse
//!   generator. 256 bits of state, period 2^256 − 1, excellent statistical
//!   quality for simulation purposes.
//!
//! Both are implemented from the public-domain reference algorithms. The
//! whole reproduction depends on these streams being *stable*: experiment
//! tables are asserted byte-for-byte in tests, so the algorithms here must
//! never change behaviour.

/// Trait for the deterministic generators used across the workspace.
///
/// Only the primitives the simulator and the tuner actually need are
/// exposed; everything is built on [`Rng::next_u64`].
pub trait Rng {
    /// Produce the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits: the standard (and bias-free) conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: low < bound. Accept unless x falls in the
            // short final partial block.
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    fn next_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "next_range_i64: lo {lo} > hi {hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span > u64::MAX as u128 {
            // Full-width range: any u64 reinterpreted works.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.next_below(span as u64) as i64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    fn next_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Standard normal variate via Marsaglia's polar method.
    fn next_gaussian(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Log-normal variate with the given parameters of the *underlying*
    /// normal distribution.
    fn next_lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.next_gaussian()).exp()
    }

    /// Sample an index in `[0, weights.len())` proportionally to `weights`.
    ///
    /// Zero-weight entries are never selected. If all weights are zero (or
    /// the slice is empty) returns `None`.
    fn next_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w.is_finite() && w > 0.0 {
                if x < w {
                    return Some(i);
                }
                x -= w;
            }
        }
        // Floating-point slack: return the last positive-weight index.
        weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }

    /// Derive an independent generator from this one's stream combined with
    /// a caller-supplied stream id.
    ///
    /// Used to give each tuning candidate / simulator run its own
    /// reproducible noise stream: `master.derive(candidate_index)`.
    fn derive(&mut self, stream: u64) -> Xoshiro256pp {
        let base = self.next_u64() ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Xoshiro256pp::seed_from_u64(base)
    }
}

/// SplitMix64 (Steele, Lea & Flood; Vigna's public-domain implementation).
///
/// Primarily a seeding aid: any `u64` seed — including 0 — produces a
/// high-quality stream, which makes it the canonical way to initialise the
/// 256-bit state of [`Xoshiro256pp`].
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from an arbitrary seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, public domain reference).
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed the 256-bit state by running SplitMix64 from `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // SplitMix64 cannot produce four zero outputs in a row, so the
        // all-zero (degenerate) state is unreachable.
        Self { s }
    }

    /// Construct directly from raw state. All-zero state is replaced with a
    /// fixed non-zero state to avoid the degenerate fixed point.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0; 4] {
            Self::seed_from_u64(0)
        } else {
            Self { s }
        }
    }
}

impl Rng for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(first, sm2.next_u64());
        assert_eq!(second, sm2.next_u64());
    }

    #[test]
    fn xoshiro_reference_vector() {
        // xoshiro256++ with state {1,2,3,4}: first outputs from the
        // reference implementation.
        let mut g = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let out: Vec<u64> = (0..4).map(|_| g.next_u64()).collect();
        assert_eq!(out[0], 41943041);
        assert_eq!(out[1], 58720359);
        assert_eq!(out[2], 3588806011781223);
        assert_eq!(out[3], 3591011842654386);
    }

    #[test]
    fn zero_state_is_fixed_up() {
        let mut g = Xoshiro256pp::from_state([0; 4]);
        // Must not be stuck at zero.
        assert!((0..8).any(|_| g.next_u64() != 0));
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut g = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = g.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut g = Xoshiro256pp::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = g.next_below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues should appear");
    }

    #[test]
    fn next_range_i64_inclusive_bounds() {
        let mut g = Xoshiro256pp::seed_from_u64(9);
        let mut hit_lo = false;
        let mut hit_hi = false;
        for _ in 0..20_000 {
            let x = g.next_range_i64(-3, 3);
            assert!((-3..=3).contains(&x));
            hit_lo |= x == -3;
            hit_hi |= x == 3;
        }
        assert!(hit_lo && hit_hi);
    }

    #[test]
    fn gaussian_moments() {
        let mut g = Xoshiro256pp::seed_from_u64(11);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| g.next_gaussian()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut g = Xoshiro256pp::seed_from_u64(13);
        for _ in 0..1000 {
            assert!(g.next_lognormal(0.0, 0.015) > 0.0);
        }
    }

    #[test]
    fn weighted_respects_zero_weights() {
        let mut g = Xoshiro256pp::seed_from_u64(17);
        for _ in 0..1000 {
            let i = g.next_weighted(&[0.0, 1.0, 0.0, 2.0]).unwrap();
            assert!(i == 1 || i == 3);
        }
        assert_eq!(g.next_weighted(&[0.0, 0.0]), None);
        assert_eq!(g.next_weighted(&[]), None);
    }

    #[test]
    fn weighted_roughly_proportional() {
        let mut g = Xoshiro256pp::seed_from_u64(19);
        let mut counts = [0u32; 3];
        for _ in 0..30_000 {
            counts[g.next_weighted(&[1.0, 2.0, 3.0]).unwrap()] += 1;
        }
        let total: u32 = counts.iter().sum();
        let p1 = counts[1] as f64 / total as f64;
        assert!((p1 - 2.0 / 6.0).abs() < 0.02, "p1 {p1}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut g = Xoshiro256pp::seed_from_u64(23);
        let mut v: Vec<u32> = (0..50).collect();
        g.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn derived_streams_differ() {
        let mut master = Xoshiro256pp::seed_from_u64(99);
        let mut a = master.derive(0);
        let mut b = master.derive(1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn derive_is_reproducible_for_same_master_state() {
        let mut m1 = Xoshiro256pp::seed_from_u64(5);
        let mut m2 = Xoshiro256pp::seed_from_u64(5);
        let mut a = m1.derive(7);
        let mut b = m2.derive(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
