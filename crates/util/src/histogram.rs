//! Log-scaled latency histograms.
//!
//! The GC simulator records every pause in a [`Histogram`]; experiments
//! report pause-time percentiles from it (G1's `MaxGCPauseMillis` target is
//! evaluated against the observed distribution). Buckets are
//! powers-of-two-ish (log base 2 with 4 sub-buckets per octave), giving
//! ≤ ~19 % relative error per bucket across 1 ns … ~584 s, which is plenty
//! for pause-shape comparisons.

use crate::simtime::SimDuration;

const SUB_BUCKETS: u32 = 4; // sub-buckets per power of two
const NUM_BUCKETS: usize = (64 * SUB_BUCKETS) as usize;

/// Fixed-size log-scaled histogram of [`SimDuration`] samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum_nanos: u128,
    max: SimDuration,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            total: 0,
            sum_nanos: 0,
            max: SimDuration::ZERO,
        }
    }

    fn bucket_for(ns: u64) -> usize {
        if ns == 0 {
            return 0;
        }
        let log2 = 63 - ns.leading_zeros(); // floor(log2 ns)
        let base = log2 * SUB_BUCKETS;
        // Sub-bucket from the bits just below the leading one.
        let sub = if log2 >= 2 {
            ((ns >> (log2 - 2)) & 0b11) as u32
        } else {
            0
        };
        ((base + sub) as usize).min(NUM_BUCKETS - 1)
    }

    /// Representative (lower-bound) value of a bucket, in nanoseconds.
    fn bucket_floor(idx: usize) -> u64 {
        let log2 = idx as u32 / SUB_BUCKETS;
        let sub = idx as u32 % SUB_BUCKETS;
        if log2 == 0 {
            return sub as u64;
        }
        let base = 1u64 << log2;
        if log2 >= 2 {
            base + ((sub as u64) << (log2 - 2))
        } else {
            base
        }
    }

    /// Record one sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        self.counts[Self::bucket_for(ns)] += 1;
        self.total += 1;
        self.sum_nanos += ns as u128;
        if d > self.max {
            self.max = d;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all samples.
    pub fn sum(&self) -> SimDuration {
        SimDuration::from_nanos(self.sum_nanos.min(u64::MAX as u128) as u64)
    }

    /// Mean sample (zero when empty).
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_nanos / self.total as u128) as u64)
        }
    }

    /// Largest recorded sample (exact, not bucketed).
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Approximate percentile (`p` in `[0, 100]`), zero when empty.
    ///
    /// Returns the floor of the bucket containing the requested rank, except
    /// for the top of the distribution where the exact max is returned.
    pub fn percentile(&self, p: f64) -> SimDuration {
        if self.total == 0 {
            return SimDuration::ZERO;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = (p / 100.0 * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The max is exact; report it for the last-occupied bucket.
                if seen == self.total && c > 0 && p >= 100.0 {
                    return self.max;
                }
                return SimDuration::from_nanos(Self::bucket_floor(i));
            }
        }
        self.max
    }

    /// Merge another histogram into this one (parallel reduction).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum_nanos += other.sum_nanos;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Iterate over non-empty buckets as `(bucket_floor, count)` pairs.
    pub fn nonempty_buckets(&self) -> impl Iterator<Item = (SimDuration, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (SimDuration::from_nanos(Self::bucket_floor(i)), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.percentile(50.0), SimDuration::ZERO);
        assert_eq!(h.max(), SimDuration::ZERO);
    }

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new();
        for ms in [1u64, 2, 4, 8, 100] {
            h.record(SimDuration::from_millis(ms));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), SimDuration::from_millis(100));
        assert_eq!(h.sum(), SimDuration::from_millis(115));
        assert_eq!(h.mean(), SimDuration::from_millis(23));
    }

    #[test]
    fn percentile_monotone_and_bounded() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(SimDuration::from_micros(i));
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p100 = h.percentile(100.0);
        assert!(p50 <= p90 && p90 <= p100);
        assert_eq!(p100, SimDuration::from_micros(1000));
        // p50 bucket floor should be within ~25 % below the true median.
        let true_median = SimDuration::from_micros(500).as_nanos() as f64;
        assert!(p50.as_nanos() as f64 > true_median * 0.7);
        assert!(p50.as_nanos() as f64 <= true_median * 1.01);
    }

    #[test]
    fn bucket_relative_error_bounded() {
        // For any value ≥ 4 (the first fully sub-bucketed octave), the
        // bucket floor is within 25 % below the value; below that, it is
        // merely a lower bound.
        for ns in [1u64, 2, 3, 4, 7, 100, 1023, 1025, 1_000_000, 123_456_789] {
            let b = Histogram::bucket_for(ns);
            let floor = Histogram::bucket_floor(b);
            assert!(floor <= ns, "floor {floor} > value {ns}");
            if ns >= 4 {
                assert!(
                    (ns - floor) as f64 / ns as f64 <= 0.25,
                    "floor {floor} too far below {ns}"
                );
            }
        }
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for i in 1..200u64 {
            let d = SimDuration::from_micros(i * 17 % 991);
            whole.record(d);
            if i % 2 == 0 {
                a.record(d);
            } else {
                b.record(d);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.sum(), whole.sum());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.percentile(95.0), whole.percentile(95.0));
    }

    #[test]
    fn zero_duration_sample_is_representable() {
        let mut h = Histogram::new();
        h.record(SimDuration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.percentile(100.0), SimDuration::ZERO);
    }
}
