//! Statistics for the measurement protocol.
//!
//! The paper's tuner compares a candidate JVM configuration against the
//! default by running each several times and comparing run-time samples.
//! This module provides the tools for that comparison:
//!
//! - [`Summary`]: one-pass descriptive statistics (Welford's algorithm).
//! - [`median`] / [`percentile`]: order statistics used by the harness's
//!   repeat-and-take-median protocol.
//! - [`mann_whitney_u`]: non-parametric two-sample test — run times are
//!   log-normal-ish, so a rank test is the right significance check.
//! - [`bootstrap_mean_ci`]: percentile-bootstrap confidence interval for
//!   reporting suite averages.
//! - [`geometric_mean`]: SPEC-style suite aggregation.

use crate::rng::Rng;

/// One-pass descriptive statistics using Welford's online algorithm
/// (numerically stable; see the Rust Performance Book's advice on avoiding
/// catastrophic cancellation in accumulators).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Build a summary from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.add(x);
        }
        s
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty summary).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator); 0 when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (+∞ when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Standard error of the mean.
    pub fn std_err(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Normal-approximation 95 % confidence interval for the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let half = 1.96 * self.std_err();
        (self.mean() - half, self.mean() + half)
    }

    /// Merge another summary into this one (parallel reduction).
    pub fn merge(&mut self, other: &Summary) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Median of a sample. Does not require the input to be sorted.
///
/// Returns 0.0 for an empty slice (callers in this workspace always have at
/// least one repeat; the harness enforces it).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Linear-interpolation percentile, `p` in `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = rank - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Geometric mean. Non-positive inputs are rejected with `None`.
pub fn geometric_mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    let log_sum: f64 = xs.iter().map(|x| x.ln()).sum();
    Some((log_sum / xs.len() as f64).exp())
}

/// Result of a two-sample Mann-Whitney U test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MannWhitney {
    /// The U statistic for the first sample.
    pub u: f64,
    /// Two-sided p-value from the normal approximation (tie-corrected).
    pub p_value: f64,
    /// Common-language effect size: P(X < Y) + ½P(X = Y); values below 0.5
    /// mean the first sample tends to be *smaller* (i.e. faster).
    pub effect: f64,
}

/// Mann-Whitney U test (normal approximation with tie correction).
///
/// Suitable for the sample sizes the harness uses (n ≥ 3 per side gives a
/// coarse but usable p-value; the tuner mainly consumes [`MannWhitney::effect`]).
/// Returns `None` if either sample is empty.
pub fn mann_whitney_u(xs: &[f64], ys: &[f64]) -> Option<MannWhitney> {
    let n1 = xs.len();
    let n2 = ys.len();
    if n1 == 0 || n2 == 0 {
        return None;
    }
    // Rank the pooled sample, averaging ranks for ties.
    let mut pooled: Vec<(f64, usize)> = xs
        .iter()
        .map(|&x| (x, 0usize))
        .chain(ys.iter().map(|&y| (y, 1usize)))
        .collect();
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("NaN in mann_whitney input"));

    let n = pooled.len();
    let mut rank_sum_x = 0.0f64;
    let mut tie_term = 0.0f64; // Σ (t³ − t) over tie groups
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let t = (j - i + 1) as f64;
        let avg_rank = (i + j) as f64 / 2.0 + 1.0; // ranks are 1-based
        for item in &pooled[i..=j] {
            if item.1 == 0 {
                rank_sum_x += avg_rank;
            }
        }
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        i = j + 1;
    }

    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let u1 = rank_sum_x - n1f * (n1f + 1.0) / 2.0;
    let mean_u = n1f * n2f / 2.0;
    let nf = n as f64;
    let var_u = n1f * n2f / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    let p_value = if var_u <= 0.0 {
        1.0
    } else {
        // Continuity-corrected z.
        let z = (u1 - mean_u).abs() - 0.5;
        let z = if z < 0.0 { 0.0 } else { z / var_u.sqrt() };
        2.0 * (1.0 - std_normal_cdf(z))
    };
    Some(MannWhitney {
        u: u1,
        p_value: p_value.clamp(0.0, 1.0),
        effect: u1 / (n1f * n2f),
    })
}

/// Standard normal CDF via Abramowitz & Stegun 7.1.26 erf approximation
/// (absolute error < 1.5e-7, ample for significance testing).
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Percentile-bootstrap 95 % confidence interval for the mean.
///
/// Deterministic given the RNG; the experiments use a fixed seed so tables
/// are reproducible.
pub fn bootstrap_mean_ci<R: Rng>(xs: &[f64], resamples: usize, rng: &mut R) -> Option<(f64, f64)> {
    if xs.is_empty() || resamples == 0 {
        return None;
    }
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..xs.len() {
            sum += xs[rng.next_below(xs.len() as u64) as usize];
        }
        means.push(sum / xs.len() as f64);
    }
    Some((percentile(&means, 2.5), percentile(&means, 97.5)))
}

/// Relative improvement of `tuned` over `default` as the paper reports it:
/// `(default − tuned) / tuned × 100` — "program X was improved by N %"
/// meaning the tuned run is N % *faster* (speedup − 1).
///
/// The abstract's "improved by 63 %" phrasing is a speedup statement; we use
/// speedup−1 throughout and call it *improvement*.
pub fn improvement_percent(default_time: f64, tuned_time: f64) -> f64 {
    if tuned_time <= 0.0 {
        return 0.0;
    }
    (default_time / tuned_time - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    #[test]
    fn summary_matches_hand_computation() {
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance with n−1 = 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 50.0).collect();
        let whole = Summary::from_slice(&xs);
        let mut left = Summary::from_slice(&xs[..37]);
        let right = Summary::from_slice(&xs[37..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut s = Summary::from_slice(&[1.0, 2.0, 3.0]);
        let before = s.mean();
        s.merge(&Summary::new());
        assert_eq!(s.mean(), before);
        let mut empty = Summary::new();
        empty.merge(&Summary::from_slice(&[1.0, 2.0, 3.0]));
        assert_eq!(empty.count(), 3);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
        assert_eq!(median(&[7.5]), 7.5);
    }

    #[test]
    fn percentile_endpoints() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 100.0), 40.0);
        assert_eq!(percentile(&xs, 50.0), 25.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[1.0, -1.0]), None);
        assert_eq!(geometric_mean(&[]), None);
    }

    #[test]
    fn mann_whitney_detects_clear_separation() {
        let fast = [1.0, 1.1, 0.9, 1.05, 0.95, 1.02];
        let slow = [2.0, 2.1, 1.9, 2.05, 1.95, 2.02];
        let mw = mann_whitney_u(&fast, &slow).unwrap();
        assert!(mw.p_value < 0.05, "p {}", mw.p_value);
        assert!(mw.effect < 0.1, "effect {}", mw.effect);
    }

    #[test]
    fn mann_whitney_identical_samples_not_significant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let mw = mann_whitney_u(&a, &a).unwrap();
        assert!(mw.p_value > 0.5, "p {}", mw.p_value);
        assert!((mw.effect - 0.5).abs() < 1e-9);
    }

    #[test]
    fn mann_whitney_empty_returns_none() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((std_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((std_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
    }

    #[test]
    fn bootstrap_ci_contains_mean_for_tight_data() {
        let xs: Vec<f64> = (0..50).map(|i| 100.0 + (i % 5) as f64).collect();
        let mut rng = Xoshiro256pp::seed_from_u64(1);
        let (lo, hi) = bootstrap_mean_ci(&xs, 500, &mut rng).unwrap();
        let mean = Summary::from_slice(&xs).mean();
        assert!(lo <= mean && mean <= hi, "[{lo}, {hi}] vs {mean}");
        assert!(hi - lo < 2.0);
    }

    #[test]
    fn improvement_percent_matches_paper_semantics() {
        // Default 163 s, tuned 100 s → 63 % improvement (speedup 1.63).
        assert!((improvement_percent(163.0, 100.0) - 63.0).abs() < 1e-9);
        assert_eq!(improvement_percent(100.0, 0.0), 0.0);
        // Regression shows as negative.
        assert!(improvement_percent(90.0, 100.0) < 0.0);
    }
}
