//! E7 — budget sensitivity: suite-average improvement as a function of the
//! tuning budget ("within a maximum tuning time of 200 minutes").
//!
//! One 400-minute session per program; best-so-far is sampled at each
//! budget checkpoint from the trial log.

use jtune_experiments::{improvement_at, master_seed, telemetry, tune_program, tuner_options};
use jtune_util::stats::Summary;
use jtune_util::table::{fpct, Align, Table};

fn main() {
    let tel = telemetry("e7_budget");
    let budgets = [25.0, 50.0, 100.0, 200.0, 400.0];
    let suites: [(&str, Vec<jtune_jvmsim::Workload>); 2] = [
        (
            "SPECjvm2008 startup",
            jtune_workloads::specjvm2008_startup(),
        ),
        ("DaCapo", jtune_workloads::dacapo()),
    ];

    println!("== E7: suite-average improvement vs tuning budget (minutes) ==");
    let mut t = Table::new(
        &["suite", "25", "50", "100", "200", "400"],
        &[
            Align::Left,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
            Align::Right,
        ],
    );
    for (name, workloads) in suites {
        let rows: Vec<_> = workloads
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                let bus = tel.bus_for(&format!("{name}+{}", w.name));
                tune_program(
                    w,
                    tuner_options(400, master_seed() ^ 0xE7 ^ ((i as u64) << 24)),
                    &bus,
                )
            })
            .collect();
        let mut cells = vec![name.to_string()];
        for b in budgets {
            let at: Vec<f64> = rows.iter().map(|r| improvement_at(r, b)).collect();
            cells.push(fpct(Summary::from_slice(&at).mean()));
        }
        t.row(cells);
    }
    print!("{}", t.render());
    println!("the paper's 200-minute choice sits where the curves flatten.");
    if let Some(path) = tel.write_report() {
        eprintln!("report: {}", path.display());
    }
}
