//! E10 — model-guided screening: surrogate-screened search (and the
//! bandit portfolio) vs. the plain pipeline at a fixed budget. The
//! claim under test: screening spends the same simulated budget on
//! fewer, better-chosen real measurements, so the tuned result is at
//! least as good and the plain run's final quality is reached with
//! strictly fewer measurements.

use autotuner_core::{ModelPolicy, Tuner, TuningResult};
use jtune_experiments::{budget_mins, master_seed, telemetry, tuner_options};
use jtune_harness::SimExecutor;
use jtune_util::table::{fpct, Align, Table};

/// Real measurements (budget-charged trials) before the session's
/// best-so-far first reaches `target_secs`; `None` if it never does.
fn measurements_to_reach(result: &TuningResult, target_secs: f64) -> Option<u64> {
    let mut measured = 0u64;
    for t in &result.session.trials {
        measured += 1;
        if let Some(s) = t.score_secs {
            if s <= target_secs {
                return Some(measured);
            }
        }
    }
    None
}

fn main() {
    let budget = budget_mins(100);
    let tel = telemetry("e10_model");
    let programs = ["serial", "xml.validation", "compiler.compiler", "dacapo:h2"];
    let variants: [(&str, Option<ModelPolicy>, Option<&str>); 4] = [
        ("plain", None, None),
        ("model", Some(ModelPolicy::default()), None),
        ("portfolio", None, Some("portfolio")),
        (
            "model+portfolio",
            Some(ModelPolicy::default()),
            Some("portfolio"),
        ),
    ];

    println!("== E10: model-guided screening, {budget}-minute budget ==");
    let mut results: Vec<Vec<TuningResult>> = Vec::new();
    for (label, model, technique) in &variants {
        let mut row = Vec::new();
        for (i, p) in programs.iter().enumerate() {
            let w = jtune_workloads::workload_by_name(p).expect("known program");
            let mut opts = tuner_options(budget, master_seed() ^ 0xE10 ^ ((i as u64) << 16));
            if let Some(m) = model {
                opts.model = Some(*m);
            }
            if let Some(t) = technique {
                opts.technique = t.to_string();
            }
            let ex = SimExecutor::new(w);
            let bus = tel.bus_for(&format!("{label}+{p}"));
            row.push(Tuner::new(opts).run(&ex, p, &bus));
        }
        results.push(row);
    }

    let mut headers = vec!["variant".to_string()];
    headers.extend(programs.iter().map(|p| p.to_string()));
    headers.extend(["mean".to_string(), "screened".to_string()]);
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut aligns = vec![Align::Left];
    aligns.extend(std::iter::repeat_n(Align::Right, programs.len() + 2));
    let mut t = Table::new(&headers_ref, &aligns);
    for ((label, _, _), row) in variants.iter().zip(&results) {
        let mut cells = vec![label.to_string()];
        let mut sum = 0.0;
        for r in row {
            let imp = r.improvement_percent();
            sum += imp;
            cells.push(fpct(imp));
        }
        cells.push(fpct(sum / programs.len() as f64));
        cells.push(
            row.iter()
                .map(|r| r.session.screened)
                .sum::<u64>()
                .to_string(),
        );
        t.row(cells);
    }
    print!("{}", t.render());

    // Cost to match: how many real measurements each variant needs to
    // reach the *plain* run's final best on the same program.
    println!();
    println!("-- measurements to reach the plain run's final score --");
    let mut headers2 = vec!["variant".to_string()];
    headers2.extend(programs.iter().map(|p| p.to_string()));
    headers2.push("total".to_string());
    let headers2_ref: Vec<&str> = headers2.iter().map(String::as_str).collect();
    let mut t2 = Table::new(&headers2_ref, &aligns[..aligns.len() - 1]);
    for ((label, _, _), row) in variants.iter().zip(&results) {
        let mut cells = vec![label.to_string()];
        let mut total = 0u64;
        for (i, r) in row.iter().enumerate() {
            let target = results[0][i].session.best_secs;
            match measurements_to_reach(r, target) {
                Some(n) => {
                    total += n;
                    cells.push(n.to_string());
                }
                None => {
                    total += r.session.evaluations;
                    cells.push("never".to_string());
                }
            }
        }
        cells.push(total.to_string());
        t2.row(cells);
    }
    print!("{}", t2.render());

    let plain_mean: f64 = results[0]
        .iter()
        .map(|r| r.improvement_percent())
        .sum::<f64>()
        / programs.len() as f64;
    let model_mean: f64 = results[1]
        .iter()
        .map(|r| r.improvement_percent())
        .sum::<f64>()
        / programs.len() as f64;
    let plain_cost: u64 = results[0].iter().map(|r| r.session.evaluations).sum();
    let model_cost: u64 = results[1]
        .iter()
        .enumerate()
        .map(|(i, r)| {
            measurements_to_reach(r, results[0][i].session.best_secs)
                .unwrap_or(r.session.evaluations)
        })
        .sum();
    println!();
    println!(
        "model-guided mean {model_mean:.1}% vs plain {plain_mean:.1}%; \
         plain's final quality reached after {model_cost} measurements \
         (plain spent {plain_cost})"
    );
    println!("the screen trades cheap surrogate scores for expensive JVM runs:");
    println!("each round over-proposes, keeps only the acquisition-ranked best,");
    println!("and the budget those rejects would have burned goes to real trials.");
    if let Some(path) = tel.write_report() {
        eprintln!("report: {}", path.display());
    }
}
