//! E2 — DaCapo suite table.
//!
//! Paper targets: 13 programs, average improvement 26 %, maximum 42 %,
//! with at least 200 minutes of tuning per program.

use jtune_experiments::{budget_mins, render_suite_table, telemetry, tune_suite};

fn main() {
    let budget = budget_mins(200);
    let tel = telemetry("e2_dacapo");
    let rows = tune_suite(jtune_workloads::dacapo(), budget, &tel);
    print!(
        "{}",
        render_suite_table(
            &format!("E2: DaCapo, {budget}-minute budget per program"),
            &rows
        )
    );
    println!("paper: average +26%, max +42%");
    if let Some(path) = tel.write_report() {
        eprintln!("report: {}", path.display());
    }
}
