//! E3 — the flag hierarchy: per-category counts, the tree skeleton, and
//! the search-space reduction the paper attributes to it.
//!
//! E3 is pure static analysis — it runs no tuning sessions, so unlike the
//! other drivers it emits no telemetry trace (there are no trial events
//! to record; `--trace`/`--progress` are accepted and ignored).

use jtune_flags::{hotspot_registry, Category};
use jtune_flagtree::{hotspot_tree, SpaceStats};
use jtune_util::table::{fnum, Align, Table};

fn main() {
    let registry = hotspot_registry();
    let tree = hotspot_tree();

    println!("== E3a: flag registry by category ==");
    let mut t = Table::new(
        &["category", "flags", "tunable", "perf-relevant"],
        &[Align::Left, Align::Right, Align::Right, Align::Right],
    );
    let mut totals = (0usize, 0usize, 0usize);
    for cat in Category::ALL {
        let all: Vec<_> = registry.iter().filter(|(_, s)| s.category == cat).collect();
        let tunable = all.iter().filter(|(_, s)| s.tunable()).count();
        let perf = all.iter().filter(|(_, s)| s.perf).count();
        totals.0 += all.len();
        totals.1 += tunable;
        totals.2 += perf;
        t.row(vec![
            cat.name().to_string(),
            all.len().to_string(),
            tunable.to_string(),
            perf.to_string(),
        ]);
    }
    t.rule();
    t.row(vec![
        "total".into(),
        totals.0.to_string(),
        totals.1.to_string(),
        totals.2.to_string(),
    ]);
    print!("{}", t.render());
    println!(
        "paper: \"the Hot Spot JVM comes with over 600 flags\" -> {} here\n",
        registry.len()
    );

    println!("== E3b: hierarchy skeleton ==");
    print!("{}", tree.render_skeleton(registry));

    println!("\n== E3c: search-space size (log10 of configuration count) ==");
    let stats = SpaceStats::compute(tree, registry);
    let mut t = Table::new(
        &[
            "stratum (collector, jit mode)",
            "active flags",
            "log10 size",
        ],
        &[Align::Left, Align::Right, Align::Right],
    );
    for s in &stats.strata {
        let label: Vec<String> = s.choices.iter().map(|(_, l)| l.to_string()).collect();
        t.row(vec![
            label.join(" + "),
            s.active_flags.to_string(),
            fnum(s.log10_size, 1),
        ]);
    }
    t.rule();
    t.row(vec![
        "hierarchical total".into(),
        String::new(),
        fnum(stats.hierarchical_log10, 1),
    ]);
    t.row(vec![
        "flat (no hierarchy)".into(),
        stats.tunable_flags.to_string(),
        fnum(stats.flat_log10, 1),
    ]);
    print!("{}", t.render());
    println!(
        "hierarchy removes 10^{:.1} of redundant configuration space",
        stats.reduction_log10()
    );
}
