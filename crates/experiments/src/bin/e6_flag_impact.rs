//! E6 — which flags mattered: one-flag-reverted ablation of the best
//! configurations (the paper's discussion of found configurations).
//!
//! For each tuned program, every flag the best configuration changed is
//! reverted to its default individually; the slowdown that causes is that
//! flag's marginal impact. Flags whose reversion changes nothing are the
//! "hitchhikers" random search drags along — reported as a count.

use jtune_experiments::{budget_mins, master_seed, telemetry, tune_program, tuner_options};
use jtune_harness::{Executor, SimExecutor};
use jtune_util::stats;
use jtune_util::table::{fpct, Align, Table};

fn main() {
    let budget = budget_mins(200);
    let tel = telemetry("e6_flag_impact");
    let programs = ["serial", "xml.validation", "dacapo:h2", "dacapo:xalan"];
    for p in programs {
        let w = jtune_workloads::workload_by_name(p).expect("known program");
        let bus = tel.bus_for(p);
        let row = tune_program(w.clone(), tuner_options(budget, master_seed() ^ 0xE6), &bus);
        let ex = SimExecutor::new(w);
        let registry = ex.registry();
        let best = &row.result.best_config;
        // Median-of-5 scoring for stable ablation numbers.
        let score = |c: &jtune_flags::JvmConfig| -> f64 {
            let times: Vec<f64> = (0..5)
                .map(|i| ex.measure(c, 0xABBA + i).time.as_secs_f64())
                .collect();
            stats::median(&times)
        };
        let best_secs = score(best);
        let delta = best.delta(registry);
        let mut impacts: Vec<(String, f64)> = delta
            .iter()
            .map(|d| {
                let mut reverted = best.clone();
                reverted.set(d.id, d.default);
                let secs = score(&reverted);
                (
                    format!("{}={}", d.name, d.value),
                    stats::improvement_percent(secs, best_secs),
                )
            })
            .collect();
        impacts.sort_by(|a, b| b.1.total_cmp(&a.1));
        let hitchhikers = impacts.iter().filter(|(_, i)| i.abs() < 0.25).count();

        println!(
            "== E6: {p} (default {:.2}s, tuned {:.2}s, {}) ==",
            row.default_secs,
            best_secs,
            fpct(row.improvement)
        );
        let mut t = Table::new(
            &["flag setting", "marginal impact"],
            &[Align::Left, Align::Right],
        );
        for (flag, impact) in impacts.iter().take(8) {
            t.row(vec![flag.clone(), fpct(*impact)]);
        }
        print!("{}", t.render());
        println!(
            "{} of {} changed flags are inert hitchhikers (|impact| < 0.25%)\n",
            hitchhikers,
            impacts.len()
        );
    }
    if let Some(path) = tel.write_report() {
        eprintln!("report: {}", path.display());
    }
}
