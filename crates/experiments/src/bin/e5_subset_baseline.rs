//! E5 — whole-JVM hierarchical tuning vs. the baselines: prior work's
//! GC+heap subset tuning and structure-blind flat search over all flags.
//! Quantifies the paper's central claim ("prior work is limited because
//! only a subset of the tunable flags are tuned").

use autotuner_core::tuner::ManipulatorKind;
use autotuner_core::Tuner;
use jtune_experiments::{budget_mins, master_seed, telemetry, tuner_options};
use jtune_harness::SimExecutor;
use jtune_util::table::{fpct, Align, Table};

fn main() {
    let budget = budget_mins(200);
    let tel = telemetry("e5_subset_baseline");
    let programs = [
        "serial",
        "xml.validation",
        "compiler.compiler",
        "dacapo:h2",
        "dacapo:xalan",
        "dacapo:jython",
    ];
    let kinds = [
        ("hierarchical (paper)", ManipulatorKind::Hierarchical),
        ("gc-subset (prior work)", ManipulatorKind::GcSubset),
        ("flat all-flags", ManipulatorKind::Flat),
    ];

    println!("== E5: improvement by tuning approach, {budget}-minute budget ==");
    let mut t = Table::new(
        &["program", "hierarchical", "gc-subset", "flat"],
        &[Align::Left, Align::Right, Align::Right, Align::Right],
    );
    let mut sums = [0.0f64; 3];
    let mut failed = [0u64; 3];
    let mut total = [0u64; 3];
    for p in programs {
        let w = jtune_workloads::workload_by_name(p).expect("known program");
        let mut cells = vec![p.to_string()];
        for (i, (_, kind)) in kinds.iter().enumerate() {
            let mut opts = tuner_options(budget, master_seed() ^ 0xE5 ^ (i as u64));
            opts.manipulator = *kind;
            let ex = SimExecutor::new(w.clone());
            let bus = tel.bus_for(&format!("{p}+{}", kind.label()));
            let result = Tuner::new(opts).run(&ex, p, &bus);
            let imp = result.improvement_percent();
            sums[i] += imp;
            failed[i] += result
                .session
                .trials
                .iter()
                .filter(|t| t.score_secs.is_none())
                .count() as u64;
            total[i] += result.session.evaluations;
            cells.push(fpct(imp));
        }
        t.row(cells);
    }
    t.rule();
    t.row(vec![
        "average".into(),
        fpct(sums[0] / programs.len() as f64),
        fpct(sums[1] / programs.len() as f64),
        fpct(sums[2] / programs.len() as f64),
    ]);
    t.row(vec![
        "candidates failed".into(),
        format!("{:.0}%", 100.0 * failed[0] as f64 / total[0].max(1) as f64),
        format!("{:.0}%", 100.0 * failed[1] as f64 / total[1].max(1) as f64),
        format!("{:.0}%", 100.0 * failed[2] as f64 / total[2].max(1) as f64),
    ]);
    print!("{}", t.render());
    println!("paper claim reproduced: whole-JVM tuning (hierarchical) far exceeds");
    println!("prior work's GC+heap subset tuning. The flat all-flags column is our");
    println!("own extra baseline: raw random sampling over the whole space is");
    println!("competitive on best-found score (random search is a famously strong");
    println!("baseline), but many of its proposals are configurations a real JVM");
    println!("refuses to start (see the failure row), and it only stays cheap");
    println!("because failed JVM launches cost almost no budget; the hierarchy");
    println!("spends every evaluation on a launchable configuration.");
    if let Some(path) = tel.write_report() {
        eprintln!("report: {}", path.display());
    }
}
