//! E1 — SPECjvm2008 startup suite, the paper's headline table.
//!
//! Paper targets: 16 programs improved by 19 % on average within a
//! 200-minute budget each; three programs by 63 %, 51 % and 32 %.

use jtune_experiments::{budget_mins, render_suite_table, telemetry, tune_suite};

fn main() {
    let budget = budget_mins(200);
    let tel = telemetry("e1_specjvm");
    let rows = tune_suite(jtune_workloads::specjvm2008_startup(), budget, &tel);
    print!(
        "{}",
        render_suite_table(
            &format!("E1: SPECjvm2008 startup, {budget}-minute budget per program"),
            &rows
        )
    );
    println!("paper: average +19%, top-3 +63% / +51% / +32%");
    if let Some(path) = tel.write_report() {
        eprintln!("report: {}", path.display());
    }
}
