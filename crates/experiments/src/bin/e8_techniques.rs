//! E8 — search-technique ablation: each technique solo vs. the AUC-bandit
//! ensemble, at a fixed budget (why the tuner is an ensemble).

use autotuner_core::Tuner;
use jtune_experiments::{budget_mins, master_seed, telemetry, tuner_options};
use jtune_harness::SimExecutor;
use jtune_util::table::{fpct, Align, Table};

fn main() {
    let budget = budget_mins(100);
    let tel = telemetry("e8_techniques");
    let programs = ["serial", "xml.validation", "compiler.compiler", "dacapo:h2"];
    let mut techniques: Vec<&str> = autotuner_core::TechniqueSet::names().to_vec();
    techniques.push("ensemble");

    println!("== E8: improvement by search technique, {budget}-minute budget ==");
    let mut headers = vec!["technique".to_string()];
    headers.extend(programs.iter().map(|p| p.to_string()));
    headers.push("mean".to_string());
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut aligns = vec![Align::Left];
    aligns.extend(std::iter::repeat_n(Align::Right, programs.len() + 1));
    let mut t = Table::new(&headers_ref, &aligns);

    for tech in techniques {
        let mut cells = vec![tech.to_string()];
        let mut sum = 0.0;
        for (i, p) in programs.iter().enumerate() {
            let w = jtune_workloads::workload_by_name(p).expect("known program");
            let mut opts = tuner_options(budget, master_seed() ^ 0xE8 ^ ((i as u64) << 16));
            opts.technique = tech.to_string();
            let ex = SimExecutor::new(w);
            let bus = tel.bus_for(&format!("{tech}+{p}"));
            let imp = Tuner::new(opts).run(&ex, p, &bus).improvement_percent();
            sum += imp;
            cells.push(fpct(imp));
        }
        cells.push(fpct(sum / programs.len() as f64));
        t.row(cells);
    }
    print!("{}", t.render());
    println!("no single technique dominates every program (each row wins somewhere);");
    println!("the ensemble's value is robustness: its per-program *minimum* is the");
    println!("highest of any row, i.e. it avoids every technique's worst case —");
    println!("what matters when each program gets one budgeted session.");
    if let Some(path) = tel.write_report() {
        eprintln!("report: {}", path.display());
    }
}
