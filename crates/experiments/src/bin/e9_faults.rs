//! E9 — fault-injection resilience: the SPECjvm2008 startup suite tuned
//! fault-free vs. under a seeded transient-fault rate (default 5 %) with
//! the retry + quarantine policies enabled.
//!
//! The claim under test: with bounded retries charging the budget and a
//! crash-streak quarantine, the tuner's average improvement under faults
//! stays within a few points of the fault-free run — faults cost budget,
//! not correctness. Override the rate with `JTUNE_FAULT_RATE` (and
//! `JTUNE_FAULT_SEED` to reseed the plan).

use jtune_experiments::{
    budget_mins, master_seed, render_suite_table, telemetry, tune_program_with, tuner_options,
    ExperimentTelemetry, SuiteRow,
};
use jtune_harness::{FaultPlan, QuarantinePolicy, RetryPolicy};
use jtune_jvmsim::Workload;

/// Tune the whole suite under one fault plan (`None` = fault-free),
/// deriving per-program seeds exactly as `tune_suite` does so the clean
/// arm reproduces E1 at the same budget.
fn tune_arm(
    workloads: Vec<Workload>,
    budget: u64,
    fault: Option<FaultPlan>,
    tel: &ExperimentTelemetry,
    label: &str,
) -> Vec<SuiteRow> {
    let seed = master_seed();
    workloads
        .into_iter()
        .enumerate()
        .map(|(i, w)| {
            let mut opts = tuner_options(budget, seed ^ ((i as u64 + 1) << 32));
            opts.seed ^= i as u64;
            if fault.is_some() {
                // The faulty arm always tunes with the safety net on;
                // CLI/env knobs can still override its parameters.
                opts.protocol.retry.get_or_insert(RetryPolicy::default());
                opts.quarantine.get_or_insert(QuarantinePolicy::default());
            }
            let bus = tel.bus_for(&format!("{label}+{}", w.name));
            tune_program_with(w, opts, fault, &bus)
        })
        .collect()
}

fn avg_improvement(rows: &[SuiteRow]) -> f64 {
    rows.iter().map(|r| r.improvement).sum::<f64>() / rows.len() as f64
}

fn main() {
    // The resilience claim is about the *gap*, not headline improvement,
    // so the default budget is smaller than E1's 200 minutes; retry
    // surcharges compound with budget, widening the gap slightly at
    // paper-scale budgets (still ~3 points at 200).
    let budget = budget_mins(50);
    let tel = telemetry("e9_faults");
    let plan =
        jtune_experiments::fault_plan().unwrap_or_else(|| FaultPlan::transient(0.05, 0xFA_017));

    let workloads = jtune_workloads::specjvm2008_startup();
    let clean = tune_arm(workloads.clone(), budget, None, &tel, "clean");
    let faulty = tune_arm(workloads, budget, Some(plan), &tel, "faulty");

    print!(
        "{}",
        render_suite_table(
            &format!("E9a: fault-free baseline, {budget}-minute budget per program"),
            &clean
        )
    );
    print!(
        "{}",
        render_suite_table(
            &format!(
                "E9b: {:.0}% transient faults (seed {}), retries + quarantine on",
                (plan.crash_rate + plan.hang_rate + plan.noise_rate) * 100.0,
                plan.seed
            ),
            &faulty
        )
    );

    let (ca, fa) = (avg_improvement(&clean), avg_improvement(&faulty));
    let retried: u64 = faulty.iter().map(|r| r.retried).sum();
    let quarantined: u64 = faulty.iter().map(|r| r.quarantined).sum();
    println!(
        "fault-free average {ca:+.1}%, faulty average {fa:+.1}%, gap {:.1} points",
        ca - fa
    );
    println!("faults absorbed: {retried} runs retried, {quarantined} configurations quarantined");
    println!("claim: bounded retries + quarantine keep the gap within ~3 points —");
    println!("injected faults cost tuning budget, not result quality.");
    if let Some(path) = tel.write_report() {
        eprintln!("report: {}", path.display());
    }
}
