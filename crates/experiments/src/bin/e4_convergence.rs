//! E4 — convergence: best-found improvement vs. tuning time for four
//! representative programs (the paper's motivation for the 200-minute
//! budget). One long session per program yields the whole curve.

use jtune_experiments::{
    budget_mins, improvement_at, master_seed, telemetry, tune_program, tuner_options,
};
use jtune_util::table::{fpct, Align, Table};

fn main() {
    let budget = budget_mins(200);
    let tel = telemetry("e4_convergence");
    let programs = ["serial", "xml.validation", "compress", "dacapo:h2"];
    let checkpoints = [5.0, 10.0, 25.0, 50.0, 100.0, 150.0, budget as f64];

    let rows: Vec<_> = programs
        .iter()
        .map(|p| {
            let w = jtune_workloads::workload_by_name(p).expect("known program");
            let bus = tel.bus_for(p);
            tune_program(w, tuner_options(budget, master_seed() ^ 0xE4), &bus)
        })
        .collect();

    println!("== E4: best-found improvement vs tuning time (minutes) ==");
    let mut headers = vec!["program".to_string()];
    headers.extend(checkpoints.iter().map(|c| format!("{c:.0}min")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut aligns = vec![Align::Left];
    aligns.extend(std::iter::repeat_n(Align::Right, checkpoints.len()));
    let mut t = Table::new(&headers_ref, &aligns);
    for (p, row) in programs.iter().zip(rows.iter()) {
        let mut cells = vec![p.to_string()];
        cells.extend(checkpoints.iter().map(|c| fpct(improvement_at(row, *c))));
        t.row(cells);
    }
    print!("{}", t.render());
    println!("expectation: curves rise steeply early and flatten towards the budget,");
    println!("which is why the paper fixes 200 minutes per program.");
    if let Some(path) = tel.write_report() {
        eprintln!("report: {}", path.display());
    }
}
