//! # jtune-experiments
//!
//! Shared machinery for the experiment drivers (`e1_specjvm` …
//! `e8_techniques`), one binary per table/figure of the paper. See
//! DESIGN.md for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.
//!
//! Environment knobs (all optional):
//!
//! - `JTUNE_BUDGET_MINS` — override the tuning budget (default: the
//!   experiment's paper value, usually 200).
//! - `JTUNE_SEED` — master seed (default 7).
//! - `JTUNE_OUT` — directory to write per-session TSV logs into.
//! - `JTUNE_CACHE` (or `--cache`) — enable trial memoization: revisited
//!   configurations are served from the session cache at zero budget
//!   charge.
//! - `JTUNE_RACING` (or `--racing`) — enable sequential racing: abort
//!   candidates that are statistically worse than the best-so-far,
//!   refunding their unspent repeats.
//! - `JTUNE_FAIL_FAST=0` (or `--no-fail-fast`) — keep measuring a
//!   candidate's remaining repeats after a failed run.
//! - `JTUNE_RETRIES` / `JTUNE_RETRY_BACKOFF` (or `--retries N` /
//!   `--retry-backoff F`) — retry transiently-failing runs, charging
//!   attempt `k` at `F^k` its cost.
//! - `JTUNE_QUARANTINE` (or `--quarantine N`) — blacklist configurations
//!   after `N` deterministic-failure runs.
//! - `JTUNE_FAULT_RATE` / `JTUNE_FAULT_SEED` (or `--fault-rate F` /
//!   `--fault-seed N`) — inject deterministic transient faults into `F`
//!   of all runs (resilience testing; see `e9_faults`).
//! - `JTUNE_MODEL` (or `--model`) — surrogate-guided candidate
//!   screening: over-propose each round, score the proposals with an
//!   online bagged-tree model, and only measure the most promising.
//! - `JTUNE_SCREEN_RATIO` (or `--screen-ratio F`) — over-proposal
//!   factor for the screen (implies `--model`; default 4).
//! - `JTUNE_PORTFOLIO` (or `--portfolio`) — run the `portfolio`
//!   bandit over the full technique set instead of the default
//!   ensemble.
//!
//! All of these default **off**, in which case every driver produces
//! output byte-identical to the published `results/` tables.
//!
//! Telemetry (see [`telemetry`]): by default every tuning session streams
//! its trial events to `results/traces/<experiment>/<label>.jsonl`.
//! `--no-trace` (or `JTUNE_NO_TRACE=1`) disables the traces,
//! `--trace DIR` (or `JTUNE_TRACE_DIR`) redirects them,
//! `--progress` (or `JTUNE_PROGRESS=1`) adds live stderr reporting, and
//! `--spans` (or `JTUNE_SPANS=1`) turns on timing spans plus a
//! [`MetricsRegistry`] aggregated across the whole run (dumped to
//! `<dir>/metrics.txt` by [`ExperimentTelemetry::write_report`]). Spans
//! are ephemeral: the JSONL traces stay byte-identical either way.
//! After the run, every session-running driver renders the trace
//! directory into `<dir>/report.md` via [`ExperimentTelemetry::write_report`].

#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::sync::Arc;

use autotuner_core::{ModelPolicy, Tuner, TunerOptions};
use jtune_harness::{CachePolicy, ExecutorSpec, FaultPlan, QuarantinePolicy, Racing, RetryPolicy};
use jtune_jvmsim::Workload;
use jtune_telemetry::{JsonlSink, MetricsRegistry, ProgressReporter, TelemetryBus};
use jtune_util::table::{fnum, fpct, Align, Table};
use jtune_util::{stats, SimDuration};

/// A tuned program's headline row.
#[derive(Clone, Debug)]
pub struct SuiteRow {
    /// Program name.
    pub program: String,
    /// Default run time (s).
    pub default_secs: f64,
    /// Tuned run time (s).
    pub tuned_secs: f64,
    /// Improvement % (speedup − 1).
    pub improvement: f64,
    /// Evaluations within budget.
    pub evaluations: u64,
    /// Distinct configurations actually measured (excludes cache hits).
    pub distinct: u64,
    /// Trials served from the trial cache.
    pub cache_hits: u64,
    /// Trials aborted early by sequential racing.
    pub aborted: u64,
    /// Transient-failure repeats recovered by the retry policy.
    pub retried: u64,
    /// Configurations quarantined for failing deterministically.
    pub quarantined: u64,
    /// Proposals rejected by the surrogate screen before measurement.
    pub screened: u64,
    /// Surrogate model refits over the session.
    pub model_fits: u64,
    /// Best configuration delta.
    pub best_delta: Vec<String>,
    /// Full result (for convergence-style post-processing).
    pub result: autotuner_core::TuningResult,
}

/// Read the budget (minutes) with env override.
pub fn budget_mins(default_mins: u64) -> u64 {
    std::env::var("JTUNE_BUDGET_MINS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_mins)
}

/// Read the master seed with env override.
pub fn master_seed() -> u64 {
    std::env::var("JTUNE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

/// True when `flag` is on the command line or `var` is set in the
/// environment.
fn flag_or_env(flag: &str, var: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag) || std::env::var_os(var).is_some()
}

/// Trial memoization requested for this run (`--cache` / `JTUNE_CACHE`).
pub fn cache_enabled() -> bool {
    flag_or_env("--cache", "JTUNE_CACHE")
}

/// Sequential racing requested for this run (`--racing` / `JTUNE_RACING`).
pub fn racing_enabled() -> bool {
    flag_or_env("--racing", "JTUNE_RACING")
}

/// The value following `flag` on the command line, or `var` from the
/// environment.
fn opt_or_env(flag: &str, var: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var(var).ok())
}

/// Fail-fast (stop a candidate after its first failed run) — the
/// default; disabled by `--no-fail-fast` or `JTUNE_FAIL_FAST=0`.
pub fn fail_fast_enabled() -> bool {
    if std::env::args().skip(1).any(|a| a == "--no-fail-fast") {
        return false;
    }
    std::env::var("JTUNE_FAIL_FAST").map_or(true, |v| v != "0")
}

/// Retry policy requested for this run (`--retries` / `JTUNE_RETRIES`,
/// `--retry-backoff` / `JTUNE_RETRY_BACKOFF`); `None` when neither knob
/// is set.
pub fn retry_policy() -> Option<RetryPolicy> {
    let retries = opt_or_env("--retries", "JTUNE_RETRIES").and_then(|v| v.parse().ok());
    let backoff = opt_or_env("--retry-backoff", "JTUNE_RETRY_BACKOFF").and_then(|v| v.parse().ok());
    if retries.is_none() && backoff.is_none() {
        return None;
    }
    let mut policy = RetryPolicy::default();
    if let Some(n) = retries {
        policy.max_retries = n;
    }
    if let Some(f) = backoff {
        policy.backoff = f;
    }
    Some(policy)
}

/// Quarantine policy requested for this run (`--quarantine` /
/// `JTUNE_QUARANTINE`).
pub fn quarantine_policy() -> Option<QuarantinePolicy> {
    let streak = opt_or_env("--quarantine", "JTUNE_QUARANTINE").and_then(|v| v.parse().ok())?;
    Some(QuarantinePolicy { streak })
}

/// Model-guided screening requested for this run (`--model` /
/// `JTUNE_MODEL`, with the over-proposal factor from `--screen-ratio` /
/// `JTUNE_SCREEN_RATIO`, which implies `--model`); `None` (the default)
/// keeps the legacy byte-stable pipeline.
pub fn model_policy() -> Option<ModelPolicy> {
    let ratio = opt_or_env("--screen-ratio", "JTUNE_SCREEN_RATIO").and_then(|v| v.parse().ok());
    if ratio.is_none() && !flag_or_env("--model", "JTUNE_MODEL") {
        return None;
    }
    let mut policy = ModelPolicy::default();
    if let Some(r) = ratio {
        policy.screen_ratio = r;
    }
    Some(policy)
}

/// Portfolio bandit requested for this run (`--portfolio` /
/// `JTUNE_PORTFOLIO`): run the `portfolio` technique instead of the
/// default ensemble.
pub fn portfolio_enabled() -> bool {
    flag_or_env("--portfolio", "JTUNE_PORTFOLIO")
}

/// Fault-injection plan requested for this run (`--fault-rate` /
/// `JTUNE_FAULT_RATE`, seeded by `--fault-seed` / `JTUNE_FAULT_SEED`);
/// `None` (the default) injects nothing.
pub fn fault_plan() -> Option<FaultPlan> {
    let rate: f64 = opt_or_env("--fault-rate", "JTUNE_FAULT_RATE")?
        .parse()
        .ok()?;
    if rate <= 0.0 {
        return None;
    }
    let seed = opt_or_env("--fault-seed", "JTUNE_FAULT_SEED")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xFA_017);
    Some(FaultPlan::transient(rate, seed))
}

/// Standard tuner options for an experiment. The budget-stretching
/// pipeline features are applied when requested on the command line or
/// via the environment (see the crate docs) and are off by default, so
/// published tables reproduce byte-for-byte.
pub fn tuner_options(budget_minutes: u64, seed: u64) -> TunerOptions {
    let mut b = TunerOptions::builder()
        .budget(SimDuration::from_mins(budget_minutes))
        .seed(seed)
        .workers(
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
        )
        .batch(8);
    if cache_enabled() {
        b = b.cache(CachePolicy::default());
    }
    if racing_enabled() {
        b = b.racing(Racing::default());
    }
    if !fail_fast_enabled() {
        b = b.fail_fast(false);
    }
    if let Some(retry) = retry_policy() {
        b = b.retry(retry);
    }
    if let Some(q) = quarantine_policy() {
        b = b.quarantine(q);
    }
    if let Some(m) = model_policy() {
        b = b.model(m);
    }
    if portfolio_enabled() {
        b = b.technique("portfolio");
    }
    b.build().expect("standard experiment options are valid")
}

/// Per-experiment telemetry configuration: where (and whether) each
/// tuning session's JSONL trace goes, and whether to report live
/// progress on stderr. Built by [`telemetry`] from the driver's command
/// line and environment.
#[derive(Clone, Debug)]
pub struct ExperimentTelemetry {
    /// Trace directory (`None` when tracing is disabled).
    dir: Option<PathBuf>,
    /// Attach a stderr progress reporter to every session.
    progress: bool,
    /// Emit timing spans and aggregate a metrics registry across the run.
    spans: bool,
    /// Run-wide metrics, fed by every session's bus when `spans` is on.
    metrics: Arc<MetricsRegistry>,
}

impl ExperimentTelemetry {
    /// Telemetry that records nothing (unit tests, library callers).
    pub fn disabled() -> ExperimentTelemetry {
        ExperimentTelemetry {
            dir: None,
            progress: false,
            spans: false,
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }

    /// Build the bus for one session. `label` names the trace file
    /// (`<dir>/<label>.jsonl`, with path-hostile characters replaced).
    pub fn bus_for(&self, label: &str) -> TelemetryBus {
        let mut bus = TelemetryBus::new().with_spans(self.spans);
        if let Some(dir) = &self.dir {
            let file = format!("{}.jsonl", label.replace([':', '/', '\\', ' '], "-"));
            match JsonlSink::create(dir.join(file)) {
                Ok(sink) => {
                    bus.add(Arc::new(sink));
                }
                Err(e) => eprintln!("warning: trace disabled for {label}: {e}"),
            }
        }
        if self.spans {
            bus.add(Arc::clone(&self.metrics) as Arc<dyn jtune_telemetry::TuningObserver>);
        }
        if self.progress {
            bus.add(Arc::new(ProgressReporter::stderr()));
        }
        bus
    }

    /// The run-wide metrics registry (non-empty only when spans are on).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Render everything the run left in the trace directory into
    /// `<dir>/report.md` (plus `<dir>/metrics.txt` when spans are on).
    /// No-op when tracing is disabled; rendering problems are warned
    /// about on stderr but never fail the experiment. Returns the
    /// report path when one was written.
    pub fn write_report(&self) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        if self.spans {
            let _ = std::fs::write(dir.join("metrics.txt"), self.metrics.render());
        }
        let report = match jtune_report::load(dir) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("warning: report skipped: {e}");
                return None;
            }
        };
        let path = dir.join("report.md");
        match std::fs::write(&path, jtune_report::to_markdown(&report)) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: report skipped: {e}");
                None
            }
        }
    }
}

/// Resolve the telemetry configuration for `experiment` (e.g.
/// `"e1_specjvm"`) from the driver's command line and environment:
/// `--no-trace`/`JTUNE_NO_TRACE` disables traces, `--trace DIR`/
/// `JTUNE_TRACE_DIR` overrides the base directory (default
/// `results/traces`), `--progress`/`JTUNE_PROGRESS` adds live reporting,
/// and `--spans`/`JTUNE_SPANS` turns on timing spans plus run-wide
/// metrics aggregation (traces stay byte-identical — spans are
/// ephemeral, never serialised).
pub fn telemetry(experiment: &str) -> ExperimentTelemetry {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let no_trace =
        args.iter().any(|a| a == "--no-trace") || std::env::var_os("JTUNE_NO_TRACE").is_some();
    let progress =
        args.iter().any(|a| a == "--progress") || std::env::var_os("JTUNE_PROGRESS").is_some();
    let spans = args.iter().any(|a| a == "--spans") || std::env::var_os("JTUNE_SPANS").is_some();
    let base = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("JTUNE_TRACE_DIR").ok())
        .unwrap_or_else(|| "results/traces".to_string());
    let dir = (!no_trace).then(|| Path::new(&base).join(experiment));
    ExperimentTelemetry {
        dir,
        progress,
        spans,
        metrics: Arc::new(MetricsRegistry::new()),
    }
}

/// Tune one workload with the given options, emitting telemetry on
/// `bus` (pass [`TelemetryBus::disabled()`] for a silent run). Applies
/// the globally-requested fault-injection plan (see [`fault_plan`]);
/// use [`tune_program_with`] for an explicit plan.
pub fn tune_program(workload: Workload, opts: TunerOptions, bus: &TelemetryBus) -> SuiteRow {
    tune_program_with(workload, opts, fault_plan(), bus)
}

/// Like [`tune_program`], but with an explicit fault-injection plan:
/// `Some(plan)` wraps the simulator in a
/// [`FaultyExecutor`](jtune_harness::FaultyExecutor), `None`
/// runs fault-free regardless of the environment. The stack is built
/// from the shared [`ExecutorSpec`] description, the same path the CLI
/// and daemon sessions use.
pub fn tune_program_with(
    workload: Workload,
    opts: TunerOptions,
    fault: Option<FaultPlan>,
    bus: &TelemetryBus,
) -> SuiteRow {
    let name = workload.name.clone();
    let executor = ExecutorSpec::sim(workload)
        .with_fault(fault.filter(FaultPlan::is_active))
        .build();
    let result = Tuner::new(opts).run(executor.as_ref(), &name, bus);
    if let Ok(dir) = std::env::var("JTUNE_OUT") {
        let _ = std::fs::create_dir_all(&dir);
        let path = std::path::Path::new(&dir).join(format!("{name}.tsv"));
        let _ = std::fs::write(path, result.session.to_tsv());
    }
    SuiteRow {
        program: name,
        default_secs: result.session.default_secs,
        tuned_secs: result.session.best_secs,
        improvement: result.improvement_percent(),
        evaluations: result.session.evaluations,
        distinct: result.session.distinct,
        cache_hits: result.session.cache_hits,
        aborted: result.session.aborted,
        retried: result.session.retried,
        quarantined: result.session.quarantined,
        screened: result.session.screened,
        model_fits: result.session.model_fits,
        best_delta: result.session.best_delta.clone(),
        result,
    }
}

/// Tune an entire suite with per-session telemetry (each program's trace
/// file is named after the program; pass
/// [`ExperimentTelemetry::disabled()`] for silent runs). Each program's
/// seed is derived from the master seed so sessions are independent but
/// reproducible.
pub fn tune_suite(
    workloads: Vec<Workload>,
    budget_minutes: u64,
    tel: &ExperimentTelemetry,
) -> Vec<SuiteRow> {
    let seed = master_seed();
    workloads
        .into_iter()
        .enumerate()
        .map(|(i, w)| {
            let mut opts = tuner_options(budget_minutes, seed ^ ((i as u64 + 1) << 32));
            opts.seed ^= i as u64;
            let bus = tel.bus_for(&w.name);
            tune_program(w, opts, &bus)
        })
        .collect()
}

/// Render the paper-style suite table (per-program default/tuned times and
/// improvement, plus the average row the abstract quotes). When any row
/// shows evaluation-pipeline activity (cache hits or racing aborts) the
/// table grows `distinct`/`hits`/`aborted` columns; when any row shows
/// fault-tolerance activity (retries or quarantines) it grows
/// `retried`/`quarantined` columns; when any row shows model activity
/// (screened proposals or surrogate fits) it grows `screened`/`fits`
/// columns; with the features off the layout is byte-identical to the
/// published tables.
pub fn render_suite_table(title: &str, rows: &[SuiteRow]) -> String {
    let pipeline = rows.iter().any(|r| r.cache_hits > 0 || r.aborted > 0);
    let faults = rows.iter().any(|r| r.retried > 0 || r.quarantined > 0);
    let model = rows.iter().any(|r| r.screened > 0 || r.model_fits > 0);
    let mut headers = vec![
        "program",
        "default (s)",
        "tuned (s)",
        "improvement",
        "evals",
    ];
    let mut aligns = vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ];
    if pipeline {
        headers.extend(["distinct", "hits", "aborted"]);
        aligns.extend([Align::Right, Align::Right, Align::Right]);
    }
    if faults {
        headers.extend(["retried", "quarantined"]);
        aligns.extend([Align::Right, Align::Right]);
    }
    if model {
        headers.extend(["screened", "fits"]);
        aligns.extend([Align::Right, Align::Right]);
    }
    let mut t = Table::new(&headers, &aligns);
    for r in rows {
        let mut row = vec![
            r.program.clone(),
            fnum(r.default_secs, 2),
            fnum(r.tuned_secs, 2),
            fpct(r.improvement),
            r.evaluations.to_string(),
        ];
        if pipeline {
            row.extend([
                r.distinct.to_string(),
                r.cache_hits.to_string(),
                r.aborted.to_string(),
            ]);
        }
        if faults {
            row.extend([r.retried.to_string(), r.quarantined.to_string()]);
        }
        if model {
            row.extend([r.screened.to_string(), r.model_fits.to_string()]);
        }
        t.row(row);
    }
    t.rule();
    let improvements: Vec<f64> = rows.iter().map(|r| r.improvement).collect();
    let avg = stats::Summary::from_slice(&improvements).mean();
    let mut avg_row = vec![
        "average".to_string(),
        String::new(),
        String::new(),
        fpct(avg),
        String::new(),
    ];
    if pipeline {
        avg_row.extend([String::new(), String::new(), String::new()]);
    }
    if faults {
        avg_row.extend([String::new(), String::new()]);
    }
    if model {
        avg_row.extend([String::new(), String::new()]);
    }
    t.row(avg_row);
    let mut sorted = improvements.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let top: Vec<String> = sorted.iter().take(3).map(|x| fpct(*x)).collect();
    format!(
        "== {title} ==\n{}\naverage improvement: {avg:.1}%   top-3: {}\n",
        t.render(),
        top.join(", ")
    )
}

/// Best-so-far improvement at a virtual-time checkpoint, from a session's
/// trial log (used by the convergence and budget-sensitivity experiments —
/// one long session yields the whole curve).
pub fn improvement_at(row: &SuiteRow, minutes: f64) -> f64 {
    let cutoff = minutes * 60.0;
    let mut best = row.default_secs;
    for t in &row.result.session.trials {
        if t.at_secs <= cutoff {
            if let Some(s) = t.score_secs {
                if s < best {
                    best = s;
                }
            }
        }
    }
    stats::improvement_percent(row.default_secs, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_workloads::workload_by_name;

    #[test]
    fn tune_program_produces_consistent_row() {
        let w = workload_by_name("compress").unwrap();
        let mut opts = tuner_options(2, 1);
        opts.max_evaluations = Some(10);
        let row = tune_program(w, opts, &TelemetryBus::disabled());
        assert!(row.tuned_secs <= row.default_secs);
        assert!(
            (row.improvement - stats::improvement_percent(row.default_secs, row.tuned_secs)).abs()
                < 1e-9
        );
    }

    #[test]
    fn improvement_at_is_monotone_in_time() {
        let w = workload_by_name("serial").unwrap();
        let opts = tuner_options(5, 2);
        let row = tune_program(w, opts, &TelemetryBus::disabled());
        let early = improvement_at(&row, 1.0);
        let late = improvement_at(&row, 5.0);
        assert!(late >= early);
        assert!(improvement_at(&row, 0.0) >= 0.0);
    }

    #[test]
    fn render_table_contains_all_programs() {
        let w = workload_by_name("compress").unwrap();
        let mut opts = tuner_options(1, 3);
        opts.max_evaluations = Some(5);
        let rows = vec![tune_program(w, opts, &TelemetryBus::disabled())];
        let s = render_suite_table("t", &rows);
        assert!(s.contains("compress"));
        assert!(s.contains("average improvement"));
        // Pipeline features off: the published five-column layout.
        assert!(!s.contains("aborted"));
        assert!(!s.contains("retried"));
        assert!(!s.contains("quarantined"));
        assert!(!s.contains("screened"));
    }

    #[test]
    fn suite_table_grows_pipeline_columns_when_active() {
        let w = workload_by_name("compress").unwrap();
        let mut opts = tuner_options(1, 3);
        opts.max_evaluations = Some(5);
        let mut rows = vec![tune_program(w, opts, &TelemetryBus::disabled())];
        rows[0].cache_hits = 3;
        rows[0].aborted = 1;
        let s = render_suite_table("t", &rows);
        assert!(s.contains("distinct"));
        assert!(s.contains("hits"));
        assert!(s.contains("aborted"));
    }

    #[test]
    fn suite_table_grows_fault_columns_when_active() {
        let w = workload_by_name("compress").unwrap();
        let mut opts = tuner_options(1, 3);
        opts.max_evaluations = Some(5);
        let mut rows = vec![tune_program(w, opts, &TelemetryBus::disabled())];
        rows[0].retried = 2;
        rows[0].quarantined = 1;
        let s = render_suite_table("t", &rows);
        assert!(s.contains("retried"));
        assert!(s.contains("quarantined"));
        assert!(!s.contains("aborted"), "pipeline columns stay hidden");
    }

    #[test]
    fn suite_table_grows_model_columns_when_active() {
        let w = workload_by_name("compress").unwrap();
        let mut opts = tuner_options(1, 3);
        opts.max_evaluations = Some(5);
        let mut rows = vec![tune_program(w, opts, &TelemetryBus::disabled())];
        rows[0].screened = 4;
        rows[0].model_fits = 2;
        let s = render_suite_table("t", &rows);
        assert!(s.contains("screened"));
        assert!(s.contains("fits"));
        assert!(!s.contains("aborted"), "pipeline columns stay hidden");
        assert!(!s.contains("retried"), "fault columns stay hidden");
    }

    #[test]
    fn model_guided_session_screens_candidates() {
        let w = workload_by_name("compress").unwrap();
        let mut opts = tuner_options(10, 5);
        opts.model = Some(ModelPolicy::default());
        let row = tune_program(w, opts, &TelemetryBus::disabled());
        assert!(row.screened > 0, "screen never rejected a proposal");
        assert!(row.model_fits > 0, "surrogate never fitted");
        assert!(row.tuned_secs <= row.default_secs);
    }

    #[test]
    fn faulty_session_with_retries_still_improves() {
        let w = workload_by_name("serial").unwrap();
        let mut opts = tuner_options(3, 11);
        opts.max_evaluations = Some(40);
        opts.protocol.retry = Some(RetryPolicy::default());
        opts.quarantine = Some(QuarantinePolicy::default());
        let plan = FaultPlan::transient(0.05, 0xFA_017);
        let row = tune_program_with(w, opts, Some(plan), &TelemetryBus::disabled());
        assert!(row.tuned_secs <= row.default_secs);
    }
}
