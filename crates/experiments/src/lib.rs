//! # jtune-experiments
//!
//! Shared machinery for the experiment drivers (`e1_specjvm` …
//! `e8_techniques`), one binary per table/figure of the paper. See
//! DESIGN.md for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.
//!
//! Environment knobs (all optional):
//!
//! - `JTUNE_BUDGET_MINS` — override the tuning budget (default: the
//!   experiment's paper value, usually 200).
//! - `JTUNE_SEED` — master seed (default 7).
//! - `JTUNE_OUT` — directory to write per-session TSV logs into.
//! - `JTUNE_CACHE` (or `--cache`) — enable trial memoization: revisited
//!   configurations are served from the session cache at zero budget
//!   charge.
//! - `JTUNE_RACING` (or `--racing`) — enable sequential racing: abort
//!   candidates that are statistically worse than the best-so-far,
//!   refunding their unspent repeats.
//!
//! Both pipeline features default **off**, in which case every driver
//! produces output byte-identical to the published `results/` tables.
//!
//! Telemetry (see [`telemetry`]): by default every tuning session streams
//! its trial events to `results/traces/<experiment>/<label>.jsonl`.
//! `--no-trace` (or `JTUNE_NO_TRACE=1`) disables the traces,
//! `--trace DIR` (or `JTUNE_TRACE_DIR`) redirects them, and
//! `--progress` (or `JTUNE_PROGRESS=1`) adds live stderr reporting.

#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::sync::Arc;

use autotuner_core::{Tuner, TunerOptions};
use jtune_harness::{CachePolicy, Racing, SimExecutor};
use jtune_jvmsim::Workload;
use jtune_telemetry::{JsonlSink, ProgressReporter, TelemetryBus};
use jtune_util::table::{fnum, fpct, Align, Table};
use jtune_util::{stats, SimDuration};

/// A tuned program's headline row.
#[derive(Clone, Debug)]
pub struct SuiteRow {
    /// Program name.
    pub program: String,
    /// Default run time (s).
    pub default_secs: f64,
    /// Tuned run time (s).
    pub tuned_secs: f64,
    /// Improvement % (speedup − 1).
    pub improvement: f64,
    /// Evaluations within budget.
    pub evaluations: u64,
    /// Distinct configurations actually measured (excludes cache hits).
    pub distinct: u64,
    /// Trials served from the trial cache.
    pub cache_hits: u64,
    /// Trials aborted early by sequential racing.
    pub aborted: u64,
    /// Best configuration delta.
    pub best_delta: Vec<String>,
    /// Full result (for convergence-style post-processing).
    pub result: autotuner_core::TuningResult,
}

/// Read the budget (minutes) with env override.
pub fn budget_mins(default_mins: u64) -> u64 {
    std::env::var("JTUNE_BUDGET_MINS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_mins)
}

/// Read the master seed with env override.
pub fn master_seed() -> u64 {
    std::env::var("JTUNE_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(7)
}

/// True when `flag` is on the command line or `var` is set in the
/// environment.
fn flag_or_env(flag: &str, var: &str) -> bool {
    std::env::args().skip(1).any(|a| a == flag) || std::env::var_os(var).is_some()
}

/// Trial memoization requested for this run (`--cache` / `JTUNE_CACHE`).
pub fn cache_enabled() -> bool {
    flag_or_env("--cache", "JTUNE_CACHE")
}

/// Sequential racing requested for this run (`--racing` / `JTUNE_RACING`).
pub fn racing_enabled() -> bool {
    flag_or_env("--racing", "JTUNE_RACING")
}

/// Standard tuner options for an experiment. The budget-stretching
/// pipeline features are applied when requested on the command line or
/// via the environment (see the crate docs) and are off by default, so
/// published tables reproduce byte-for-byte.
pub fn tuner_options(budget_minutes: u64, seed: u64) -> TunerOptions {
    let mut b = TunerOptions::builder()
        .budget(SimDuration::from_mins(budget_minutes))
        .seed(seed)
        .workers(
            std::thread::available_parallelism()
                .map(|n| n.get().min(8))
                .unwrap_or(4),
        )
        .batch(8);
    if cache_enabled() {
        b = b.cache(CachePolicy::default());
    }
    if racing_enabled() {
        b = b.racing(Racing::default());
    }
    b.build().expect("standard experiment options are valid")
}

/// Per-experiment telemetry configuration: where (and whether) each
/// tuning session's JSONL trace goes, and whether to report live
/// progress on stderr. Built by [`telemetry`] from the driver's command
/// line and environment.
#[derive(Clone, Debug)]
pub struct ExperimentTelemetry {
    /// Trace directory (`None` when tracing is disabled).
    dir: Option<PathBuf>,
    /// Attach a stderr progress reporter to every session.
    progress: bool,
}

impl ExperimentTelemetry {
    /// Telemetry that records nothing (unit tests, library callers).
    pub fn disabled() -> ExperimentTelemetry {
        ExperimentTelemetry {
            dir: None,
            progress: false,
        }
    }

    /// Build the bus for one session. `label` names the trace file
    /// (`<dir>/<label>.jsonl`, with path-hostile characters replaced).
    pub fn bus_for(&self, label: &str) -> TelemetryBus {
        let mut bus = TelemetryBus::new();
        if let Some(dir) = &self.dir {
            let file = format!("{}.jsonl", label.replace([':', '/', '\\', ' '], "-"));
            match JsonlSink::create(dir.join(file)) {
                Ok(sink) => {
                    bus.add(Arc::new(sink));
                }
                Err(e) => eprintln!("warning: trace disabled for {label}: {e}"),
            }
        }
        if self.progress {
            bus.add(Arc::new(ProgressReporter::stderr()));
        }
        bus
    }
}

/// Resolve the telemetry configuration for `experiment` (e.g.
/// `"e1_specjvm"`) from the driver's command line and environment:
/// `--no-trace`/`JTUNE_NO_TRACE` disables traces, `--trace DIR`/
/// `JTUNE_TRACE_DIR` overrides the base directory (default
/// `results/traces`), `--progress`/`JTUNE_PROGRESS` adds live reporting.
pub fn telemetry(experiment: &str) -> ExperimentTelemetry {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let no_trace =
        args.iter().any(|a| a == "--no-trace") || std::env::var_os("JTUNE_NO_TRACE").is_some();
    let progress =
        args.iter().any(|a| a == "--progress") || std::env::var_os("JTUNE_PROGRESS").is_some();
    let base = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1).cloned())
        .or_else(|| std::env::var("JTUNE_TRACE_DIR").ok())
        .unwrap_or_else(|| "results/traces".to_string());
    let dir = (!no_trace).then(|| Path::new(&base).join(experiment));
    ExperimentTelemetry { dir, progress }
}

/// Tune one workload with the given options, emitting telemetry on
/// `bus` (pass [`TelemetryBus::disabled()`] for a silent run).
pub fn tune_program(workload: Workload, opts: TunerOptions, bus: &TelemetryBus) -> SuiteRow {
    let name = workload.name.clone();
    let executor = SimExecutor::new(workload);
    let result = Tuner::new(opts).run(&executor, &name, bus);
    if let Ok(dir) = std::env::var("JTUNE_OUT") {
        let _ = std::fs::create_dir_all(&dir);
        let path = std::path::Path::new(&dir).join(format!("{name}.tsv"));
        let _ = std::fs::write(path, result.session.to_tsv());
    }
    SuiteRow {
        program: name,
        default_secs: result.session.default_secs,
        tuned_secs: result.session.best_secs,
        improvement: result.improvement_percent(),
        evaluations: result.session.evaluations,
        distinct: result.session.distinct,
        cache_hits: result.session.cache_hits,
        aborted: result.session.aborted,
        best_delta: result.session.best_delta.clone(),
        result,
    }
}

/// Tune an entire suite with per-session telemetry (each program's trace
/// file is named after the program; pass
/// [`ExperimentTelemetry::disabled()`] for silent runs). Each program's
/// seed is derived from the master seed so sessions are independent but
/// reproducible.
pub fn tune_suite(
    workloads: Vec<Workload>,
    budget_minutes: u64,
    tel: &ExperimentTelemetry,
) -> Vec<SuiteRow> {
    let seed = master_seed();
    workloads
        .into_iter()
        .enumerate()
        .map(|(i, w)| {
            let mut opts = tuner_options(budget_minutes, seed ^ ((i as u64 + 1) << 32));
            opts.seed ^= i as u64;
            let bus = tel.bus_for(&w.name);
            tune_program(w, opts, &bus)
        })
        .collect()
}

/// Render the paper-style suite table (per-program default/tuned times and
/// improvement, plus the average row the abstract quotes). When any row
/// shows evaluation-pipeline activity (cache hits or racing aborts) the
/// table grows `distinct`/`hits`/`aborted` columns; with the features off
/// the layout is byte-identical to the published tables.
pub fn render_suite_table(title: &str, rows: &[SuiteRow]) -> String {
    let pipeline = rows.iter().any(|r| r.cache_hits > 0 || r.aborted > 0);
    let mut headers = vec![
        "program",
        "default (s)",
        "tuned (s)",
        "improvement",
        "evals",
    ];
    let mut aligns = vec![
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ];
    if pipeline {
        headers.extend(["distinct", "hits", "aborted"]);
        aligns.extend([Align::Right, Align::Right, Align::Right]);
    }
    let mut t = Table::new(&headers, &aligns);
    for r in rows {
        let mut row = vec![
            r.program.clone(),
            fnum(r.default_secs, 2),
            fnum(r.tuned_secs, 2),
            fpct(r.improvement),
            r.evaluations.to_string(),
        ];
        if pipeline {
            row.extend([
                r.distinct.to_string(),
                r.cache_hits.to_string(),
                r.aborted.to_string(),
            ]);
        }
        t.row(row);
    }
    t.rule();
    let improvements: Vec<f64> = rows.iter().map(|r| r.improvement).collect();
    let avg = stats::Summary::from_slice(&improvements).mean();
    let mut avg_row = vec![
        "average".to_string(),
        String::new(),
        String::new(),
        fpct(avg),
        String::new(),
    ];
    if pipeline {
        avg_row.extend([String::new(), String::new(), String::new()]);
    }
    t.row(avg_row);
    let mut sorted = improvements.clone();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let top: Vec<String> = sorted.iter().take(3).map(|x| fpct(*x)).collect();
    format!(
        "== {title} ==\n{}\naverage improvement: {avg:.1}%   top-3: {}\n",
        t.render(),
        top.join(", ")
    )
}

/// Best-so-far improvement at a virtual-time checkpoint, from a session's
/// trial log (used by the convergence and budget-sensitivity experiments —
/// one long session yields the whole curve).
pub fn improvement_at(row: &SuiteRow, minutes: f64) -> f64 {
    let cutoff = minutes * 60.0;
    let mut best = row.default_secs;
    for t in &row.result.session.trials {
        if t.at_secs <= cutoff {
            if let Some(s) = t.score_secs {
                if s < best {
                    best = s;
                }
            }
        }
    }
    stats::improvement_percent(row.default_secs, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_workloads::workload_by_name;

    #[test]
    fn tune_program_produces_consistent_row() {
        let w = workload_by_name("compress").unwrap();
        let mut opts = tuner_options(2, 1);
        opts.max_evaluations = Some(10);
        let row = tune_program(w, opts, &TelemetryBus::disabled());
        assert!(row.tuned_secs <= row.default_secs);
        assert!(
            (row.improvement - stats::improvement_percent(row.default_secs, row.tuned_secs)).abs()
                < 1e-9
        );
    }

    #[test]
    fn improvement_at_is_monotone_in_time() {
        let w = workload_by_name("serial").unwrap();
        let opts = tuner_options(5, 2);
        let row = tune_program(w, opts, &TelemetryBus::disabled());
        let early = improvement_at(&row, 1.0);
        let late = improvement_at(&row, 5.0);
        assert!(late >= early);
        assert!(improvement_at(&row, 0.0) >= 0.0);
    }

    #[test]
    fn render_table_contains_all_programs() {
        let w = workload_by_name("compress").unwrap();
        let mut opts = tuner_options(1, 3);
        opts.max_evaluations = Some(5);
        let rows = vec![tune_program(w, opts, &TelemetryBus::disabled())];
        let s = render_suite_table("t", &rows);
        assert!(s.contains("compress"));
        assert!(s.contains("average improvement"));
        // Pipeline features off: the published five-column layout.
        assert!(!s.contains("aborted"));
    }

    #[test]
    fn suite_table_grows_pipeline_columns_when_active() {
        let w = workload_by_name("compress").unwrap();
        let mut opts = tuner_options(1, 3);
        opts.max_evaluations = Some(5);
        let mut rows = vec![tune_program(w, opts, &TelemetryBus::disabled())];
        rows[0].cache_hits = 3;
        rows[0].aborted = 1;
        let s = render_suite_table("t", &rows);
        assert!(s.contains("distinct"));
        assert!(s.contains("hits"));
        assert!(s.contains("aborted"));
    }
}
