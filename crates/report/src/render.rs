//! Deterministic renderers: Markdown, self-contained HTML, and JSON.
//!
//! All three are pure functions of the [`Report`] value. Floats are
//! printed with fixed precision (`{:.3}` seconds, `{:.1}` percent,
//! `{:.2}` SVG coordinates), so a given input directory always renders
//! to the same bytes — the property the CI report-smoke job `cmp`s.

use std::fmt::Write as _;

use jtune_util::json::{self, JsonObject};

use crate::load::Report;
use crate::summary::{SessionSummary, TechniqueStats};

/// Flag-impact rows shown per session (the table is sorted by trial
/// count, so the cut keeps the most-explored flags).
const FLAG_ROWS: usize = 20;

fn secs(v: f64) -> String {
    format!("{v:.3}")
}

fn opt_secs(v: Option<f64>) -> String {
    v.map_or_else(|| "—".to_string(), secs)
}

fn pct(v: f64) -> String {
    format!("{v:+.1}%")
}

/// Flag-impact rows in display order: most-tried first, ties by name.
fn flag_rows(s: &SessionSummary) -> Vec<&crate::summary::FlagImpact> {
    let mut rows: Vec<_> = s.flags.iter().collect();
    rows.sort_by(|a, b| b.trials.cmp(&a.trials).then(a.flag.cmp(&b.flag)));
    rows
}

/// Render the report as Markdown.
pub fn to_markdown(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# jtune report");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "Input: `{}` — {} session(s)",
        report.title,
        report.sessions.len()
    );
    let _ = writeln!(out);
    let _ = writeln!(out, "## Overview");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "| session | program | technique | default (s) | best (s) | improvement | evals | spent (s) |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|---|---|");
    for s in &report.sessions {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            s.label,
            s.program,
            if s.technique.is_empty() {
                "—"
            } else {
                &s.technique
            },
            secs(s.default_secs),
            secs(s.best_secs),
            pct(s.improvement_percent),
            s.counters.evaluations,
            secs(s.spent_secs),
        );
    }
    if let Some(d) = &report.daemon {
        let _ = writeln!(out);
        let _ = writeln!(out, "## Daemon");
        let _ = writeln!(out);
        let _ = writeln!(out, "| counter | value |");
        let _ = writeln!(out, "|---|---|");
        for (name, v) in d.rows() {
            let _ = writeln!(out, "| {name} | {v} |");
        }
    }
    for s in &report.sessions {
        let _ = writeln!(out);
        let _ = writeln!(out, "## {}", s.label);
        let _ = writeln!(out);
        let seed = s.seed.map_or_else(|| "—".to_string(), |v| v.to_string());
        let _ = writeln!(
            out,
            "Program `{}`, seed {}, budget {} s; best delta: {}",
            s.program,
            seed,
            secs(s.budget_secs),
            if s.best_delta.is_empty() {
                "(default configuration)".to_string()
            } else {
                format!("`{}`", s.best_delta.join(" "))
            }
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "### Convergence");
        let _ = writeln!(out);
        let _ = writeln!(out, "| eval | spent (s) | best (s) |");
        let _ = writeln!(out, "|---|---|---|");
        for p in &s.convergence {
            let _ = writeln!(
                out,
                "| {} | {} | {} |",
                p.index,
                secs(p.spent_secs),
                secs(p.best_secs)
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "### Techniques");
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "| technique | proposals | failures | wins | reward (s) | best (s) |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|");
        for t in &s.techniques {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {} |",
                t.name,
                t.proposals,
                t.failures,
                t.wins,
                secs(t.reward_secs),
                opt_secs(t.best_secs),
            );
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "### Counters");
        let _ = writeln!(out);
        let _ = writeln!(out, "| counter | value |");
        let _ = writeln!(out, "|---|---|");
        let c = &s.counters;
        for (name, v) in [
            ("evaluations", c.evaluations),
            ("failures", c.failures),
            ("cache hits", c.cache_hits),
            ("duplicates suppressed", c.suppressed),
            ("racing aborts", c.aborted),
            ("retries", c.retried),
            ("quarantined", c.quarantined),
            ("screened", c.screened),
            ("model fits", c.model_fits),
            ("checkpoints", c.checkpoints),
        ] {
            let _ = writeln!(out, "| {name} | {v} |");
        }
        let _ = writeln!(out, "| budget saved (s) | {} |", secs(c.saved_secs));
        let _ = writeln!(out);
        let _ = writeln!(out, "### Flag impact");
        let _ = writeln!(out);
        let rows = flag_rows(s);
        if rows.is_empty() {
            let _ = writeln!(out, "No `-XX:` flags appeared in any trial delta.");
        } else {
            let _ = writeln!(
                out,
                "| flag | trials | ok | best (s) | mean (s) | in best |"
            );
            let _ = writeln!(out, "|---|---|---|---|---|---|");
            for f in rows.iter().take(FLAG_ROWS) {
                let _ = writeln!(
                    out,
                    "| {} | {} | {} | {} | {} | {} |",
                    f.flag,
                    f.trials,
                    f.successes,
                    opt_secs(f.best_secs),
                    opt_secs(f.mean_secs),
                    if f.in_best > 0 { "yes" } else { "" },
                );
            }
            if rows.len() > FLAG_ROWS {
                let _ = writeln!(
                    out,
                    "\n({} more flags omitted; use `--format json` for the full table)",
                    rows.len() - FLAG_ROWS
                );
            }
        }
    }
    out
}

fn html_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Inline SVG of a session's convergence curve (step-after polyline).
/// Returns an empty string when there are fewer than two points.
fn convergence_svg(s: &SessionSummary) -> String {
    const W: f64 = 640.0;
    const H: f64 = 180.0;
    const PAD: f64 = 8.0;
    if s.convergence.len() < 2 {
        return String::new();
    }
    let x_max = s
        .convergence
        .last()
        .map(|p| p.spent_secs)
        .unwrap_or(1.0)
        .max(1e-9);
    let y_min = s
        .convergence
        .iter()
        .map(|p| p.best_secs)
        .fold(f64::INFINITY, f64::min);
    let y_max = s
        .convergence
        .iter()
        .map(|p| p.best_secs)
        .fold(f64::NEG_INFINITY, f64::max);
    let y_span = (y_max - y_min).max(1e-9);
    let x = |t: f64| PAD + (W - 2.0 * PAD) * (t / x_max);
    let y = |v: f64| PAD + (H - 2.0 * PAD) * (1.0 - (v - y_min) / y_span);
    let mut points = String::new();
    let mut last_y = y(s.convergence[0].best_secs);
    for (i, p) in s.convergence.iter().enumerate() {
        let px = x(p.spent_secs);
        let py = y(p.best_secs);
        if i > 0 {
            // Step: hold the previous best until this evaluation landed.
            let _ = write!(points, " {px:.2},{last_y:.2}");
        }
        let _ = write!(points, " {px:.2},{py:.2}");
        last_y = py;
    }
    format!(
        "<svg viewBox=\"0 0 {W} {H}\" role=\"img\" aria-label=\"convergence\">\
<polyline fill=\"none\" stroke=\"#2a6\" stroke-width=\"2\" points=\"{}\"/>\
<text x=\"{PAD}\" y=\"{:.2}\" class=\"axis\">{} s</text>\
<text x=\"{PAD}\" y=\"{:.2}\" class=\"axis\">{} s</text>\
</svg>",
        points.trim_start(),
        PAD + 12.0,
        secs(y_max),
        H - PAD - 2.0,
        secs(y_min),
    )
}

/// Render the report as one self-contained HTML page: inline CSS,
/// inline SVG, no external assets.
pub fn to_html(report: &Report) -> String {
    // The Markdown tables carry exactly the data the page needs; rather
    // than duplicating every table twice, render them into <pre> blocks
    // and add the SVG convergence charts HTML can express and Markdown
    // cannot.
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    let _ = writeln!(
        out,
        "<title>jtune report — {}</title>",
        html_escape(&report.title)
    );
    out.push_str(
        "<style>\n\
body{font:14px/1.45 system-ui,sans-serif;max-width:60rem;margin:2rem auto;padding:0 1rem;color:#123}\n\
h1,h2{border-bottom:1px solid #ccd;padding-bottom:.2rem}\n\
table{border-collapse:collapse;margin:.6rem 0}\n\
td,th{border:1px solid #ccd;padding:.2rem .6rem;text-align:right}\n\
td:first-child,th:first-child{text-align:left}\n\
svg{width:100%;height:auto;background:#f6f8fa;border:1px solid #ccd}\n\
svg .axis{font:10px system-ui,sans-serif;fill:#567}\n\
code{background:#f0f2f5;padding:0 .2rem}\n\
</style>\n</head>\n<body>\n",
    );
    let _ = writeln!(out, "<h1>jtune report</h1>");
    let _ = writeln!(
        out,
        "<p>Input: <code>{}</code> — {} session(s)</p>",
        html_escape(&report.title),
        report.sessions.len()
    );
    let _ = writeln!(out, "<h2>Overview</h2>");
    out.push_str("<table><tr><th>session</th><th>program</th><th>default (s)</th><th>best (s)</th><th>improvement</th><th>evals</th></tr>\n");
    for s in &report.sessions {
        let _ = writeln!(
            out,
            "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            html_escape(&s.label),
            html_escape(&s.program),
            secs(s.default_secs),
            secs(s.best_secs),
            pct(s.improvement_percent),
            s.counters.evaluations,
        );
    }
    out.push_str("</table>\n");
    if let Some(d) = &report.daemon {
        let _ = writeln!(out, "<h2>Daemon</h2>");
        out.push_str("<table><tr><th>counter</th><th>value</th></tr>\n");
        for (name, v) in d.rows() {
            let _ = writeln!(out, "<tr><td>{name}</td><td>{v}</td></tr>");
        }
        out.push_str("</table>\n");
    }
    for s in &report.sessions {
        let _ = writeln!(out, "<h2>{}</h2>", html_escape(&s.label));
        let _ = writeln!(
            out,
            "<p>Program <code>{}</code>, best delta: <code>{}</code></p>",
            html_escape(&s.program),
            if s.best_delta.is_empty() {
                "(default configuration)".to_string()
            } else {
                html_escape(&s.best_delta.join(" "))
            }
        );
        let svg = convergence_svg(s);
        if !svg.is_empty() {
            let _ = writeln!(out, "<h3>Convergence</h3>");
            let _ = writeln!(out, "{svg}");
        }
        let _ = writeln!(out, "<h3>Techniques</h3>");
        out.push_str("<table><tr><th>technique</th><th>proposals</th><th>failures</th><th>wins</th><th>reward (s)</th><th>best (s)</th></tr>\n");
        for t in &s.techniques {
            let _ = writeln!(
                out,
                "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                html_escape(&t.name),
                t.proposals,
                t.failures,
                t.wins,
                secs(t.reward_secs),
                opt_secs(t.best_secs),
            );
        }
        out.push_str("</table>\n");
        let _ = writeln!(out, "<h3>Counters</h3>");
        let c = &s.counters;
        out.push_str("<table><tr><th>counter</th><th>value</th></tr>\n");
        for (name, v) in [
            ("evaluations", c.evaluations),
            ("failures", c.failures),
            ("cache hits", c.cache_hits),
            ("duplicates suppressed", c.suppressed),
            ("racing aborts", c.aborted),
            ("retries", c.retried),
            ("quarantined", c.quarantined),
            ("screened", c.screened),
            ("model fits", c.model_fits),
            ("checkpoints", c.checkpoints),
        ] {
            let _ = writeln!(out, "<tr><td>{name}</td><td>{v}</td></tr>");
        }
        let _ = writeln!(
            out,
            "<tr><td>budget saved (s)</td><td>{}</td></tr>",
            secs(c.saved_secs)
        );
        out.push_str("</table>\n");
        let _ = writeln!(out, "<h3>Flag impact</h3>");
        let rows = flag_rows(s);
        if rows.is_empty() {
            out.push_str("<p>No <code>-XX:</code> flags appeared in any trial delta.</p>\n");
        } else {
            out.push_str("<table><tr><th>flag</th><th>trials</th><th>ok</th><th>best (s)</th><th>mean (s)</th><th>in best</th></tr>\n");
            for f in rows.iter().take(FLAG_ROWS) {
                let _ = writeln!(
                    out,
                    "<tr><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
                    html_escape(&f.flag),
                    f.trials,
                    f.successes,
                    opt_secs(f.best_secs),
                    opt_secs(f.mean_secs),
                    if f.in_best > 0 { "yes" } else { "" },
                );
            }
            out.push_str("</table>\n");
        }
    }
    out.push_str("</body>\n</html>\n");
    out
}

fn technique_json(t: &TechniqueStats) -> String {
    JsonObject::new()
        .str("name", &t.name)
        .u64("proposals", t.proposals)
        .u64("failures", t.failures)
        .u64("wins", t.wins)
        .f64("reward_secs", t.reward_secs)
        .opt_f64("best_secs", t.best_secs)
        .finish()
}

fn session_json(s: &SessionSummary) -> String {
    let convergence: Vec<String> = s
        .convergence
        .iter()
        .map(|p| {
            JsonObject::new()
                .u64("index", p.index)
                .f64("spent_secs", p.spent_secs)
                .f64("best_secs", p.best_secs)
                .finish()
        })
        .collect();
    let techniques: Vec<String> = s.techniques.iter().map(technique_json).collect();
    let flags: Vec<String> = s
        .flags
        .iter()
        .map(|f| {
            JsonObject::new()
                .str("flag", &f.flag)
                .u64("trials", f.trials)
                .u64("successes", f.successes)
                .opt_f64("best_secs", f.best_secs)
                .opt_f64("mean_secs", f.mean_secs)
                .bool("in_best", f.in_best > 0)
                .finish()
        })
        .collect();
    let c = &s.counters;
    let counters = JsonObject::new()
        .u64("evaluations", c.evaluations)
        .u64("failures", c.failures)
        .u64("cache_hits", c.cache_hits)
        .u64("suppressed", c.suppressed)
        .u64("aborted", c.aborted)
        .u64("retried", c.retried)
        .u64("quarantined", c.quarantined)
        .u64("screened", c.screened)
        .u64("model_fits", c.model_fits)
        .u64("checkpoints", c.checkpoints)
        .f64("saved_secs", c.saved_secs)
        .finish();
    let mut o = JsonObject::new()
        .str("label", &s.label)
        .str("program", &s.program)
        .str("technique", &s.technique)
        .f64("budget_secs", s.budget_secs);
    o = match s.seed {
        Some(seed) => o.u64("seed", seed),
        None => o.raw("seed", "null"),
    };
    o.f64("default_secs", s.default_secs)
        .f64("best_secs", s.best_secs)
        .f64("improvement_percent", s.improvement_percent)
        .f64("spent_secs", s.spent_secs)
        .str_array("best_delta", &s.best_delta)
        .raw("convergence", &json::array_of(&convergence))
        .raw("techniques", &json::array_of(&techniques))
        .raw("counters", &counters)
        .raw("flags", &json::array_of(&flags))
        .finish()
}

/// Render the report as one JSON object.
pub fn to_json(report: &Report) -> String {
    let sessions: Vec<String> = report.sessions.iter().map(session_json).collect();
    // Keys match the daemon's own `server-metrics.json` snapshot.
    let daemon = report.daemon.as_ref().map_or_else(
        || "null".to_string(),
        |d| {
            JsonObject::new()
                .u64("connections_rejected", d.connections_rejected)
                .u64("frames_rejected", d.frames_rejected)
                .u64("clients_retried", d.clients_retried)
                .u64("workers_reconnected", d.workers_reconnected)
                .u64("workers_registered", d.workers_registered)
                .u64("trials_leased", d.trials_leased)
                .u64("leases_expired", d.leases_expired)
                .finish()
        },
    );
    JsonObject::new()
        .str("title", &report.title)
        .raw("sessions", &json::array_of(&sessions))
        .raw("daemon", &daemon)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::summary::{ConvergencePoint, FlagImpact, SessionCounters};

    fn sample() -> Report {
        Report {
            title: "e1_specjvm".into(),
            sessions: vec![SessionSummary {
                label: "compress".into(),
                program: "compress".into(),
                technique: "ensemble".into(),
                budget_secs: 600.0,
                seed: Some(7),
                default_secs: 10.0,
                best_secs: 8.0,
                improvement_percent: 25.0,
                spent_secs: 28.0,
                best_delta: vec!["-XX:+UseG1GC".into()],
                convergence: vec![
                    ConvergencePoint {
                        index: 0,
                        spent_secs: 10.0,
                        best_secs: 10.0,
                    },
                    ConvergencePoint {
                        index: 3,
                        spent_secs: 28.0,
                        best_secs: 8.0,
                    },
                ],
                techniques: vec![TechniqueStats {
                    name: "random".into(),
                    proposals: 2,
                    failures: 0,
                    wins: 1,
                    reward_secs: 2.0,
                    best_secs: Some(8.0),
                }],
                counters: SessionCounters {
                    evaluations: 4,
                    cache_hits: 1,
                    ..SessionCounters::default()
                },
                flags: vec![FlagImpact {
                    flag: "UseG1GC".into(),
                    trials: 2,
                    successes: 2,
                    best_secs: Some(8.0),
                    mean_secs: Some(8.5),
                    in_best: 1,
                }],
            }],
            daemon: None,
        }
    }

    fn sample_with_daemon() -> Report {
        let mut r = sample();
        r.daemon = Some(crate::load::DaemonCounters {
            connections_rejected: 3,
            frames_rejected: 2,
            clients_retried: 5,
            workers_reconnected: 1,
            workers_registered: 4,
            trials_leased: 40,
            leases_expired: 2,
        });
        r
    }

    #[test]
    fn markdown_has_all_required_sections() {
        let md = to_markdown(&sample());
        for section in [
            "# jtune report",
            "## Overview",
            "### Convergence",
            "### Techniques",
            "### Counters",
            "### Flag impact",
        ] {
            assert!(md.contains(section), "missing {section}:\n{md}");
        }
        assert!(md.contains("| compress |"));
        assert!(md.contains("UseG1GC"));
        assert!(md.contains("+25.0%"));
    }

    #[test]
    fn html_is_self_contained() {
        let html = to_html(&sample());
        assert!(html.starts_with("<!DOCTYPE html>"));
        assert!(html.contains("<style>"));
        assert!(html.contains("<svg"), "no inline convergence SVG");
        assert!(html.contains("</html>"));
        for forbidden in ["<script", "http://", "https://", "<link", "<img"] {
            assert!(!html.contains(forbidden), "external asset: {forbidden}");
        }
    }

    #[test]
    fn html_escapes_markup_in_labels() {
        let mut r = sample();
        r.sessions[0].label = "a<b&c".into();
        let html = to_html(&r);
        assert!(html.contains("a&lt;b&amp;c"));
        assert!(!html.contains("a<b&c"));
    }

    #[test]
    fn json_round_trips_through_parser() {
        let j = to_json(&sample());
        let v = json::parse(&j).expect("valid JSON");
        assert_eq!(
            v.get("title").and_then(jtune_util::json::JsonValue::as_str),
            Some("e1_specjvm")
        );
        let sessions = v
            .get("sessions")
            .and_then(jtune_util::json::JsonValue::as_array)
            .unwrap();
        assert_eq!(
            sessions[0]
                .get("counters")
                .and_then(|c| c.get("evaluations"))
                .and_then(jtune_util::json::JsonValue::as_u64),
            Some(4)
        );
    }

    #[test]
    fn daemon_counters_render_in_every_format() {
        let r = sample_with_daemon();
        let md = to_markdown(&r);
        assert!(md.contains("## Daemon"), "{md}");
        assert!(md.contains("| connections rejected | 3 |"), "{md}");
        assert!(md.contains("| worker reconnects | 1 |"), "{md}");
        let html = to_html(&r);
        assert!(html.contains("<h2>Daemon</h2>"), "{html}");
        assert!(html.contains("<td>frames rejected</td><td>2</td>"), "{html}");
        let v = json::parse(&to_json(&r)).expect("valid JSON");
        assert_eq!(
            v.get("daemon")
                .and_then(|d| d.get("clients_retried"))
                .and_then(jtune_util::json::JsonValue::as_u64),
            Some(5)
        );

        // Without a daemon snapshot the section stays out entirely.
        let bare = sample();
        assert!(!to_markdown(&bare).contains("Daemon"));
        assert!(!to_html(&bare).contains("Daemon"));
        let v = json::parse(&to_json(&bare)).expect("valid JSON");
        assert!(v.get("daemon").map(|d| d.is_null()).unwrap_or(false));
    }

    #[test]
    fn renderers_are_deterministic() {
        let r = sample();
        assert_eq!(to_markdown(&r), to_markdown(&r));
        assert_eq!(to_html(&r), to_html(&r));
        assert_eq!(to_json(&r), to_json(&r));
    }
}
