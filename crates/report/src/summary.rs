//! The analytics model: one [`SessionSummary`] per tuning session,
//! built by replaying a serialised trace ([`SessionSummary::from_trace`])
//! or by re-deriving the same statistics from an archival
//! [`SessionRecord`] ([`SessionSummary::from_record`]).
//!
//! Every derivation here is a pure function of the input bytes —
//! grouping uses `BTreeMap`, floats are carried as parsed — so the same
//! input directory always yields the same summary, and the renderers on
//! top of it the same report bytes.

use std::collections::BTreeMap;

use jtune_harness::SessionRecord;
use jtune_util::json::{self, JsonValue};

/// One point of a session's convergence curve: the best score known
/// after an evaluation finished.
#[derive(Clone, Debug, PartialEq)]
pub struct ConvergencePoint {
    /// Evaluation index (0 = the default configuration).
    pub index: u64,
    /// Virtual tuning-clock seconds spent when the evaluation finished.
    pub spent_secs: f64,
    /// Best score found so far, seconds.
    pub best_secs: f64,
}

/// Per-technique proposal statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TechniqueStats {
    /// Technique name (as attributed in the trace; ensemble arms are
    /// individual).
    pub name: String,
    /// Candidates this technique proposed.
    pub proposals: u64,
    /// Proposals that failed to run.
    pub failures: u64,
    /// Proposals that improved on the best-so-far.
    pub wins: u64,
    /// Total best-score improvement attributed, seconds (the bandit's
    /// reward signal, reconstructed).
    pub reward_secs: f64,
    /// Best score this technique proposed (`None` if every proposal
    /// failed).
    pub best_secs: Option<f64>,
}

/// Pipeline and fault-tolerance counters aggregated over a session.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SessionCounters {
    /// Candidates evaluated (trials charged, including cache hits).
    pub evaluations: u64,
    /// Trials served from the trial cache.
    pub cache_hits: u64,
    /// Within-batch duplicate proposals suppressed.
    pub suppressed: u64,
    /// Trials abandoned early by racing.
    pub aborted: u64,
    /// Transient-failure repeats recovered by the retry policy.
    pub retried: u64,
    /// Configurations quarantined for failing deterministically.
    pub quarantined: u64,
    /// Over-proposed candidates the surrogate screened out.
    pub screened: u64,
    /// Surrogate refits performed.
    pub model_fits: u64,
    /// Journal checkpoints written.
    pub checkpoints: u64,
    /// Failed evaluations.
    pub failures: u64,
    /// Budget the cache, dedup and racing avoided spending, seconds.
    pub saved_secs: f64,
}

/// Aggregated effect of one JVM flag across a session's trials.
#[derive(Clone, Debug, PartialEq)]
pub struct FlagImpact {
    /// Flag name (parsed out of `-XX:±Name` / `-XX:Name=value`).
    pub flag: String,
    /// Trials whose delta touched the flag.
    pub trials: u64,
    /// Successful trials among those.
    pub successes: u64,
    /// Best score among the successful trials, seconds.
    pub best_secs: Option<f64>,
    /// Mean score among the successful trials, seconds.
    pub mean_secs: Option<f64>,
    /// Appearances in the final best configuration's delta (0 or 1).
    pub in_best: u64,
}

/// Everything the report knows about one tuning session.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionSummary {
    /// Display label (trace file stem, session ID, or program name).
    pub label: String,
    /// Program tuned.
    pub program: String,
    /// Search technique option the session ran with.
    pub technique: String,
    /// Tuning budget, virtual seconds (0 when the source didn't record
    /// it).
    pub budget_secs: f64,
    /// Master seed (`None` when the source didn't record it).
    pub seed: Option<u64>,
    /// Default-configuration score, seconds.
    pub default_secs: f64,
    /// Best score found, seconds.
    pub best_secs: f64,
    /// Headline improvement, percent.
    pub improvement_percent: f64,
    /// Budget spent, virtual seconds.
    pub spent_secs: f64,
    /// Best configuration's flag delta.
    pub best_delta: Vec<String>,
    /// Best-so-far curve, one point per scored evaluation.
    pub convergence: Vec<ConvergencePoint>,
    /// Per-technique statistics, sorted by technique name.
    pub techniques: Vec<TechniqueStats>,
    /// Pipeline counters.
    pub counters: SessionCounters,
    /// Per-flag impact rows, sorted by flag name.
    pub flags: Vec<FlagImpact>,
}

/// Parse the flag name out of a `-XX:` command-line argument:
/// `-XX:+UseG1GC` / `-XX:-UseG1GC` → `UseG1GC`,
/// `-XX:MaxHeapSize=4g` → `MaxHeapSize`. Returns `None` for anything
/// else.
pub fn flag_name(arg: &str) -> Option<&str> {
    let rest = arg.strip_prefix("-XX:")?;
    let rest = rest.strip_prefix(['+', '-']).unwrap_or(rest);
    let name = rest.split('=').next()?;
    (!name.is_empty()).then_some(name)
}

/// Streaming accumulator shared by the trace and record paths; the two
/// sources describe the same trials, so deriving the statistics in one
/// place keeps their reports consistent.
#[derive(Default)]
struct Accumulator {
    convergence: Vec<ConvergencePoint>,
    techniques: BTreeMap<String, TechniqueStats>,
    flags: BTreeMap<String, FlagImpact>,
    counters: SessionCounters,
    best_so_far: Option<f64>,
    default_secs: Option<f64>,
}

impl Accumulator {
    /// Fold one scored trial in evaluation order.
    fn trial(
        &mut self,
        index: u64,
        spent_secs: f64,
        score_secs: Option<f64>,
        technique: &str,
        delta: &[String],
    ) {
        self.counters.evaluations += 1;
        let t = self
            .techniques
            .entry(technique.to_string())
            .or_insert_with(|| TechniqueStats {
                name: technique.to_string(),
                ..TechniqueStats::default()
            });
        t.proposals += 1;
        match score_secs {
            None => {
                t.failures += 1;
                self.counters.failures += 1;
            }
            Some(s) => {
                if t.best_secs.is_none_or(|b| s < b) {
                    t.best_secs = Some(s);
                }
                if index == 0 && self.default_secs.is_none() {
                    self.default_secs = Some(s);
                }
                match self.best_so_far {
                    Some(best) if s >= best => {}
                    prev => {
                        if let Some(best) = prev {
                            t.wins += 1;
                            t.reward_secs += best - s;
                        }
                        self.best_so_far = Some(s);
                        self.convergence.push(ConvergencePoint {
                            index,
                            spent_secs,
                            best_secs: s,
                        });
                    }
                }
            }
        }
        for arg in delta {
            let Some(name) = flag_name(arg) else { continue };
            let f = self
                .flags
                .entry(name.to_string())
                .or_insert_with(|| FlagImpact {
                    flag: name.to_string(),
                    trials: 0,
                    successes: 0,
                    best_secs: None,
                    mean_secs: None,
                    in_best: 0,
                });
            f.trials += 1;
            if let Some(s) = score_secs {
                f.successes += 1;
                if f.best_secs.is_none_or(|b| s < b) {
                    f.best_secs = Some(s);
                }
                // mean_secs holds the running sum until finish().
                *f.mean_secs.get_or_insert(0.0) += s;
            }
        }
    }

    fn finish(
        mut self,
        best_delta: &[String],
    ) -> (
        Vec<ConvergencePoint>,
        Vec<TechniqueStats>,
        Vec<FlagImpact>,
        SessionCounters,
    ) {
        for arg in best_delta {
            if let Some(name) = flag_name(arg) {
                if let Some(f) = self.flags.get_mut(name) {
                    f.in_best = 1;
                }
            }
        }
        let flags = self
            .flags
            .into_values()
            .map(|mut f| {
                f.mean_secs = f
                    .mean_secs
                    .map(|sum| sum / f.successes.max(1) as f64)
                    .filter(|_| f.successes > 0);
                f
            })
            .collect();
        (
            self.convergence,
            self.techniques.into_values().collect(),
            flags,
            self.counters,
        )
    }
}

fn str_vec(v: &JsonValue, key: &str) -> Vec<String> {
    v.get(key)
        .and_then(JsonValue::as_array)
        .map(|a| {
            a.iter()
                .filter_map(|x| x.as_str().map(str::to_string))
                .collect()
        })
        .unwrap_or_default()
}

impl SessionSummary {
    /// Replay one serialised JSONL trace into a summary. `label` names
    /// the session in the report (usually the trace file stem).
    pub fn from_trace(label: &str, trace: &str) -> Result<SessionSummary, String> {
        let mut acc = Accumulator::default();
        let mut program = String::new();
        let mut technique = String::new();
        let mut budget_secs = 0.0;
        let mut seed = None;
        let mut spent_secs = 0.0;
        let mut finished: Option<(f64, f64, f64, u64, f64, Vec<String>)> = None;
        let mut saw_session = false;
        for (n, line) in trace.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("{label}: line {}: {e}", n + 1))?;
            let kind = v
                .get("type")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("{label}: line {}: no event type", n + 1))?;
            let f = |key: &str| v.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
            let u = |key: &str| v.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
            match kind {
                "SessionStarted" => {
                    saw_session = true;
                    program = v
                        .get("program")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string();
                    technique = v
                        .get("technique")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_default()
                        .to_string();
                    budget_secs = f("budget_secs");
                    seed = v.get("seed").and_then(JsonValue::as_u64);
                }
                "TrialEvaluated" => {
                    spent_secs = f("budget_spent_secs");
                    acc.trial(
                        u("index"),
                        spent_secs,
                        v.get("score_secs").and_then(JsonValue::as_f64),
                        v.get("technique")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("unknown"),
                        &str_vec(&v, "delta"),
                    );
                }
                "CacheHit" => {
                    acc.counters.cache_hits += 1;
                    acc.counters.saved_secs += f("saved_secs");
                }
                "DuplicateSuppressed" => acc.counters.suppressed += 1,
                "TrialAborted" => {
                    acc.counters.aborted += 1;
                    acc.counters.saved_secs += f("saved_secs");
                }
                "TrialRetried" => acc.counters.retried += 1,
                "Quarantined" => acc.counters.quarantined += 1,
                "CandidateScreened" => acc.counters.screened += 1,
                "ModelFit" if v.get("refit").and_then(JsonValue::as_bool) == Some(true) => {
                    acc.counters.model_fits += 1;
                }
                "CheckpointWritten" => acc.counters.checkpoints += 1,
                "SessionFinished" => {
                    finished = Some((
                        f("default_secs"),
                        f("best_secs"),
                        f("improvement_percent"),
                        u("evaluations"),
                        f("spent_secs"),
                        str_vec(&v, "best_delta"),
                    ));
                }
                // Worker-level and informational events carry nothing the
                // summary needs beyond what the session-level stream has.
                _ => {}
            }
        }
        if !saw_session {
            return Err(format!(
                "{label}: no SessionStarted event — not a trace file"
            ));
        }
        let (default_secs, best_secs, improvement_percent, evaluations, final_spent, best_delta) =
            finished.unwrap_or_else(|| {
                // Truncated trace (killed session): report what the
                // replay reconstructed.
                let default = acc.default_secs.unwrap_or(0.0);
                let best = acc.best_so_far.unwrap_or(default);
                (
                    default,
                    best,
                    jtune_util::stats::improvement_percent(default, best),
                    acc.counters.evaluations,
                    spent_secs,
                    Vec::new(),
                )
            });
        let (convergence, techniques, flags, mut counters) = acc.finish(&best_delta);
        counters.evaluations = counters.evaluations.max(evaluations);
        Ok(SessionSummary {
            label: label.to_string(),
            program,
            technique,
            budget_secs,
            seed,
            default_secs,
            best_secs,
            improvement_percent,
            spent_secs: final_spent,
            best_delta,
            convergence,
            techniques,
            counters,
            flags,
        })
    }

    /// Derive a summary from an archival [`SessionRecord`] (the TSV /
    /// `--json` surface). The record's trial log carries less than the
    /// trace (no screening or retry events), so the counters come from
    /// the record's own fields.
    pub fn from_record(label: &str, record: &SessionRecord) -> SessionSummary {
        let mut acc = Accumulator::default();
        for t in &record.trials {
            acc.trial(t.index, t.at_secs, t.score_secs, &t.technique, &t.delta);
        }
        let (convergence, techniques, flags, mut counters) = acc.finish(&record.best_delta);
        counters.evaluations = record.evaluations;
        counters.cache_hits = record.cache_hits;
        counters.suppressed = record.suppressed;
        counters.aborted = record.aborted;
        counters.retried = record.retried;
        counters.quarantined = record.quarantined;
        counters.screened = record.screened;
        counters.model_fits = record.model_fits;
        counters.saved_secs = record.saved_secs;
        let spent_secs = record.trials.last().map_or(0.0, |t| t.at_secs);
        SessionSummary {
            label: label.to_string(),
            program: record.program.clone(),
            technique: String::new(),
            budget_secs: record.budget_mins * 60.0,
            seed: None,
            default_secs: record.default_secs,
            best_secs: record.best_secs,
            improvement_percent: record.improvement_percent(),
            spent_secs,
            best_delta: record.best_delta.clone(),
            convergence,
            techniques,
            counters,
            flags,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jtune_harness::TrialRecord;

    fn lines(events: &[&str]) -> String {
        let mut s = events.join("\n");
        s.push('\n');
        s
    }

    fn started() -> &'static str {
        r#"{"type":"SessionStarted","program":"compress","executor":"sim:compress","technique":"ensemble","manipulator":"hierarchical","budget_secs":600,"seed":7,"batch":8,"repeats":3}"#
    }

    #[test]
    fn flag_names_parse_all_xx_shapes() {
        assert_eq!(flag_name("-XX:+UseG1GC"), Some("UseG1GC"));
        assert_eq!(flag_name("-XX:-UseG1GC"), Some("UseG1GC"));
        assert_eq!(flag_name("-XX:MaxHeapSize=4g"), Some("MaxHeapSize"));
        assert_eq!(flag_name("-Xmx4g"), None);
        assert_eq!(flag_name("plain"), None);
    }

    #[test]
    fn replay_builds_convergence_techniques_and_flags() {
        let trace = lines(&[
            started(),
            r#"{"type":"TrialEvaluated","index":0,"technique":"default","delta":[],"repeat_secs":[10.0],"score_secs":10.0,"cost_secs":10.0,"budget_spent_secs":10.0,"gc_pause_total_ms":null,"jit_compile_ms":null,"error":null}"#,
            r#"{"type":"TrialEvaluated","index":1,"technique":"random","delta":["-XX:+UseG1GC"],"repeat_secs":[9.0],"score_secs":9.0,"cost_secs":9.0,"budget_spent_secs":19.0,"gc_pause_total_ms":null,"jit_compile_ms":null,"error":null}"#,
            r#"{"type":"BestImproved","index":1,"score_secs":9.0,"improvement_percent":11.1,"delta":["-XX:+UseG1GC"]}"#,
            r#"{"type":"TrialEvaluated","index":2,"technique":"anneal","delta":["-XX:MaxHeapSize=16m"],"repeat_secs":[],"score_secs":null,"cost_secs":1.0,"budget_spent_secs":20.0,"gc_pause_total_ms":null,"jit_compile_ms":null,"error":"oom","error_kind":"oom"}"#,
            r#"{"type":"TrialEvaluated","index":3,"technique":"random","delta":["-XX:+UseG1GC","-XX:MaxHeapSize=4g"],"repeat_secs":[8.0],"score_secs":8.0,"cost_secs":8.0,"budget_spent_secs":28.0,"gc_pause_total_ms":null,"jit_compile_ms":null,"error":null}"#,
            r#"{"type":"SessionFinished","program":"compress","default_secs":10.0,"best_secs":8.0,"improvement_percent":25.0,"evaluations":4,"spent_secs":28.0,"best_delta":["-XX:+UseG1GC","-XX:MaxHeapSize=4g"]}"#,
        ]);
        let s = SessionSummary::from_trace("t", &trace).expect("replay");
        assert_eq!(s.program, "compress");
        assert_eq!(s.seed, Some(7));
        assert_eq!(s.default_secs, 10.0);
        assert_eq!(s.best_secs, 8.0);
        assert_eq!(s.counters.evaluations, 4);
        assert_eq!(s.counters.failures, 1);
        // Convergence: default, then 9.0, then 8.0.
        let bests: Vec<f64> = s.convergence.iter().map(|p| p.best_secs).collect();
        assert_eq!(bests, vec![10.0, 9.0, 8.0]);
        // Techniques sorted by name: anneal, default, random.
        let names: Vec<&str> = s.techniques.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["anneal", "default", "random"]);
        let random = &s.techniques[2];
        assert_eq!(random.proposals, 2);
        assert_eq!(random.wins, 2);
        assert!((random.reward_secs - 2.0).abs() < 1e-12);
        let anneal = &s.techniques[0];
        assert_eq!(anneal.failures, 1);
        assert_eq!(anneal.best_secs, None);
        // Flags sorted by name; MaxHeapSize saw one failure + one success.
        let names: Vec<&str> = s.flags.iter().map(|f| f.flag.as_str()).collect();
        assert_eq!(names, vec!["MaxHeapSize", "UseG1GC"]);
        let heap = &s.flags[0];
        assert_eq!(heap.trials, 2);
        assert_eq!(heap.successes, 1);
        assert_eq!(heap.best_secs, Some(8.0));
        assert_eq!(heap.in_best, 1);
        let g1 = &s.flags[1];
        assert_eq!(g1.trials, 2);
        assert_eq!(g1.mean_secs, Some(8.5));
    }

    #[test]
    fn truncated_trace_reports_reconstructed_best() {
        let trace = lines(&[
            started(),
            r#"{"type":"TrialEvaluated","index":0,"technique":"default","delta":[],"repeat_secs":[10.0],"score_secs":10.0,"cost_secs":10.0,"budget_spent_secs":10.0,"gc_pause_total_ms":null,"jit_compile_ms":null,"error":null}"#,
            r#"{"type":"TrialEvaluated","index":1,"technique":"random","delta":[],"repeat_secs":[9.5],"score_secs":9.5,"cost_secs":9.5,"budget_spent_secs":19.5,"gc_pause_total_ms":null,"jit_compile_ms":null,"error":null}"#,
        ]);
        let s = SessionSummary::from_trace("t", &trace).expect("replay");
        assert_eq!(s.default_secs, 10.0);
        assert_eq!(s.best_secs, 9.5);
        assert_eq!(s.counters.evaluations, 2);
        assert!(s.best_delta.is_empty());
    }

    #[test]
    fn non_trace_input_is_rejected() {
        assert!(SessionSummary::from_trace("t", "").is_err());
        assert!(SessionSummary::from_trace(
            "t",
            "{\"type\":\"RoundProposed\",\"round\":1,\"technique\":\"x\",\"candidates\":2}\n"
        )
        .is_err());
        assert!(SessionSummary::from_trace("t", "not json\n").is_err());
    }

    #[test]
    fn record_and_trace_paths_agree_on_shared_statistics() {
        let record = SessionRecord {
            program: "compress".into(),
            executor: "sim:compress".into(),
            budget_mins: 10.0,
            default_secs: 10.0,
            best_secs: 8.0,
            best_delta: vec!["-XX:+UseG1GC".into()],
            evaluations: 3,
            distinct: 3,
            cache_hits: 1,
            aborted: 0,
            retried: 2,
            quarantined: 0,
            suppressed: 0,
            saved_secs: 4.5,
            screened: 6,
            model_fits: 2,
            trials: vec![
                TrialRecord {
                    index: 0,
                    at_secs: 10.0,
                    score_secs: Some(10.0),
                    technique: "default".into(),
                    delta: vec![],
                },
                TrialRecord {
                    index: 1,
                    at_secs: 19.0,
                    score_secs: None,
                    technique: "random".into(),
                    delta: vec!["-XX:MaxHeapSize=16m".into()],
                },
                TrialRecord {
                    index: 2,
                    at_secs: 27.0,
                    score_secs: Some(8.0),
                    technique: "random".into(),
                    delta: vec!["-XX:+UseG1GC".into()],
                },
            ],
        };
        let s = SessionSummary::from_record("r", &record);
        assert_eq!(s.counters.cache_hits, 1);
        assert_eq!(s.counters.retried, 2);
        assert_eq!(s.counters.screened, 6);
        assert_eq!(s.improvement_percent, record.improvement_percent());
        let bests: Vec<f64> = s.convergence.iter().map(|p| p.best_secs).collect();
        assert_eq!(bests, vec![10.0, 8.0]);
        assert_eq!(s.flags[1].flag, "UseG1GC");
        assert_eq!(s.flags[1].in_best, 1);
    }
}
