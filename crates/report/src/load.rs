//! Input discovery: turn a path — trace file, TSV record, session
//! directory, experiment trace directory, or server state directory —
//! into an ordered list of [`SessionSummary`]s.
//!
//! Discovery is deterministic: directory entries are sorted by name
//! (server sessions numerically by ID), so the same directory always
//! produces the same report regardless of filesystem enumeration order.

use std::path::Path;

use jtune_harness::SessionRecord;
use jtune_util::json::{self, JsonValue};

use crate::summary::SessionSummary;

/// A loaded report input: a titled, ordered collection of sessions.
#[derive(Clone, Debug, PartialEq)]
pub struct Report {
    /// Report title (the input file or directory name).
    pub title: String,
    /// Sessions in deterministic (name / session-ID) order.
    pub sessions: Vec<SessionSummary>,
    /// Daemon-level overload/robustness counters, present when the
    /// input is a server state directory whose daemon left a
    /// `server-metrics.json` snapshot at shutdown.
    pub daemon: Option<DaemonCounters>,
}

/// The daemon counters a report can explain a chaos run with: how much
/// load was shed, how often peers misbehaved, and how hard the retry
/// and reconnect machinery worked.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DaemonCounters {
    /// Submits shed with `overloaded` plus connections shed at the
    /// connection limit.
    pub connections_rejected: u64,
    /// Frames rejected at the wire (oversized, non-UTF-8, undecodable).
    pub frames_rejected: u64,
    /// Requests that arrived carrying a client retry tag.
    pub clients_retried: u64,
    /// Workers that re-registered as successors of a lost identity.
    pub workers_reconnected: u64,
    /// Worker registrations accepted.
    pub workers_registered: u64,
    /// Trials leased to remote workers.
    pub trials_leased: u64,
    /// Leases reissued after a deadline, worker death, or `fail`.
    pub leases_expired: u64,
}

impl DaemonCounters {
    /// The rows a renderer shows, in display order.
    pub fn rows(&self) -> [(&'static str, u64); 7] {
        [
            ("connections rejected", self.connections_rejected),
            ("frames rejected", self.frames_rejected),
            ("client retries seen", self.clients_retried),
            ("worker reconnects", self.workers_reconnected),
            ("workers registered", self.workers_registered),
            ("trials leased", self.trials_leased),
            ("leases expired", self.leases_expired),
        ]
    }
}

/// The `server-metrics.json` snapshot a draining daemon writes into its
/// state directory, if present and parseable.
fn load_daemon_counters(state_dir: &Path) -> Option<DaemonCounters> {
    let text = std::fs::read_to_string(state_dir.join("server-metrics.json")).ok()?;
    let v = json::parse(&text).ok()?;
    let counters = v.get("counters")?;
    let c = |name: &str| counters.get(name).and_then(JsonValue::as_u64).unwrap_or(0);
    Some(DaemonCounters {
        connections_rejected: c("connections_rejected"),
        frames_rejected: c("frames_rejected"),
        clients_retried: c("clients_retried"),
        workers_reconnected: c("workers_reconnected"),
        workers_registered: c("workers_registered"),
        trials_leased: c("trials_leased"),
        leases_expired: c("leases_expired"),
    })
}

fn label_of(path: &Path) -> String {
    path.file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

fn title_of(path: &Path) -> String {
    path.file_name()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string())
}

fn load_trace_file(path: &Path) -> Result<SessionSummary, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    SessionSummary::from_trace(&label_of(path), &text)
}

fn load_tsv_file(path: &Path) -> Result<SessionSummary, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let record = SessionRecord::from_tsv(&text)
        .ok_or_else(|| format!("{}: not a session TSV record", path.display()))?;
    Ok(SessionSummary::from_record(&label_of(path), &record))
}

/// Sorted entries of `dir` whose file name passes `keep`.
fn entries(dir: &Path, keep: impl Fn(&str) -> bool) -> Result<Vec<std::path::PathBuf>, String> {
    let mut out: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {}: {e}", dir.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .map(|n| keep(&n.to_string_lossy()))
                .unwrap_or(false)
        })
        .collect();
    out.sort();
    Ok(out)
}

/// Load a report from `path`. Accepted shapes:
///
/// - a `.jsonl` trace file (one session);
/// - a `.tsv` session record (one session);
/// - a session directory holding `trace.jsonl` (one session, e.g. a
///   server session's state subdirectory);
/// - a server state directory: numeric subdirectories each holding
///   `trace.jsonl`, ordered by session ID;
/// - an experiment trace directory: `*.jsonl` files, ordered by name
///   (e.g. `results/traces/e1_specjvm/`);
/// - a directory of `*.tsv` records (a `JTUNE_OUT` directory), ordered
///   by name.
pub fn load(path: &Path) -> Result<Report, String> {
    if path.is_file() {
        let name = title_of(path);
        let session = if name.ends_with(".tsv") {
            load_tsv_file(path)?
        } else {
            load_trace_file(path)?
        };
        return Ok(Report {
            title: name,
            sessions: vec![session],
            daemon: None,
        });
    }
    if !path.is_dir() {
        return Err(format!("{}: no such file or directory", path.display()));
    }
    let title = title_of(path);

    // A session directory: its own trace.jsonl.
    if path.join("trace.jsonl").is_file() {
        return Ok(Report {
            title,
            sessions: vec![load_trace_file(&path.join("trace.jsonl")).map(|mut s| {
                s.label = label_of(path);
                s
            })?],
            daemon: None,
        });
    }

    // A server state directory: numeric session subdirectories.
    let mut session_dirs: Vec<(u64, std::path::PathBuf)> = std::fs::read_dir(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter_map(|p| {
            let sid: u64 = p.file_name()?.to_str()?.parse().ok()?;
            p.join("trace.jsonl").is_file().then_some((sid, p))
        })
        .collect();
    session_dirs.sort();
    if !session_dirs.is_empty() {
        let sessions = session_dirs
            .into_iter()
            .map(|(sid, dir)| {
                load_trace_file(&dir.join("trace.jsonl")).map(|mut s| {
                    s.label = format!("session {sid}");
                    s
                })
            })
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Report {
            title,
            sessions,
            daemon: load_daemon_counters(path),
        });
    }

    // An experiment trace directory (*.jsonl) or record directory (*.tsv).
    let traces = entries(path, |n| n.ends_with(".jsonl"))?;
    if !traces.is_empty() {
        let sessions = traces
            .iter()
            .map(|p| load_trace_file(p))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Report {
            title,
            sessions,
            daemon: None,
        });
    }
    let records = entries(path, |n| n.ends_with(".tsv"))?;
    if !records.is_empty() {
        let sessions = records
            .iter()
            .map(|p| load_tsv_file(p))
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Report {
            title,
            sessions,
            daemon: None,
        });
    }
    Err(format!(
        "{}: no trace.jsonl, session subdirectories, *.jsonl or *.tsv files found",
        path.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("jtune-report-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn tiny_trace(program: &str) -> String {
        [
            format!(r#"{{"type":"SessionStarted","program":"{program}","executor":"sim:{program}","technique":"ensemble","manipulator":"hierarchical","budget_secs":60,"seed":1,"batch":4,"repeats":3}}"#),
            r#"{"type":"TrialEvaluated","index":0,"technique":"default","delta":[],"repeat_secs":[5.0],"score_secs":5.0,"cost_secs":5.0,"budget_spent_secs":5.0,"gc_pause_total_ms":null,"jit_compile_ms":null,"error":null}"#.to_string(),
            format!(r#"{{"type":"SessionFinished","program":"{program}","default_secs":5,"best_secs":5,"improvement_percent":0,"evaluations":1,"spent_secs":5,"best_delta":[]}}"#),
            String::new(),
        ]
        .join("\n")
    }

    #[test]
    fn loads_single_trace_file() {
        let dir = temp_dir("file");
        let path = dir.join("run.jsonl");
        std::fs::write(&path, tiny_trace("compress")).unwrap();
        let r = load(&path).expect("load");
        assert_eq!(r.title, "run.jsonl");
        assert_eq!(r.sessions.len(), 1);
        assert_eq!(r.sessions[0].label, "run");
        assert_eq!(r.sessions[0].program, "compress");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loads_experiment_directory_in_name_order() {
        let dir = temp_dir("exp");
        std::fs::write(dir.join("b.jsonl"), tiny_trace("serial")).unwrap();
        std::fs::write(dir.join("a.jsonl"), tiny_trace("compress")).unwrap();
        let r = load(&dir).expect("load");
        let programs: Vec<&str> = r.sessions.iter().map(|s| s.program.as_str()).collect();
        assert_eq!(programs, vec!["compress", "serial"]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loads_server_state_directory_by_session_id() {
        let dir = temp_dir("state");
        for sid in [10u64, 2] {
            let sub = dir.join(sid.to_string());
            std::fs::create_dir_all(&sub).unwrap();
            std::fs::write(sub.join("trace.jsonl"), tiny_trace("compress")).unwrap();
        }
        // A non-session entry must not confuse discovery.
        std::fs::write(dir.join("server.lock"), "x").unwrap();
        let r = load(&dir).expect("load");
        let labels: Vec<&str> = r.sessions.iter().map(|s| s.label.as_str()).collect();
        assert_eq!(labels, vec!["session 2", "session 10"]);
        // No metrics snapshot was written, so there is no daemon block.
        assert_eq!(r.daemon, None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn server_state_directory_surfaces_daemon_counters() {
        let dir = temp_dir("state-metrics");
        let sub = dir.join("1");
        std::fs::create_dir_all(&sub).unwrap();
        std::fs::write(sub.join("trace.jsonl"), tiny_trace("compress")).unwrap();
        std::fs::write(
            dir.join("server-metrics.json"),
            r#"{"counters":{"connections_rejected":3,"frames_rejected":2,"clients_retried":5,"workers_reconnected":1,"trials_leased":9},"histograms":{},"wall":{}}"#,
        )
        .unwrap();
        let r = load(&dir).expect("load");
        let d = r.daemon.expect("daemon counters");
        assert_eq!(d.connections_rejected, 3);
        assert_eq!(d.frames_rejected, 2);
        assert_eq!(d.clients_retried, 5);
        assert_eq!(d.workers_reconnected, 1);
        assert_eq!(d.trials_leased, 9);
        // Counters the daemon never bumped default to zero.
        assert_eq!(d.workers_registered, 0);
        assert_eq!(d.leases_expired, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn loads_session_directory_with_trace() {
        let dir = temp_dir("session");
        std::fs::write(dir.join("trace.jsonl"), tiny_trace("serial")).unwrap();
        let r = load(&dir).expect("load");
        assert_eq!(r.sessions.len(), 1);
        assert_eq!(r.sessions[0].program, "serial");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_or_missing_inputs_error() {
        let dir = temp_dir("empty");
        assert!(load(&dir).is_err());
        assert!(load(&dir.join("nope")).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
