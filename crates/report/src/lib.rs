//! # jtune-report
//!
//! Post-hoc session analytics: replay what a tuning session left on
//! disk — a JSONL trace, an archival TSV record, a server session's
//! state directory, a whole server state directory, or an experiment's
//! trace directory — into a structured [`SessionSummary`] and render it
//! as Markdown, self-contained HTML, or JSON.
//!
//! Three layers:
//!
//! - [`summary`] — the model: convergence curve, per-technique
//!   proposal/win/reward statistics, pipeline counters, and a per-flag
//!   impact table, derived by a streaming replay of the trace events
//!   (or equivalently from a [`SessionRecord`](jtune_harness::SessionRecord)).
//! - [`mod@load`] — input discovery: a path becomes an ordered [`Report`]
//!   (directory entries sorted by name, server sessions by ID).
//! - [`mod@render`] — deterministic renderers. Same input bytes, same
//!   report bytes: floats print at fixed precision and every grouping
//!   is order-stable, so CI can `cmp` two runs of `jtune report`.
//!
//! The crate is read-only and offline: it never re-runs a session,
//! needs no network, and embeds no external assets (the HTML chart is
//! inline SVG).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod load;
pub mod render;
pub mod summary;

pub use load::{load, DaemonCounters, Report};
pub use render::{to_html, to_json, to_markdown};
pub use summary::{
    flag_name, ConvergencePoint, FlagImpact, SessionCounters, SessionSummary, TechniqueStats,
};

/// Output format for [`render()`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// GitHub-flavoured Markdown.
    Markdown,
    /// Self-contained HTML (inline CSS + SVG).
    Html,
    /// One JSON object.
    Json,
}

impl std::str::FromStr for Format {
    type Err = String;

    fn from_str(s: &str) -> Result<Format, String> {
        match s {
            "md" | "markdown" => Ok(Format::Markdown),
            "html" => Ok(Format::Html),
            "json" => Ok(Format::Json),
            other => Err(format!("unknown format {other:?} (expected md|html|json)")),
        }
    }
}

/// Render `report` in the requested format.
pub fn render(report: &Report, format: Format) -> String {
    match format {
        Format::Markdown => to_markdown(report),
        Format::Html => to_html(report),
        Format::Json => to_json(report),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_parse_and_reject() {
        assert_eq!("md".parse::<Format>(), Ok(Format::Markdown));
        assert_eq!("markdown".parse::<Format>(), Ok(Format::Markdown));
        assert_eq!("html".parse::<Format>(), Ok(Format::Html));
        assert_eq!("json".parse::<Format>(), Ok(Format::Json));
        assert!("pdf".parse::<Format>().is_err());
    }
}
