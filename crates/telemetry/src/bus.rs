//! The observer trait and the fan-out bus.

use std::sync::Arc;

use crate::event::TraceEvent;

/// Anything that consumes tuning trace events.
///
/// Implementations take `&self` and use interior mutability so one sink
/// can be shared (via [`Arc`]) between the bus and the code that reads
/// it back (e.g. a recorder inspected after the run). Events arrive
/// serialised — the emitting side (tuner / evaluation pool) guarantees
/// candidate-order delivery — so sinks never need to reorder.
pub trait TuningObserver: Send + Sync {
    /// Consume one event.
    fn on_event(&self, event: &TraceEvent);

    /// Flush any buffered output (file sinks override this).
    fn flush(&self) {}
}

/// Fan-out bus: every emitted event reaches every attached sink, in
/// attach order.
///
/// A bus with no sinks is free: `emit` is a no-op and callers can use
/// [`TelemetryBus::is_enabled`] to skip building event payloads.
#[derive(Clone, Default)]
pub struct TelemetryBus {
    sinks: Vec<Arc<dyn TuningObserver>>,
}

impl std::fmt::Debug for TelemetryBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryBus")
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl TelemetryBus {
    /// A bus with no sinks (emitting is a no-op).
    pub fn new() -> TelemetryBus {
        TelemetryBus::default()
    }

    /// An explicitly disabled bus — the unobserved way to call the
    /// observed-by-default APIs (`Tuner::run`, `evaluate_batch`). Same as
    /// [`TelemetryBus::new`], named for intent at call sites.
    pub fn disabled() -> TelemetryBus {
        TelemetryBus::default()
    }

    /// Attach a sink.
    pub fn add(&mut self, sink: Arc<dyn TuningObserver>) -> &mut Self {
        self.sinks.push(sink);
        self
    }

    /// Builder-style [`TelemetryBus::add`].
    pub fn with(mut self, sink: Arc<dyn TuningObserver>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Does any sink listen?
    pub fn is_enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Deliver `event` to every sink.
    pub fn emit(&self, event: &TraceEvent) {
        for sink in &self.sinks {
            sink.on_event(event);
        }
    }

    /// Flush every sink.
    pub fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemoryRecorder;

    #[test]
    fn empty_bus_is_disabled_and_inert() {
        let bus = TelemetryBus::new();
        assert!(!bus.is_enabled());
        bus.emit(&TraceEvent::RoundProposed {
            round: 0,
            technique: "t".into(),
            candidates: 1,
        });
        bus.flush();
    }

    #[test]
    fn events_fan_out_to_all_sinks() {
        let a = Arc::new(MemoryRecorder::new());
        let b = Arc::new(MemoryRecorder::new());
        let bus = TelemetryBus::new().with(a.clone()).with(b.clone());
        assert!(bus.is_enabled());
        let e = TraceEvent::RoundProposed {
            round: 3,
            technique: "ils".into(),
            candidates: 8,
        };
        bus.emit(&e);
        assert_eq!(a.events(), vec![e.clone()]);
        assert_eq!(b.events(), vec![e]);
    }
}
