//! The observer trait, the fan-out bus, and timing spans.

use std::sync::Arc;
use std::time::Instant;

use crate::event::TraceEvent;

/// Canonical phase names for the tuner's timing spans (the `phase`
/// field of [`TraceEvent::PhaseStarted`] / [`TraceEvent::PhaseEnded`]).
pub mod phase {
    /// A search technique proposing a round of candidates.
    pub const PROPOSE: &str = "propose";
    /// The surrogate screening over-proposed candidates.
    pub const SCREEN: &str = "screen";
    /// The evaluation pipeline measuring one batch (batch wall time).
    pub const MEASURE: &str = "measure";
    /// The surrogate model refitting on trial history.
    pub const FIT: &str = "fit";
    /// The write-ahead journal reaching a durable checkpoint.
    pub const CHECKPOINT: &str = "checkpoint";
    /// One fresh trial's executor wall time (close-only span).
    pub const TRIAL: &str = "trial";
    /// The daemon handling one request frame (close-only span).
    pub const FRAME: &str = "frame";
}

/// Anything that consumes tuning trace events.
///
/// Implementations take `&self` and use interior mutability so one sink
/// can be shared (via [`Arc`]) between the bus and the code that reads
/// it back (e.g. a recorder inspected after the run). Events arrive
/// serialised — the emitting side (tuner / evaluation pool) guarantees
/// candidate-order delivery — so sinks never need to reorder.
pub trait TuningObserver: Send + Sync {
    /// Consume one event.
    fn on_event(&self, event: &TraceEvent);

    /// Flush any buffered output (file sinks override this).
    fn flush(&self) {}
}

/// Fan-out bus: every emitted event reaches every attached sink, in
/// attach order.
///
/// A bus with no sinks is free: `emit` is a no-op and callers can use
/// [`TelemetryBus::is_enabled`] to skip building event payloads.
#[derive(Clone, Default)]
pub struct TelemetryBus {
    sinks: Vec<Arc<dyn TuningObserver>>,
    /// Emit timing spans ([`TraceEvent::PhaseStarted`] /
    /// [`TraceEvent::PhaseEnded`]). Off by default: spans are ephemeral
    /// (never serialised to JSONL), but emitting them still costs two
    /// events per phase, so instrumented code checks this gate.
    spans: bool,
}

impl std::fmt::Debug for TelemetryBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryBus")
            .field("sinks", &self.sinks.len())
            .field("spans", &self.spans)
            .finish()
    }
}

impl TelemetryBus {
    /// A bus with no sinks (emitting is a no-op).
    pub fn new() -> TelemetryBus {
        TelemetryBus::default()
    }

    /// An explicitly disabled bus — the unobserved way to call the
    /// observed-by-default APIs (`Tuner::run`, `evaluate_batch`). Same as
    /// [`TelemetryBus::new`], named for intent at call sites.
    pub fn disabled() -> TelemetryBus {
        TelemetryBus::default()
    }

    /// Attach a sink.
    pub fn add(&mut self, sink: Arc<dyn TuningObserver>) -> &mut Self {
        self.sinks.push(sink);
        self
    }

    /// Builder-style [`TelemetryBus::add`].
    pub fn with(mut self, sink: Arc<dyn TuningObserver>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Does any sink listen?
    pub fn is_enabled(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Enable or disable timing spans (off by default).
    pub fn set_spans(&mut self, enabled: bool) {
        self.spans = enabled;
    }

    /// Builder-style [`TelemetryBus::set_spans`].
    pub fn with_spans(mut self, enabled: bool) -> Self {
        self.spans = enabled;
        self
    }

    /// Are timing spans requested *and* observable (some sink attached)?
    pub fn spans_enabled(&self) -> bool {
        self.spans && !self.sinks.is_empty()
    }

    /// Open a timing span: emits [`TraceEvent::PhaseStarted`] now and
    /// [`TraceEvent::PhaseEnded`] (with the wall-clock elapsed time)
    /// when the guard drops. A no-op unless [`TelemetryBus::spans_enabled`].
    pub fn span(&self, phase: &'static str, round: u64) -> SpanGuard<'_> {
        let bus = self.spans_enabled().then_some(self);
        if let Some(bus) = bus {
            bus.emit(&TraceEvent::PhaseStarted {
                phase: phase.to_string(),
                round,
            });
        }
        SpanGuard {
            bus,
            phase,
            round,
            start: Instant::now(),
        }
    }

    /// Emit a close-only span (no opening event): one
    /// [`TraceEvent::PhaseEnded`] carrying an externally measured wall
    /// time. Used for per-trial latency, where the measurement happens
    /// inside worker threads and is published in slot order afterwards.
    pub fn span_closed(&self, phase: &'static str, round: u64, elapsed_secs: f64) {
        if self.spans_enabled() {
            self.emit(&TraceEvent::PhaseEnded {
                phase: phase.to_string(),
                round,
                elapsed_secs,
            });
        }
    }

    /// Deliver `event` to every sink.
    pub fn emit(&self, event: &TraceEvent) {
        for sink in &self.sinks {
            sink.on_event(event);
        }
    }

    /// Flush every sink.
    pub fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// RAII guard for an open timing span (see [`TelemetryBus::span`]).
///
/// Holds the bus reference only when spans were enabled at open time, so
/// a disabled guard is a pure `Instant` and drops without emitting.
#[must_use = "a span measures the scope it lives in; dropping it immediately closes the span"]
pub struct SpanGuard<'a> {
    bus: Option<&'a TelemetryBus>,
    phase: &'static str,
    round: u64,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(bus) = self.bus {
            bus.emit(&TraceEvent::PhaseEnded {
                phase: self.phase.to_string(),
                round: self.round,
                elapsed_secs: self.start.elapsed().as_secs_f64(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::MemoryRecorder;

    #[test]
    fn empty_bus_is_disabled_and_inert() {
        let bus = TelemetryBus::new();
        assert!(!bus.is_enabled());
        bus.emit(&TraceEvent::RoundProposed {
            round: 0,
            technique: "t".into(),
            candidates: 1,
        });
        bus.flush();
    }

    #[test]
    fn spans_off_emits_nothing() {
        let rec = Arc::new(MemoryRecorder::new());
        let bus = TelemetryBus::new().with(rec.clone());
        assert!(!bus.spans_enabled());
        {
            let _g = bus.span(phase::PROPOSE, 1);
        }
        bus.span_closed(phase::TRIAL, 0, 1.25);
        assert!(rec.events().is_empty());
    }

    #[test]
    fn spans_on_emit_paired_events() {
        let rec = Arc::new(MemoryRecorder::new());
        let bus = TelemetryBus::new().with(rec.clone()).with_spans(true);
        assert!(bus.spans_enabled());
        {
            let _g = bus.span(phase::MEASURE, 7);
        }
        let events = rec.events();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            &events[0],
            TraceEvent::PhaseStarted { phase, round: 7 } if phase == "measure"
        ));
        assert!(matches!(
            &events[1],
            TraceEvent::PhaseEnded { phase, round: 7, elapsed_secs } if phase == "measure" && *elapsed_secs >= 0.0
        ));
    }

    #[test]
    fn spans_flag_without_sinks_is_inert() {
        let bus = TelemetryBus::new().with_spans(true);
        assert!(!bus.spans_enabled());
        let _g = bus.span(phase::FIT, 0);
    }

    #[test]
    fn close_only_span_emits_single_ended_event() {
        let rec = Arc::new(MemoryRecorder::new());
        let bus = TelemetryBus::new().with(rec.clone()).with_spans(true);
        bus.span_closed(phase::TRIAL, 3, 0.5);
        let events = rec.events();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0],
            TraceEvent::PhaseEnded { phase, round: 3, elapsed_secs } if phase == "trial" && *elapsed_secs == 0.5
        ));
    }

    #[test]
    fn events_fan_out_to_all_sinks() {
        let a = Arc::new(MemoryRecorder::new());
        let b = Arc::new(MemoryRecorder::new());
        let bus = TelemetryBus::new().with(a.clone()).with(b.clone());
        assert!(bus.is_enabled());
        let e = TraceEvent::RoundProposed {
            round: 3,
            technique: "ils".into(),
            candidates: 8,
        };
        bus.emit(&e);
        assert_eq!(a.events(), vec![e.clone()]);
        assert_eq!(b.events(), vec![e]);
    }
}
