//! Live progress reporting for interactive runs.

use std::io::Write;
use std::sync::Mutex;

use crate::bus::TuningObserver;
use crate::event::TraceEvent;

#[derive(Debug, Default)]
struct State {
    program: String,
    budget_mins: f64,
    default_secs: Option<f64>,
    best_secs: Option<f64>,
    best_improvement: f64,
}

/// Renders a human-readable line per notable event (new best, budget
/// exhaustion, session boundaries) plus a heartbeat every `every`
/// trials. Intended for stderr so `--trace`/`--json` stdout streams stay
/// machine-readable.
pub struct ProgressReporter {
    out: Mutex<Box<dyn Write + Send>>,
    state: Mutex<State>,
    every: u64,
}

impl std::fmt::Debug for ProgressReporter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressReporter")
            .field("every", &self.every)
            .finish()
    }
}

impl ProgressReporter {
    /// Reporter on stderr with a heartbeat every 25 trials.
    pub fn stderr() -> ProgressReporter {
        ProgressReporter::to_writer(Box::new(std::io::stderr()))
    }

    /// Reporter on an arbitrary writer (tests capture output this way).
    pub fn to_writer(out: Box<dyn Write + Send>) -> ProgressReporter {
        ProgressReporter {
            out: Mutex::new(out),
            state: Mutex::new(State::default()),
            every: 25,
        }
    }

    /// Set the heartbeat period (`0` disables heartbeats).
    pub fn every(mut self, trials: u64) -> ProgressReporter {
        self.every = trials;
        self
    }

    fn line(&self, text: &str) {
        let mut out = self.out.lock().expect("progress poisoned");
        // A closed stderr/pipe must not fail the tuning run.
        let _ = writeln!(out, "{text}");
        let _ = out.flush();
    }
}

impl TuningObserver for ProgressReporter {
    fn on_event(&self, event: &TraceEvent) {
        match event {
            TraceEvent::SessionStarted {
                program,
                technique,
                manipulator,
                budget_secs,
                workers,
                ..
            } => {
                let mut s = self.state.lock().expect("progress poisoned");
                *s = State {
                    program: program.clone(),
                    budget_mins: budget_secs / 60.0,
                    ..State::default()
                };
                self.line(&format!(
                    "[{program}] session started: {:.0}-minute budget, technique {technique}, \
                     {manipulator} manipulator, {workers} workers",
                    budget_secs / 60.0
                ));
            }
            TraceEvent::TrialEvaluated {
                index,
                score_secs,
                budget_spent_secs,
                ..
            } => {
                let mut s = self.state.lock().expect("progress poisoned");
                if *index == 0 {
                    s.default_secs = *score_secs;
                }
                let heartbeat = self.every > 0 && *index > 0 && index % self.every == 0;
                if heartbeat {
                    let best = s
                        .best_secs
                        .or(s.default_secs)
                        .map_or("-".to_string(), |b| format!("{b:.3}s"));
                    let program = s.program.clone();
                    let budget_mins = s.budget_mins;
                    let improvement = s.best_improvement;
                    drop(s);
                    self.line(&format!(
                        "[{program}] {:.1}/{budget_mins:.1} min  trial #{index}  best {best} \
                         ({improvement:+.1}%)",
                        budget_spent_secs / 60.0
                    ));
                }
            }
            TraceEvent::BestImproved {
                index,
                score_secs,
                improvement_percent,
                ..
            } => {
                let mut s = self.state.lock().expect("progress poisoned");
                s.best_secs = Some(*score_secs);
                s.best_improvement = *improvement_percent;
                let program = s.program.clone();
                drop(s);
                self.line(&format!(
                    "[{program}] trial #{index}: new best {score_secs:.3}s \
                     ({improvement_percent:+.1}%)"
                ));
            }
            TraceEvent::BudgetExhausted {
                spent_secs,
                total_secs,
                evaluations,
            } => {
                let program = self
                    .state
                    .lock()
                    .expect("progress poisoned")
                    .program
                    .clone();
                self.line(&format!(
                    "[{program}] budget exhausted: {:.1}/{:.1} min after {evaluations} evaluations",
                    spent_secs / 60.0,
                    total_secs / 60.0
                ));
            }
            TraceEvent::SessionFinished {
                program,
                default_secs,
                best_secs,
                improvement_percent,
                evaluations,
                ..
            } => {
                self.line(&format!(
                    "[{program}] done: default {default_secs:.3}s -> best {best_secs:.3}s \
                     ({improvement_percent:+.1}%) in {evaluations} evaluations"
                ));
            }
            TraceEvent::SessionResumed { trials_replayed } => {
                let program = self
                    .state
                    .lock()
                    .expect("progress poisoned")
                    .program
                    .clone();
                self.line(&format!(
                    "[{program}] resumed from journal: replaying {trials_replayed} completed trials"
                ));
            }
            TraceEvent::Quarantined {
                fingerprint,
                failures,
                error_kind,
            } => {
                let program = self
                    .state
                    .lock()
                    .expect("progress poisoned")
                    .program
                    .clone();
                self.line(&format!(
                    "[{program}] quarantined config {fingerprint:#018x} after {failures} \
                     {error_kind} failures"
                ));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct Shared(Arc<Mutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn reports_session_and_best_lines() {
        let buf = Shared::default();
        let p = ProgressReporter::to_writer(Box::new(buf.clone())).every(1);
        p.on_event(&TraceEvent::SessionStarted {
            program: "h2".into(),
            executor: "sim:h2".into(),
            technique: "ensemble".into(),
            manipulator: "hierarchical".into(),
            budget_secs: 12000.0,
            seed: 1,
            workers: 4,
            batch: 4,
            repeats: 3,
        });
        p.on_event(&TraceEvent::BestImproved {
            index: 4,
            score_secs: 30.1,
            improvement_percent: 12.5,
            delta: vec![],
        });
        p.on_event(&TraceEvent::SessionFinished {
            program: "h2".into(),
            default_secs: 34.0,
            best_secs: 30.1,
            improvement_percent: 12.5,
            evaluations: 40,
            spent_secs: 11900.0,
            best_delta: vec![],
        });
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        assert!(text.contains("session started"), "{text}");
        assert!(text.contains("new best 30.100s"), "{text}");
        assert!(text.contains("done: default 34.000s"), "{text}");
    }
}
