//! Live event streaming: fan events out to in-process subscribers.
//!
//! [`EventStreamSink`] is the bridge between a session's
//! [`crate::TelemetryBus`] and anything that wants to *watch* the
//! session as it runs — the `jtune-server` `watch` operation streams
//! these lines straight onto client connections. Each subscriber gets
//! its own unbounded channel of rendered JSON lines; a subscriber that
//! goes away (drops its receiver) is pruned on the next event, so a
//! dead client can never stall the tuning loop.
//!
//! Unlike [`crate::JsonlSink`], the stream forwards *ephemeral* events
//! too (e.g. `SessionResumed`): a live watcher wants to know the
//! session just resumed even though that fact must not appear in the
//! durable trace.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;

use crate::bus::TuningObserver;
use crate::event::TraceEvent;

/// Fans rendered trace-event lines out to any number of subscribers.
#[derive(Debug, Default)]
pub struct EventStreamSink {
    subscribers: Mutex<Vec<Sender<String>>>,
}

impl EventStreamSink {
    /// New sink with no subscribers.
    pub fn new() -> EventStreamSink {
        EventStreamSink::default()
    }

    /// Subscribe to every event from now on. Dropping the receiver
    /// unsubscribes implicitly.
    pub fn subscribe(&self) -> Receiver<String> {
        let (tx, rx) = channel();
        self.subscribers
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(tx);
        rx
    }

    /// Drop every subscriber, ending their streams. Watchers see the
    /// channel disconnect, which is the "session over" signal.
    pub fn close(&self) {
        self.subscribers
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clear();
    }

    /// Current live subscriber count (dead ones are pruned lazily, on
    /// the next event).
    pub fn subscriber_count(&self) -> usize {
        self.subscribers
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }
}

impl TuningObserver for EventStreamSink {
    fn on_event(&self, event: &TraceEvent) {
        let mut subs = self.subscribers.lock().unwrap_or_else(|p| p.into_inner());
        if subs.is_empty() {
            return;
        }
        let line = event.to_json();
        // send() fails only when the receiver is gone: prune in place.
        subs.retain(|tx| tx.send(line.clone()).is_ok());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(round: u64) -> TraceEvent {
        TraceEvent::RoundProposed {
            round,
            technique: "t".into(),
            candidates: 1,
        }
    }

    #[test]
    fn subscribers_receive_rendered_lines_in_order() {
        let sink = EventStreamSink::new();
        let rx = sink.subscribe();
        sink.on_event(&event(0));
        sink.on_event(&event(1));
        let lines: Vec<String> = rx.try_iter().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"round\":0"));
        assert!(lines[1].contains("\"round\":1"));
    }

    #[test]
    fn ephemeral_events_are_streamed_live() {
        let sink = EventStreamSink::new();
        let rx = sink.subscribe();
        sink.on_event(&TraceEvent::SessionResumed { trials_replayed: 3 });
        let lines: Vec<String> = rx.try_iter().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("SessionResumed"));
    }

    #[test]
    fn dropped_subscribers_are_pruned_and_close_disconnects() {
        let sink = EventStreamSink::new();
        let rx1 = sink.subscribe();
        let rx2 = sink.subscribe();
        drop(rx1);
        sink.on_event(&event(0));
        assert_eq!(sink.subscriber_count(), 1);
        sink.close();
        sink.on_event(&event(1));
        // rx2 got the event before close, then the disconnect.
        assert_eq!(rx2.try_iter().count(), 1);
        assert!(rx2.recv().is_err());
    }
}
