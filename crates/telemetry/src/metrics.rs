//! Metrics registry: counters and latency histograms over the event
//! stream.
//!
//! Aggregates what the JSONL trace records event-by-event, reusing
//! [`jtune_util::Histogram`] for the latency-shaped quantities (trial
//! scores, budget charges, GC pause totals, JIT stall time). Experiment
//! drivers render a snapshot at the end of a run; long-lived services
//! can poll it while a session runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use jtune_util::{Histogram, SimDuration};

use crate::bus::TuningObserver;
use crate::event::TraceEvent;

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

impl Inner {
    fn bump(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    fn observe(&mut self, name: &'static str, d: SimDuration) {
        self.histograms.entry(name).or_default().record(d);
    }
}

/// Thread-safe counters + histograms fed by trace events.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

/// Counter names the registry maintains (all are 0 until first hit).
pub const COUNTERS: &[&str] = &[
    "sessions_started",
    "sessions_finished",
    "rounds_proposed",
    "trials_measured",
    "trials_evaluated",
    "trials_failed",
    "cache_hits",
    "duplicates_suppressed",
    "trials_aborted",
    "best_improvements",
    "technique_switches",
    "budget_exhausted",
    "trials_retried",
    "quarantined",
    "model_fits",
    "candidates_screened",
    "checkpoints_written",
    "sessions_resumed",
];

/// Histogram names the registry maintains.
pub const HISTOGRAMS: &[&str] = &[
    "trial_score",
    "trial_cost",
    "gc_pause_total",
    "jit_compile",
    "budget_saved",
    "retry_cost",
];

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of a histogram (`None` if it has no samples yet).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner
            .lock()
            .expect("metrics poisoned")
            .histograms
            .get(name)
            .cloned()
    }

    /// Render a compact plain-text report of all non-zero metrics.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().expect("metrics poisoned");
        let mut out = String::new();
        let _ = writeln!(out, "counters:");
        for (name, v) in &inner.counters {
            let _ = writeln!(out, "  {name:<24} {v}");
        }
        let _ = writeln!(out, "histograms:");
        for (name, h) in &inner.histograms {
            let _ = writeln!(
                out,
                "  {name:<24} n={} mean={} p50={} p99={} max={}",
                h.count(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(99.0),
                h.max(),
            );
        }
        out
    }
}

impl TuningObserver for MetricsRegistry {
    fn on_event(&self, event: &TraceEvent) {
        let mut inner = self.inner.lock().expect("metrics poisoned");
        match event {
            TraceEvent::SessionStarted { .. } => inner.bump("sessions_started"),
            TraceEvent::RoundProposed { .. } => inner.bump("rounds_proposed"),
            TraceEvent::TrialMeasured { .. } => inner.bump("trials_measured"),
            TraceEvent::CacheHit { saved_secs, .. } => {
                inner.bump("cache_hits");
                inner.observe("budget_saved", SimDuration::from_secs_f64(*saved_secs));
            }
            TraceEvent::DuplicateSuppressed { .. } => inner.bump("duplicates_suppressed"),
            TraceEvent::TrialAborted { saved_secs, .. } => {
                inner.bump("trials_aborted");
                inner.observe("budget_saved", SimDuration::from_secs_f64(*saved_secs));
            }
            TraceEvent::TrialEvaluated {
                score_secs,
                cost_secs,
                gc_pause_total_ms,
                jit_compile_ms,
                ..
            } => {
                inner.bump("trials_evaluated");
                match score_secs {
                    Some(s) => inner.observe("trial_score", SimDuration::from_secs_f64(*s)),
                    None => inner.bump("trials_failed"),
                }
                inner.observe("trial_cost", SimDuration::from_secs_f64(*cost_secs));
                if let Some(ms) = gc_pause_total_ms {
                    inner.observe("gc_pause_total", SimDuration::from_millis_f64(*ms));
                }
                if let Some(ms) = jit_compile_ms {
                    inner.observe("jit_compile", SimDuration::from_millis_f64(*ms));
                }
            }
            TraceEvent::TrialRetried { cost_secs, .. } => {
                inner.bump("trials_retried");
                inner.observe("retry_cost", SimDuration::from_secs_f64(*cost_secs));
            }
            TraceEvent::Quarantined { .. } => inner.bump("quarantined"),
            TraceEvent::ModelFit { refit, .. } => {
                if *refit {
                    inner.bump("model_fits");
                }
            }
            TraceEvent::CandidateScreened { .. } => inner.bump("candidates_screened"),
            TraceEvent::CheckpointWritten { .. } => inner.bump("checkpoints_written"),
            TraceEvent::SessionResumed { .. } => inner.bump("sessions_resumed"),
            TraceEvent::BestImproved { .. } => inner.bump("best_improvements"),
            TraceEvent::TechniqueSwitched { .. } => inner.bump("technique_switches"),
            TraceEvent::BudgetExhausted { .. } => inner.bump("budget_exhausted"),
            TraceEvent::SessionFinished { .. } => inner.bump("sessions_finished"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(score: Option<f64>) -> TraceEvent {
        TraceEvent::TrialEvaluated {
            index: 0,
            technique: "random".into(),
            delta: vec![],
            repeat_secs: vec![],
            score_secs: score,
            cost_secs: 2.0,
            budget_spent_secs: 2.0,
            gc_pause_total_ms: Some(10.0),
            gc_collections: Some(2),
            jit_compile_ms: Some(5.0),
            jit_compiles: Some(100),
            error: None,
            error_kind: None,
        }
    }

    #[test]
    fn counts_trials_and_failures() {
        let m = MetricsRegistry::new();
        m.on_event(&trial(Some(1.0)));
        m.on_event(&trial(Some(2.0)));
        m.on_event(&trial(None));
        assert_eq!(m.counter("trials_evaluated"), 3);
        assert_eq!(m.counter("trials_failed"), 1);
        assert_eq!(m.counter("nonexistent"), 0);
        let scores = m.histogram("trial_score").unwrap();
        assert_eq!(scores.count(), 2);
        assert_eq!(m.histogram("trial_cost").unwrap().count(), 3);
        assert_eq!(m.histogram("gc_pause_total").unwrap().count(), 3);
    }

    #[test]
    fn counts_pipeline_savings() {
        let m = MetricsRegistry::new();
        m.on_event(&TraceEvent::CacheHit {
            slot: 0,
            fingerprint: 1,
            score_secs: Some(1.0),
            cost_secs: 0.0,
            saved_secs: 3.5,
        });
        m.on_event(&TraceEvent::DuplicateSuppressed {
            slot: 1,
            of_slot: 0,
        });
        m.on_event(&TraceEvent::TrialAborted {
            slot: 2,
            after_runs: 2,
            p_value: 0.1,
            effect: 1.0,
            saved_secs: 1.5,
        });
        assert_eq!(m.counter("cache_hits"), 1);
        assert_eq!(m.counter("duplicates_suppressed"), 1);
        assert_eq!(m.counter("trials_aborted"), 1);
        assert_eq!(m.histogram("budget_saved").unwrap().count(), 2);
    }

    #[test]
    fn counts_fault_tolerance_events() {
        let m = MetricsRegistry::new();
        m.on_event(&TraceEvent::TrialRetried {
            slot: 0,
            rep: 0,
            attempt: 0,
            error: "injected".into(),
            error_kind: "timeout".into(),
            cost_secs: 2.0,
        });
        m.on_event(&TraceEvent::Quarantined {
            fingerprint: 9,
            failures: 3,
            error_kind: "oom".into(),
        });
        m.on_event(&TraceEvent::CheckpointWritten {
            trials: 4,
            spent_secs: 8.0,
        });
        m.on_event(&TraceEvent::SessionResumed { trials_replayed: 4 });
        assert_eq!(m.counter("trials_retried"), 1);
        assert_eq!(m.counter("quarantined"), 1);
        assert_eq!(m.counter("checkpoints_written"), 1);
        assert_eq!(m.counter("sessions_resumed"), 1);
        assert_eq!(m.histogram("retry_cost").unwrap().count(), 1);
    }

    #[test]
    fn counts_model_events() {
        let m = MetricsRegistry::new();
        m.on_event(&TraceEvent::ModelFit {
            round: 3,
            samples: 20,
            refit: true,
        });
        m.on_event(&TraceEvent::ModelFit {
            round: 4,
            samples: 20,
            refit: false,
        });
        m.on_event(&TraceEvent::CandidateScreened {
            round: 3,
            fingerprint: 7,
            predicted_secs: 2.0,
            acquisition: 1.8,
        });
        assert_eq!(m.counter("model_fits"), 1);
        assert_eq!(m.counter("candidates_screened"), 1);
    }

    #[test]
    fn render_mentions_all_recorded_metrics() {
        let m = MetricsRegistry::new();
        m.on_event(&trial(Some(1.0)));
        m.on_event(&TraceEvent::BudgetExhausted {
            spent_secs: 1.0,
            total_secs: 1.0,
            evaluations: 1,
        });
        let r = m.render();
        assert!(r.contains("trials_evaluated"));
        assert!(r.contains("budget_exhausted"));
        assert!(r.contains("trial_score"));
    }
}
