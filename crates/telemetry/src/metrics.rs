//! Metrics registry: counters and latency histograms over the event
//! stream.
//!
//! Aggregates what the JSONL trace records event-by-event, reusing
//! [`jtune_util::Histogram`] for the latency-shaped quantities (trial
//! scores, budget charges, GC pause totals, JIT stall time). Experiment
//! drivers render a snapshot at the end of a run; long-lived services
//! can poll it while a session runs.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Mutex, MutexGuard};

use jtune_util::json::JsonObject;
use jtune_util::{Histogram, SimDuration};

use crate::bus::TuningObserver;
use crate::event::TraceEvent;

/// Bucket upper bounds (seconds) for [`FixedHistogram`]: decades from
/// 1 µs to 100 s. A final implicit overflow bucket catches everything
/// above the last bound.
pub const WALL_BUCKETS: &[f64] = &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

/// A fixed-bucket histogram for wall-clock seconds.
///
/// Unlike [`jtune_util::Histogram`] (log-scaled, sized for virtual-time
/// quantities), the bucket bounds here are a compile-time constant
/// ([`WALL_BUCKETS`]), so two histograms fed the same samples are always
/// structurally identical — which keeps snapshots and the server `stats`
/// payload shape stable across runs.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FixedHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    max: f64,
}

impl FixedHistogram {
    /// Empty histogram.
    pub fn new() -> FixedHistogram {
        FixedHistogram {
            buckets: vec![0; WALL_BUCKETS.len() + 1],
            ..FixedHistogram::default()
        }
    }

    /// Record one sample (seconds). Negative / non-finite samples are
    /// clamped to zero so a clock hiccup cannot corrupt the aggregate.
    pub fn record(&mut self, secs: f64) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; WALL_BUCKETS.len() + 1];
        }
        let secs = if secs.is_finite() && secs > 0.0 {
            secs
        } else {
            0.0
        };
        let idx = WALL_BUCKETS
            .iter()
            .position(|&bound| secs <= bound)
            .unwrap_or(WALL_BUCKETS.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += secs;
        if secs > self.max {
            self.max = secs;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (seconds).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest sample seen (0 when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Per-bucket counts, aligned with [`WALL_BUCKETS`] plus one final
    /// overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.buckets
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &FixedHistogram) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; WALL_BUCKETS.len() + 1];
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Render as a JSON object (`count`/`sum`/`mean`/`max`/`buckets`).
    pub fn to_json(&self) -> String {
        let counts: Vec<u64> = if self.buckets.is_empty() {
            vec![0; WALL_BUCKETS.len() + 1]
        } else {
            self.buckets.clone()
        };
        JsonObject::new()
            .u64("count", self.count)
            .f64("sum", self.sum)
            .f64("mean", self.mean())
            .f64("max", self.max)
            .u64_array("buckets", &counts)
            .finish()
    }
}

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
    wall: BTreeMap<String, FixedHistogram>,
}

impl Inner {
    fn bump(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    fn observe(&mut self, name: &'static str, d: SimDuration) {
        self.histograms.entry(name).or_default().record(d);
    }

    fn observe_wall(&mut self, name: &str, secs: f64) {
        self.wall.entry(name.to_string()).or_default().record(secs);
    }
}

/// Map a span phase name to its wall-histogram name.
fn wall_metric_for(phase: &str) -> String {
    match phase {
        crate::bus::phase::TRIAL => "trial_wall".to_string(),
        crate::bus::phase::MEASURE => "batch_wall".to_string(),
        crate::bus::phase::FRAME => "frame_wall".to_string(),
        other => format!("phase_{other}"),
    }
}

/// Thread-safe counters + histograms fed by trace events.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

/// Counter names the registry maintains (all are 0 until first hit).
pub const COUNTERS: &[&str] = &[
    "sessions_started",
    "sessions_finished",
    "rounds_proposed",
    "trials_measured",
    "trials_evaluated",
    "trials_failed",
    "cache_hits",
    "duplicates_suppressed",
    "trials_aborted",
    "best_improvements",
    "technique_switches",
    "budget_exhausted",
    "trials_retried",
    "quarantined",
    "model_fits",
    "candidates_screened",
    "checkpoints_written",
    "sessions_resumed",
    "workers_registered",
    "trials_leased",
    "leases_expired",
    "connections_rejected",
    "frames_rejected",
    "clients_retried",
    "workers_reconnected",
];

/// Histogram names the registry maintains.
pub const HISTOGRAMS: &[&str] = &[
    "trial_score",
    "trial_cost",
    "gc_pause_total",
    "jit_compile",
    "budget_saved",
    "retry_cost",
];

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Lock the registry, recovering from poison: a panicking observer
    /// thread must not take the metrics (or anything draining them at
    /// shutdown) down with it — partial aggregates beat none.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Snapshot of a histogram (`None` if it has no samples yet).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Record one wall-clock sample directly (bypassing the event
    /// stream) — used by code that times work the bus never sees, e.g.
    /// the server's per-frame handling histogram.
    pub fn record_wall(&self, name: &str, secs: f64) {
        self.lock().observe_wall(name, secs);
    }

    /// Snapshot of a wall-clock histogram (`None` if never recorded).
    pub fn wall_histogram(&self, name: &str) -> Option<FixedHistogram> {
        self.lock().wall.get(name).cloned()
    }

    /// Names of all wall-clock histograms with at least one sample, in
    /// sorted order.
    pub fn wall_names(&self) -> Vec<String> {
        self.lock().wall.keys().cloned().collect()
    }

    /// Render a compact plain-text report of all non-zero metrics.
    pub fn render(&self) -> String {
        let inner = self.lock();
        let mut out = String::new();
        let _ = writeln!(out, "counters:");
        for (name, v) in &inner.counters {
            let _ = writeln!(out, "  {name:<24} {v}");
        }
        let _ = writeln!(out, "histograms:");
        for (name, h) in &inner.histograms {
            let _ = writeln!(
                out,
                "  {name:<24} n={} mean={} p50={} p99={} max={}",
                h.count(),
                h.mean(),
                h.percentile(50.0),
                h.percentile(99.0),
                h.max(),
            );
        }
        if !inner.wall.is_empty() {
            let _ = writeln!(out, "wall:");
            for (name, h) in &inner.wall {
                let _ = writeln!(
                    out,
                    "  {name:<24} n={} mean={:.6}s max={:.6}s",
                    h.count(),
                    h.mean(),
                    h.max(),
                );
            }
        }
        out
    }

    /// Render the full registry as one JSON object:
    /// `{"counters":{...},"histograms":{...},"wall":{...}}`. Counter and
    /// histogram keys appear in sorted (BTreeMap) order, so the payload
    /// is deterministic for a given event sequence.
    pub fn to_json(&self) -> String {
        let inner = self.lock();
        let mut counters = JsonObject::new();
        for (name, v) in &inner.counters {
            counters = counters.u64(name, *v);
        }
        let mut hists = JsonObject::new();
        for (name, h) in &inner.histograms {
            let body = JsonObject::new()
                .u64("count", h.count())
                .str("mean", &h.mean().to_string())
                .str("p50", &h.percentile(50.0).to_string())
                .str("p99", &h.percentile(99.0).to_string())
                .str("max", &h.max().to_string())
                .finish();
            hists = hists.raw(name, &body);
        }
        let mut wall = JsonObject::new();
        for (name, h) in &inner.wall {
            wall = wall.raw(name, &h.to_json());
        }
        JsonObject::new()
            .raw("counters", &counters.finish())
            .raw("histograms", &hists.finish())
            .raw("wall", &wall.finish())
            .finish()
    }
}

impl TuningObserver for MetricsRegistry {
    fn on_event(&self, event: &TraceEvent) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        match event {
            TraceEvent::SessionStarted { .. } => inner.bump("sessions_started"),
            TraceEvent::RoundProposed { .. } => inner.bump("rounds_proposed"),
            TraceEvent::TrialMeasured { .. } => inner.bump("trials_measured"),
            TraceEvent::CacheHit { saved_secs, .. } => {
                inner.bump("cache_hits");
                inner.observe("budget_saved", SimDuration::from_secs_f64(*saved_secs));
            }
            TraceEvent::DuplicateSuppressed { .. } => inner.bump("duplicates_suppressed"),
            TraceEvent::TrialAborted { saved_secs, .. } => {
                inner.bump("trials_aborted");
                inner.observe("budget_saved", SimDuration::from_secs_f64(*saved_secs));
            }
            TraceEvent::TrialEvaluated {
                score_secs,
                cost_secs,
                gc_pause_total_ms,
                jit_compile_ms,
                ..
            } => {
                inner.bump("trials_evaluated");
                match score_secs {
                    Some(s) => inner.observe("trial_score", SimDuration::from_secs_f64(*s)),
                    None => inner.bump("trials_failed"),
                }
                inner.observe("trial_cost", SimDuration::from_secs_f64(*cost_secs));
                if let Some(ms) = gc_pause_total_ms {
                    inner.observe("gc_pause_total", SimDuration::from_millis_f64(*ms));
                }
                if let Some(ms) = jit_compile_ms {
                    inner.observe("jit_compile", SimDuration::from_millis_f64(*ms));
                }
            }
            TraceEvent::TrialRetried { cost_secs, .. } => {
                inner.bump("trials_retried");
                inner.observe("retry_cost", SimDuration::from_secs_f64(*cost_secs));
            }
            TraceEvent::Quarantined { .. } => inner.bump("quarantined"),
            TraceEvent::ModelFit { refit, .. } => {
                if *refit {
                    inner.bump("model_fits");
                }
            }
            TraceEvent::CandidateScreened { .. } => inner.bump("candidates_screened"),
            TraceEvent::CheckpointWritten { .. } => inner.bump("checkpoints_written"),
            TraceEvent::SessionResumed { .. } => inner.bump("sessions_resumed"),
            TraceEvent::WorkerRegistered { .. } => inner.bump("workers_registered"),
            TraceEvent::TrialLeased { .. } => inner.bump("trials_leased"),
            TraceEvent::LeaseExpired { .. } => inner.bump("leases_expired"),
            TraceEvent::ConnectionRejected { .. } => inner.bump("connections_rejected"),
            TraceEvent::FrameRejected { .. } => inner.bump("frames_rejected"),
            TraceEvent::ClientRetried { .. } => inner.bump("clients_retried"),
            TraceEvent::WorkerReconnected { .. } => inner.bump("workers_reconnected"),
            TraceEvent::PhaseStarted { .. } => {}
            TraceEvent::PhaseEnded {
                phase,
                elapsed_secs,
                ..
            } => inner.observe_wall(&wall_metric_for(phase), *elapsed_secs),
            TraceEvent::BestImproved { .. } => inner.bump("best_improvements"),
            TraceEvent::TechniqueSwitched { .. } => inner.bump("technique_switches"),
            TraceEvent::BudgetExhausted { .. } => inner.bump("budget_exhausted"),
            TraceEvent::SessionFinished { .. } => inner.bump("sessions_finished"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trial(score: Option<f64>) -> TraceEvent {
        TraceEvent::TrialEvaluated {
            index: 0,
            technique: "random".into(),
            delta: vec![],
            repeat_secs: vec![],
            score_secs: score,
            cost_secs: 2.0,
            budget_spent_secs: 2.0,
            gc_pause_total_ms: Some(10.0),
            gc_collections: Some(2),
            jit_compile_ms: Some(5.0),
            jit_compiles: Some(100),
            error: None,
            error_kind: None,
        }
    }

    #[test]
    fn counts_trials_and_failures() {
        let m = MetricsRegistry::new();
        m.on_event(&trial(Some(1.0)));
        m.on_event(&trial(Some(2.0)));
        m.on_event(&trial(None));
        assert_eq!(m.counter("trials_evaluated"), 3);
        assert_eq!(m.counter("trials_failed"), 1);
        assert_eq!(m.counter("nonexistent"), 0);
        let scores = m.histogram("trial_score").unwrap();
        assert_eq!(scores.count(), 2);
        assert_eq!(m.histogram("trial_cost").unwrap().count(), 3);
        assert_eq!(m.histogram("gc_pause_total").unwrap().count(), 3);
    }

    #[test]
    fn counts_pipeline_savings() {
        let m = MetricsRegistry::new();
        m.on_event(&TraceEvent::CacheHit {
            slot: 0,
            fingerprint: 1,
            score_secs: Some(1.0),
            cost_secs: 0.0,
            saved_secs: 3.5,
        });
        m.on_event(&TraceEvent::DuplicateSuppressed {
            slot: 1,
            of_slot: 0,
        });
        m.on_event(&TraceEvent::TrialAborted {
            slot: 2,
            after_runs: 2,
            p_value: 0.1,
            effect: 1.0,
            saved_secs: 1.5,
        });
        assert_eq!(m.counter("cache_hits"), 1);
        assert_eq!(m.counter("duplicates_suppressed"), 1);
        assert_eq!(m.counter("trials_aborted"), 1);
        assert_eq!(m.histogram("budget_saved").unwrap().count(), 2);
    }

    #[test]
    fn counts_fault_tolerance_events() {
        let m = MetricsRegistry::new();
        m.on_event(&TraceEvent::TrialRetried {
            slot: 0,
            rep: 0,
            attempt: 0,
            error: "injected".into(),
            error_kind: "timeout".into(),
            cost_secs: 2.0,
        });
        m.on_event(&TraceEvent::Quarantined {
            fingerprint: 9,
            failures: 3,
            error_kind: "oom".into(),
        });
        m.on_event(&TraceEvent::CheckpointWritten {
            trials: 4,
            spent_secs: 8.0,
        });
        m.on_event(&TraceEvent::SessionResumed { trials_replayed: 4 });
        assert_eq!(m.counter("trials_retried"), 1);
        assert_eq!(m.counter("quarantined"), 1);
        assert_eq!(m.counter("checkpoints_written"), 1);
        assert_eq!(m.counter("sessions_resumed"), 1);
        assert_eq!(m.histogram("retry_cost").unwrap().count(), 1);
    }

    #[test]
    fn counts_overload_events() {
        let m = MetricsRegistry::new();
        m.on_event(&TraceEvent::ConnectionRejected {
            reason: "overloaded".into(),
            retry_after_ms: 250,
        });
        m.on_event(&TraceEvent::ConnectionRejected {
            reason: "conn-limit".into(),
            retry_after_ms: 0,
        });
        m.on_event(&TraceEvent::FrameRejected {
            code: "frame-too-large".into(),
            bytes: 1 << 20,
        });
        m.on_event(&TraceEvent::ClientRetried {
            attempt: 0,
            delay_ms: 80,
        });
        m.on_event(&TraceEvent::WorkerReconnected { wid: 2, attempts: 1 });
        assert_eq!(m.counter("connections_rejected"), 2);
        assert_eq!(m.counter("frames_rejected"), 1);
        assert_eq!(m.counter("clients_retried"), 1);
        assert_eq!(m.counter("workers_reconnected"), 1);
    }

    #[test]
    fn counts_model_events() {
        let m = MetricsRegistry::new();
        m.on_event(&TraceEvent::ModelFit {
            round: 3,
            samples: 20,
            refit: true,
        });
        m.on_event(&TraceEvent::ModelFit {
            round: 4,
            samples: 20,
            refit: false,
        });
        m.on_event(&TraceEvent::CandidateScreened {
            round: 3,
            fingerprint: 7,
            predicted_secs: 2.0,
            acquisition: 1.8,
        });
        assert_eq!(m.counter("model_fits"), 1);
        assert_eq!(m.counter("candidates_screened"), 1);
    }

    #[test]
    fn fixed_histogram_buckets_and_stats() {
        let mut h = FixedHistogram::new();
        h.record(0.5e-6); // bucket 0 (≤1µs)
        h.record(0.05); // ≤0.1s
        h.record(2.0); // ≤10s
        h.record(500.0); // overflow
        h.record(f64::NAN); // clamped to 0 → bucket 0
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 500.0);
        let counts = h.bucket_counts();
        assert_eq!(counts.len(), WALL_BUCKETS.len() + 1);
        assert_eq!(counts[0], 2);
        assert_eq!(counts[5], 1);
        assert_eq!(counts[7], 1);
        assert_eq!(counts[WALL_BUCKETS.len()], 1);
        let mut other = FixedHistogram::new();
        other.record(2.0);
        h.merge(&other);
        assert_eq!(h.count(), 6);
        assert!(h.to_json().contains("\"count\":6"));
    }

    #[test]
    fn phase_ended_feeds_wall_histograms() {
        let m = MetricsRegistry::new();
        m.on_event(&TraceEvent::PhaseEnded {
            phase: "trial".into(),
            round: 0,
            elapsed_secs: 0.25,
        });
        m.on_event(&TraceEvent::PhaseEnded {
            phase: "measure".into(),
            round: 1,
            elapsed_secs: 1.5,
        });
        m.on_event(&TraceEvent::PhaseEnded {
            phase: "propose".into(),
            round: 1,
            elapsed_secs: 0.001,
        });
        m.on_event(&TraceEvent::PhaseStarted {
            phase: "fit".into(),
            round: 1,
        });
        m.record_wall("frame_wall", 0.002);
        assert_eq!(m.wall_histogram("trial_wall").unwrap().count(), 1);
        assert_eq!(m.wall_histogram("batch_wall").unwrap().count(), 1);
        assert_eq!(m.wall_histogram("phase_propose").unwrap().count(), 1);
        assert_eq!(m.wall_histogram("frame_wall").unwrap().count(), 1);
        assert!(m.wall_histogram("phase_fit").is_none());
        assert_eq!(
            m.wall_names(),
            vec!["batch_wall", "frame_wall", "phase_propose", "trial_wall"]
        );
        let json = m.to_json();
        assert!(json.contains("\"wall\":{"));
        assert!(json.contains("\"trial_wall\""));
        let parsed = jtune_util::json::parse(&json).unwrap();
        assert!(parsed.get("counters").is_some());
    }

    #[test]
    fn survives_mutex_poison() {
        use std::sync::Arc;
        let m = Arc::new(MetricsRegistry::new());
        m.on_event(&trial(Some(1.0)));
        let m2 = m.clone();
        // Poison the mutex by panicking while the guard is held.
        let _ = std::thread::spawn(move || {
            let _guard = m2.inner.lock().unwrap();
            panic!("poison");
        })
        .join();
        assert!(m.inner.lock().is_err(), "mutex should be poisoned");
        assert_eq!(m.counter("trials_evaluated"), 1);
        m.on_event(&trial(Some(2.0)));
        assert_eq!(m.counter("trials_evaluated"), 2);
        assert!(!m.render().is_empty());
        assert!(!m.to_json().is_empty());
    }

    #[test]
    fn render_mentions_all_recorded_metrics() {
        let m = MetricsRegistry::new();
        m.on_event(&trial(Some(1.0)));
        m.on_event(&TraceEvent::BudgetExhausted {
            spent_secs: 1.0,
            total_secs: 1.0,
            evaluations: 1,
        });
        let r = m.render();
        assert!(r.contains("trials_evaluated"));
        assert!(r.contains("budget_exhausted"));
        assert!(r.contains("trial_score"));
    }
}
