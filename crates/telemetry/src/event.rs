//! The typed trial-event model.
//!
//! Every observable step of a tuning session is one [`TraceEvent`]. The
//! stream is *complete* (every candidate evaluation appears exactly once
//! as [`TraceEvent::TrialEvaluated`], with its budget charge) and
//! *deterministic* (given the tuner seed, the same bytes are produced at
//! any worker count — see `jtune_harness::evaluate_batch` for the
//! ordering contract).

use jtune_util::json::JsonObject;

/// One structured event in a tuning session's trace.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A tuning session began.
    SessionStarted {
        /// Program (workload) being tuned.
        program: String,
        /// Executor description (`sim:...` / `process:...`).
        executor: String,
        /// Search technique name from the options.
        technique: String,
        /// Manipulator label (`hierarchical` / `flat` / `gc-subset`).
        manipulator: String,
        /// Tuning budget, seconds of virtual time.
        budget_secs: f64,
        /// Master seed (the whole trace is a pure function of it).
        seed: u64,
        /// Parallel evaluation workers. Deliberately NOT serialised:
        /// the JSONL trace is byte-identical at any worker count, so an
        /// execution detail that varies with the host must stay out of
        /// it. Live sinks (the progress reporter) still see it.
        workers: u64,
        /// Candidates proposed per round.
        batch: u64,
        /// Measurement repeats per candidate.
        repeats: u64,
    },
    /// The tuner proposed a round (batch) of candidates.
    RoundProposed {
        /// Round number (0 = the structural primer round).
        round: u64,
        /// Technique driving the round (`primer` for round 0).
        technique: String,
        /// Number of candidates in the round.
        candidates: u64,
    },
    /// The evaluation pool finished measuring one batch slot (raw,
    /// worker-level record; `slot` is the index within the batch).
    TrialMeasured {
        /// Candidate index within the batch.
        slot: usize,
        /// Successful per-repeat objective values, run order.
        repeat_secs: Vec<f64>,
        /// Budget cost of the whole evaluation.
        cost_secs: f64,
        /// First failure message, if any repeat failed.
        error: Option<String>,
        /// Classified failure kind (`crash` / `oom` / `timeout` /
        /// `flag-conflict`), present exactly when `error` is.
        error_kind: Option<String>,
    },
    /// The pipeline served a re-proposed configuration from the trial
    /// cache instead of re-measuring it.
    CacheHit {
        /// Candidate index within the batch.
        slot: usize,
        /// Canonical configuration fingerprint (the cache key).
        fingerprint: u64,
        /// The cached median score, seconds (`None` = cached failure).
        score_secs: Option<f64>,
        /// Budget charged for the hit (the re-charge policy's share of
        /// the original cost; 0 by default).
        cost_secs: f64,
        /// Budget the hit avoided spending (original cost − charge).
        saved_secs: f64,
    },
    /// A candidate was dropped because an earlier slot in the same batch
    /// proposed the identical configuration.
    DuplicateSuppressed {
        /// Candidate index within the batch.
        slot: usize,
        /// Earlier slot holding the identical configuration.
        of_slot: usize,
    },
    /// Racing abandoned a statistically hopeless candidate before its
    /// full repeat count, refunding the unspent repeats.
    TrialAborted {
        /// Candidate index within the batch.
        slot: usize,
        /// Successful runs completed before the abort.
        after_runs: u64,
        /// Mann-Whitney p-value at the abort.
        p_value: f64,
        /// Mann-Whitney effect (above 0.5 = slower than baseline).
        effect: f64,
        /// Estimated budget refunded, seconds.
        saved_secs: f64,
    },
    /// One candidate evaluation was scored and charged to the budget
    /// (session-level record; `index` matches `TrialRecord::index`).
    TrialEvaluated {
        /// Evaluation index within the session (0 = default config).
        index: u64,
        /// Technique that proposed the candidate (ensemble arms are
        /// attributed individually).
        technique: String,
        /// Flags changed from default, as command-line arguments.
        delta: Vec<String>,
        /// Successful per-repeat objective values, run order.
        repeat_secs: Vec<f64>,
        /// Median score (`None` = candidate failed).
        score_secs: Option<f64>,
        /// Budget charge for this evaluation.
        cost_secs: f64,
        /// Cumulative budget spent after the charge.
        budget_spent_secs: f64,
        /// Total stop-the-world GC pause time across repeats, ms
        /// (`None` when the executor cannot observe it).
        gc_pause_total_ms: Option<f64>,
        /// GC collections (young + full) across repeats.
        gc_collections: Option<u64>,
        /// JIT compile-stall time across repeats, ms.
        jit_compile_ms: Option<f64>,
        /// Methods JIT-compiled across repeats.
        jit_compiles: Option<u64>,
        /// First failure message, if the candidate failed.
        error: Option<String>,
        /// Classified failure kind, present exactly when `error` is.
        error_kind: Option<String>,
    },
    /// A candidate became the best found so far.
    BestImproved {
        /// Evaluation index of the new best.
        index: u64,
        /// Its score, seconds.
        score_secs: f64,
        /// Improvement over the default config, percent.
        improvement_percent: f64,
        /// Its flag delta.
        delta: Vec<String>,
    },
    /// The proposing technique changed between consecutive trials (for
    /// the AUC-bandit ensemble this traces arm switches).
    TechniqueSwitched {
        /// First evaluation index proposed by the new technique.
        index: u64,
        /// Previous technique.
        from: String,
        /// New technique.
        to: String,
    },
    /// A transient trial failure was retried under the retry policy
    /// (emitted before the run's [`TraceEvent::TrialMeasured`]).
    TrialRetried {
        /// Candidate index within the batch.
        slot: usize,
        /// Protocol repeat (0-based) the failed attempt belonged to.
        rep: u64,
        /// 0-based attempt index that failed (0 = the original try).
        attempt: u64,
        /// The transient failure message.
        error: String,
        /// Classified failure kind.
        error_kind: String,
        /// Budget charged for the failed attempt (backoff included).
        cost_secs: f64,
    },
    /// A configuration fingerprint was quarantined after a streak of
    /// deterministic failures; the tuner will not re-propose it.
    Quarantined {
        /// Canonical configuration fingerprint.
        fingerprint: u64,
        /// Deterministic-failure runs accumulated at the breaker.
        failures: u64,
        /// Kind of the failure that tripped the breaker.
        error_kind: String,
    },
    /// The surrogate model refit on the completed-trial history before
    /// screening a round's proposals.
    ModelFit {
        /// Round whose proposals the refit model will screen.
        round: u64,
        /// Completed observations the model is trained on.
        samples: u64,
        /// Whether the model actually refit (false: no new data since
        /// the previous fit, the cached model was reused).
        refit: bool,
    },
    /// The surrogate screened out an over-proposed candidate; it was
    /// never measured and cost no budget.
    CandidateScreened {
        /// Round the candidate was proposed in.
        round: u64,
        /// Canonical configuration fingerprint of the rejected config.
        fingerprint: u64,
        /// Surrogate-predicted score, virtual seconds.
        predicted_secs: f64,
        /// Acquisition value (`mean - kappa * std`) it was ranked by.
        acquisition: f64,
    },
    /// The write-ahead trial journal reached a consistent point (all
    /// completed trials durable); a kill after this event loses nothing.
    CheckpointWritten {
        /// Completed trials in the journal.
        trials: u64,
        /// Budget spent at the checkpoint, seconds.
        spent_secs: f64,
    },
    /// The session was reconstructed from a journal. *Ephemeral*: live
    /// sinks see it, but it is never serialised to the JSONL trace —
    /// a resumed session's trace must be byte-identical to an
    /// uninterrupted one (same precedent as the unserialised `workers`
    /// field).
    SessionResumed {
        /// Completed trials replayed from the journal.
        trials_replayed: u64,
    },
    /// A remote worker registered with the daemon. *Ephemeral*: which
    /// workers happen to be attached is deployment topology, not session
    /// content — a session's trace must be byte-identical with or
    /// without workers.
    WorkerRegistered {
        /// The worker id the daemon issued.
        wid: u64,
        /// The worker's executor capability tag (e.g. `"sim"`).
        executor: String,
        /// Concurrent trial slots the worker offers.
        slots: u64,
    },
    /// A trial was leased to a remote worker. *Ephemeral*, like
    /// [`TraceEvent::WorkerRegistered`]: where a trial executed varies
    /// run to run and never reaches the serialised trace.
    TrialLeased {
        /// The lease id.
        lease: u64,
        /// The session the trial belongs to.
        sid: u64,
        /// The worker the trial went to.
        wid: u64,
        /// Canonical fingerprint of the leased configuration.
        fingerprint: u64,
    },
    /// A lease expired (missed deadline, worker death, or an explicit
    /// `fail`) and its slot was reissued — to another worker or back to
    /// the local pool. *Ephemeral*, like
    /// [`TraceEvent::WorkerRegistered`].
    LeaseExpired {
        /// The lease that was lost.
        lease: u64,
        /// The worker that held it.
        wid: u64,
        /// Why it expired (`"deadline"`, `"worker-gone"`, `"failed"`).
        reason: String,
    },
    /// The daemon refused a connection or a submit under overload
    /// (connection limit hit, or the admission queue full).
    /// *Ephemeral*, like [`TraceEvent::WorkerRegistered`]: load shedding
    /// is deployment weather, not session content.
    ConnectionRejected {
        /// Why admission refused (`"conn-limit"`, `"overloaded"`).
        reason: String,
        /// The `retry_after_ms` hint handed to the peer (0 for
        /// connection-limit rejects, which carry no hint).
        retry_after_ms: u64,
    },
    /// A wire frame was rejected before decoding (over the size cap, or
    /// not UTF-8). *Ephemeral*, like [`TraceEvent::WorkerRegistered`].
    FrameRejected {
        /// The stable wire error code (`"frame-too-large"`,
        /// `"bad-frame"`).
        code: String,
        /// Bytes of the offending frame that were observed before the
        /// reject (for an oversized frame, at least the cap).
        bytes: u64,
    },
    /// A client retried a request after an `overloaded` reject or an
    /// I/O failure, under the jittered backoff policy. *Ephemeral*,
    /// like [`TraceEvent::WorkerRegistered`].
    ClientRetried {
        /// 0-based attempt index that failed (0 = the original try).
        attempt: u64,
        /// Milliseconds the client backed off before this retry.
        delay_ms: u64,
    },
    /// A worker lost its daemon connection and re-registered under the
    /// backoff policy instead of exiting. *Ephemeral*, like
    /// [`TraceEvent::WorkerRegistered`].
    WorkerReconnected {
        /// The worker id issued by the *new* registration.
        wid: u64,
        /// Reconnect attempts it took to get back in (1 = first retry
        /// succeeded).
        attempts: u64,
    },
    /// A timed tuning phase began (propose / screen / measure / fit /
    /// checkpoint; see [`crate::phase`]). *Ephemeral*: span events carry
    /// wall-clock timings that vary run to run, so they feed live sinks
    /// (the metrics registry, watch streams) but never the
    /// byte-deterministic JSONL trace.
    PhaseStarted {
        /// Phase name (one of the [`crate::phase`] constants).
        phase: String,
        /// Round the phase belongs to (0 = the primer round; for
        /// per-trial spans, the batch slot).
        round: u64,
    },
    /// A timed tuning phase ended. *Ephemeral*, like
    /// [`TraceEvent::PhaseStarted`]. Per-trial latency spans
    /// ([`crate::phase::TRIAL`]) emit only this closing event.
    PhaseEnded {
        /// Phase name (one of the [`crate::phase`] constants).
        phase: String,
        /// Round the phase belongs to (for per-trial spans, the slot).
        round: u64,
        /// Wall-clock time the phase took, seconds (host time, not
        /// virtual tuning time).
        elapsed_secs: f64,
    },
    /// The tuning budget was exhausted (emitted once, at the charge that
    /// crossed the limit).
    BudgetExhausted {
        /// Budget spent, seconds (may straddle past the total).
        spent_secs: f64,
        /// Budget total, seconds.
        total_secs: f64,
        /// Evaluations completed at exhaustion.
        evaluations: u64,
    },
    /// The session ended.
    SessionFinished {
        /// Program tuned.
        program: String,
        /// Default-configuration score, seconds.
        default_secs: f64,
        /// Best score found, seconds.
        best_secs: f64,
        /// Headline improvement, percent.
        improvement_percent: f64,
        /// Candidates evaluated.
        evaluations: u64,
        /// Budget spent, seconds.
        spent_secs: f64,
        /// Best configuration's flag delta.
        best_delta: Vec<String>,
    },
}

impl TraceEvent {
    /// Stable event-type tag (the JSON `type` field).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::SessionStarted { .. } => "SessionStarted",
            TraceEvent::RoundProposed { .. } => "RoundProposed",
            TraceEvent::TrialMeasured { .. } => "TrialMeasured",
            TraceEvent::CacheHit { .. } => "CacheHit",
            TraceEvent::DuplicateSuppressed { .. } => "DuplicateSuppressed",
            TraceEvent::TrialAborted { .. } => "TrialAborted",
            TraceEvent::TrialEvaluated { .. } => "TrialEvaluated",
            TraceEvent::TrialRetried { .. } => "TrialRetried",
            TraceEvent::Quarantined { .. } => "Quarantined",
            TraceEvent::ModelFit { .. } => "ModelFit",
            TraceEvent::CandidateScreened { .. } => "CandidateScreened",
            TraceEvent::CheckpointWritten { .. } => "CheckpointWritten",
            TraceEvent::SessionResumed { .. } => "SessionResumed",
            TraceEvent::WorkerRegistered { .. } => "WorkerRegistered",
            TraceEvent::TrialLeased { .. } => "TrialLeased",
            TraceEvent::LeaseExpired { .. } => "LeaseExpired",
            TraceEvent::ConnectionRejected { .. } => "ConnectionRejected",
            TraceEvent::FrameRejected { .. } => "FrameRejected",
            TraceEvent::ClientRetried { .. } => "ClientRetried",
            TraceEvent::WorkerReconnected { .. } => "WorkerReconnected",
            TraceEvent::PhaseStarted { .. } => "PhaseStarted",
            TraceEvent::PhaseEnded { .. } => "PhaseEnded",
            TraceEvent::BestImproved { .. } => "BestImproved",
            TraceEvent::TechniqueSwitched { .. } => "TechniqueSwitched",
            TraceEvent::BudgetExhausted { .. } => "BudgetExhausted",
            TraceEvent::SessionFinished { .. } => "SessionFinished",
        }
    }

    /// Is this event live-only — meaningful to an attached observer but
    /// excluded from the serialised JSONL trace?
    /// [`TraceEvent::SessionResumed`] describes *how this process
    /// reached* its state, not the session itself, and a resumed trace
    /// must match the uninterrupted one byte for byte. The span events
    /// ([`TraceEvent::PhaseStarted`] / [`TraceEvent::PhaseEnded`]) carry
    /// wall-clock timings that differ run to run, so serialising them
    /// would break the trace's byte-determinism contract. The worker-
    /// plane events ([`TraceEvent::WorkerRegistered`] /
    /// [`TraceEvent::TrialLeased`] / [`TraceEvent::LeaseExpired`])
    /// describe deployment topology — which host ran a trial — and a
    /// distributed session's trace must stay byte-identical to a
    /// single-host run.
    pub fn is_ephemeral(&self) -> bool {
        matches!(
            self,
            TraceEvent::SessionResumed { .. }
                | TraceEvent::WorkerRegistered { .. }
                | TraceEvent::TrialLeased { .. }
                | TraceEvent::LeaseExpired { .. }
                | TraceEvent::ConnectionRejected { .. }
                | TraceEvent::FrameRejected { .. }
                | TraceEvent::ClientRetried { .. }
                | TraceEvent::WorkerReconnected { .. }
                | TraceEvent::PhaseStarted { .. }
                | TraceEvent::PhaseEnded { .. }
        )
    }

    /// Render as one JSON object (one line of the JSONL trace).
    pub fn to_json(&self) -> String {
        let o = JsonObject::new().str("type", self.kind());
        match self {
            TraceEvent::SessionStarted {
                program,
                executor,
                technique,
                manipulator,
                budget_secs,
                seed,
                workers: _,
                batch,
                repeats,
            } => o
                .str("program", program)
                .str("executor", executor)
                .str("technique", technique)
                .str("manipulator", manipulator)
                .f64("budget_secs", *budget_secs)
                .u64("seed", *seed)
                .u64("batch", *batch)
                .u64("repeats", *repeats)
                .finish(),
            TraceEvent::RoundProposed {
                round,
                technique,
                candidates,
            } => o
                .u64("round", *round)
                .str("technique", technique)
                .u64("candidates", *candidates)
                .finish(),
            TraceEvent::TrialMeasured {
                slot,
                repeat_secs,
                cost_secs,
                error,
                error_kind,
            } => {
                let mut o = o
                    .u64("slot", *slot as u64)
                    .f64_array("repeat_secs", repeat_secs)
                    .f64("cost_secs", *cost_secs)
                    .opt_str("error", error.as_deref());
                if let Some(kind) = error_kind {
                    o = o.str("error_kind", kind);
                }
                o.finish()
            }
            TraceEvent::CacheHit {
                slot,
                fingerprint,
                score_secs,
                cost_secs,
                saved_secs,
            } => o
                .u64("slot", *slot as u64)
                .u64("fingerprint", *fingerprint)
                .opt_f64("score_secs", *score_secs)
                .f64("cost_secs", *cost_secs)
                .f64("saved_secs", *saved_secs)
                .finish(),
            TraceEvent::DuplicateSuppressed { slot, of_slot } => o
                .u64("slot", *slot as u64)
                .u64("of_slot", *of_slot as u64)
                .finish(),
            TraceEvent::TrialAborted {
                slot,
                after_runs,
                p_value,
                effect,
                saved_secs,
            } => o
                .u64("slot", *slot as u64)
                .u64("after_runs", *after_runs)
                .f64("p_value", *p_value)
                .f64("effect", *effect)
                .f64("saved_secs", *saved_secs)
                .finish(),
            TraceEvent::TrialEvaluated {
                index,
                technique,
                delta,
                repeat_secs,
                score_secs,
                cost_secs,
                budget_spent_secs,
                gc_pause_total_ms,
                gc_collections,
                jit_compile_ms,
                jit_compiles,
                error,
                error_kind,
            } => {
                let mut o = o
                    .u64("index", *index)
                    .str("technique", technique)
                    .str_array("delta", delta)
                    .f64_array("repeat_secs", repeat_secs)
                    .opt_f64("score_secs", *score_secs)
                    .f64("cost_secs", *cost_secs)
                    .f64("budget_spent_secs", *budget_spent_secs)
                    .opt_f64("gc_pause_total_ms", *gc_pause_total_ms)
                    .opt_f64("jit_compile_ms", *jit_compile_ms);
                if let Some(n) = gc_collections {
                    o = o.u64("gc_collections", *n);
                }
                if let Some(n) = jit_compiles {
                    o = o.u64("jit_compiles", *n);
                }
                o = o.opt_str("error", error.as_deref());
                if let Some(kind) = error_kind {
                    o = o.str("error_kind", kind);
                }
                o.finish()
            }
            TraceEvent::TrialRetried {
                slot,
                rep,
                attempt,
                error,
                error_kind,
                cost_secs,
            } => o
                .u64("slot", *slot as u64)
                .u64("rep", *rep)
                .u64("attempt", *attempt)
                .str("error", error)
                .str("error_kind", error_kind)
                .f64("cost_secs", *cost_secs)
                .finish(),
            TraceEvent::Quarantined {
                fingerprint,
                failures,
                error_kind,
            } => o
                .u64("fingerprint", *fingerprint)
                .u64("failures", *failures)
                .str("error_kind", error_kind)
                .finish(),
            TraceEvent::ModelFit {
                round,
                samples,
                refit,
            } => o
                .u64("round", *round)
                .u64("samples", *samples)
                .bool("refit", *refit)
                .finish(),
            TraceEvent::CandidateScreened {
                round,
                fingerprint,
                predicted_secs,
                acquisition,
            } => o
                .u64("round", *round)
                .u64("fingerprint", *fingerprint)
                .f64("predicted_secs", *predicted_secs)
                .f64("acquisition", *acquisition)
                .finish(),
            TraceEvent::CheckpointWritten { trials, spent_secs } => o
                .u64("trials", *trials)
                .f64("spent_secs", *spent_secs)
                .finish(),
            TraceEvent::SessionResumed { trials_replayed } => {
                o.u64("trials_replayed", *trials_replayed).finish()
            }
            TraceEvent::WorkerRegistered {
                wid,
                executor,
                slots,
            } => o
                .u64("wid", *wid)
                .str("executor", executor)
                .u64("slots", *slots)
                .finish(),
            TraceEvent::TrialLeased {
                lease,
                sid,
                wid,
                fingerprint,
            } => o
                .u64("lease", *lease)
                .u64("sid", *sid)
                .u64("wid", *wid)
                .u64("fingerprint", *fingerprint)
                .finish(),
            TraceEvent::LeaseExpired { lease, wid, reason } => o
                .u64("lease", *lease)
                .u64("wid", *wid)
                .str("reason", reason)
                .finish(),
            TraceEvent::ConnectionRejected {
                reason,
                retry_after_ms,
            } => o
                .str("reason", reason)
                .u64("retry_after_ms", *retry_after_ms)
                .finish(),
            TraceEvent::FrameRejected { code, bytes } => {
                o.str("code", code).u64("bytes", *bytes).finish()
            }
            TraceEvent::ClientRetried { attempt, delay_ms } => o
                .u64("attempt", *attempt)
                .u64("delay_ms", *delay_ms)
                .finish(),
            TraceEvent::WorkerReconnected { wid, attempts } => {
                o.u64("wid", *wid).u64("attempts", *attempts).finish()
            }
            TraceEvent::PhaseStarted { phase, round } => {
                o.str("phase", phase).u64("round", *round).finish()
            }
            TraceEvent::PhaseEnded {
                phase,
                round,
                elapsed_secs,
            } => o
                .str("phase", phase)
                .u64("round", *round)
                .f64("elapsed_secs", *elapsed_secs)
                .finish(),
            TraceEvent::BestImproved {
                index,
                score_secs,
                improvement_percent,
                delta,
            } => o
                .u64("index", *index)
                .f64("score_secs", *score_secs)
                .f64("improvement_percent", *improvement_percent)
                .str_array("delta", delta)
                .finish(),
            TraceEvent::TechniqueSwitched { index, from, to } => o
                .u64("index", *index)
                .str("from", from)
                .str("to", to)
                .finish(),
            TraceEvent::BudgetExhausted {
                spent_secs,
                total_secs,
                evaluations,
            } => o
                .f64("spent_secs", *spent_secs)
                .f64("total_secs", *total_secs)
                .u64("evaluations", *evaluations)
                .finish(),
            TraceEvent::SessionFinished {
                program,
                default_secs,
                best_secs,
                improvement_percent,
                evaluations,
                spent_secs,
                best_delta,
            } => o
                .str("program", program)
                .f64("default_secs", *default_secs)
                .f64("best_secs", *best_secs)
                .f64("improvement_percent", *improvement_percent)
                .u64("evaluations", *evaluations)
                .f64("spent_secs", *spent_secs)
                .str_array("best_delta", best_delta)
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_renders_with_type_tag() {
        let events = [
            TraceEvent::SessionStarted {
                program: "p".into(),
                executor: "sim:p".into(),
                technique: "ensemble".into(),
                manipulator: "hierarchical".into(),
                budget_secs: 60.0,
                seed: 7,
                workers: 4,
                batch: 4,
                repeats: 3,
            },
            TraceEvent::RoundProposed {
                round: 1,
                technique: "ensemble".into(),
                candidates: 4,
            },
            TraceEvent::TrialMeasured {
                slot: 0,
                repeat_secs: vec![1.0],
                cost_secs: 1.5,
                error: None,
                error_kind: None,
            },
            TraceEvent::CacheHit {
                slot: 1,
                fingerprint: 0xDEAD_BEEF,
                score_secs: Some(1.1),
                cost_secs: 0.0,
                saved_secs: 3.8,
            },
            TraceEvent::DuplicateSuppressed {
                slot: 2,
                of_slot: 0,
            },
            TraceEvent::TrialAborted {
                slot: 3,
                after_runs: 2,
                p_value: 0.149,
                effect: 1.0,
                saved_secs: 1.4,
            },
            TraceEvent::TrialEvaluated {
                index: 1,
                technique: "random".into(),
                delta: vec!["-XX:+UseG1GC".into()],
                repeat_secs: vec![1.0, 1.1],
                score_secs: Some(1.05),
                cost_secs: 2.6,
                budget_spent_secs: 4.1,
                gc_pause_total_ms: Some(12.0),
                gc_collections: Some(3),
                jit_compile_ms: Some(40.0),
                jit_compiles: Some(200),
                error: None,
                error_kind: None,
            },
            TraceEvent::BestImproved {
                index: 1,
                score_secs: 1.05,
                improvement_percent: 4.2,
                delta: vec![],
            },
            TraceEvent::TechniqueSwitched {
                index: 2,
                from: "random".into(),
                to: "ils".into(),
            },
            TraceEvent::TrialRetried {
                slot: 1,
                rep: 0,
                attempt: 0,
                error: "injected hang: run timed out".into(),
                error_kind: "timeout".into(),
                cost_secs: 120.5,
            },
            TraceEvent::Quarantined {
                fingerprint: 0xBAD,
                failures: 3,
                error_kind: "oom".into(),
            },
            TraceEvent::ModelFit {
                round: 4,
                samples: 17,
                refit: true,
            },
            TraceEvent::CandidateScreened {
                round: 4,
                fingerprint: 0xFEED,
                predicted_secs: 2.4,
                acquisition: 2.1,
            },
            TraceEvent::CheckpointWritten {
                trials: 17,
                spent_secs: 301.5,
            },
            TraceEvent::SessionResumed {
                trials_replayed: 17,
            },
            TraceEvent::ConnectionRejected {
                reason: "overloaded".into(),
                retry_after_ms: 250,
            },
            TraceEvent::FrameRejected {
                code: "frame-too-large".into(),
                bytes: 1 << 20,
            },
            TraceEvent::ClientRetried {
                attempt: 0,
                delay_ms: 120,
            },
            TraceEvent::WorkerReconnected { wid: 3, attempts: 2 },
            TraceEvent::PhaseStarted {
                phase: "propose".into(),
                round: 4,
            },
            TraceEvent::PhaseEnded {
                phase: "propose".into(),
                round: 4,
                elapsed_secs: 0.002,
            },
            TraceEvent::BudgetExhausted {
                spent_secs: 61.0,
                total_secs: 60.0,
                evaluations: 9,
            },
            TraceEvent::SessionFinished {
                program: "p".into(),
                default_secs: 1.2,
                best_secs: 1.05,
                improvement_percent: 14.3,
                evaluations: 9,
                spent_secs: 61.0,
                best_delta: vec![],
            },
        ];
        for e in &events {
            let j = e.to_json();
            assert!(
                j.starts_with(&format!("{{\"type\":\"{}\"", e.kind())),
                "{j}"
            );
            assert!(j.ends_with('}'));
        }
    }

    #[test]
    fn only_live_only_events_are_ephemeral() {
        assert!(TraceEvent::SessionResumed { trials_replayed: 2 }.is_ephemeral());
        assert!(TraceEvent::PhaseStarted {
            phase: "measure".into(),
            round: 1
        }
        .is_ephemeral());
        assert!(TraceEvent::PhaseEnded {
            phase: "measure".into(),
            round: 1,
            elapsed_secs: 0.5
        }
        .is_ephemeral());
        assert!(TraceEvent::ConnectionRejected {
            reason: "conn-limit".into(),
            retry_after_ms: 0
        }
        .is_ephemeral());
        assert!(TraceEvent::FrameRejected {
            code: "frame-too-large".into(),
            bytes: 9
        }
        .is_ephemeral());
        assert!(TraceEvent::ClientRetried {
            attempt: 1,
            delay_ms: 10
        }
        .is_ephemeral());
        assert!(TraceEvent::WorkerReconnected {
            wid: 1,
            attempts: 1
        }
        .is_ephemeral());
        assert!(!TraceEvent::CheckpointWritten {
            trials: 2,
            spent_secs: 1.0
        }
        .is_ephemeral());
        assert!(!TraceEvent::Quarantined {
            fingerprint: 1,
            failures: 3,
            error_kind: "oom".into()
        }
        .is_ephemeral());
    }

    #[test]
    fn failed_trial_serialises_score_null_and_error() {
        let e = TraceEvent::TrialEvaluated {
            index: 3,
            technique: "anneal".into(),
            delta: vec![],
            repeat_secs: vec![],
            score_secs: None,
            cost_secs: 0.7,
            budget_spent_secs: 9.0,
            gc_pause_total_ms: None,
            gc_collections: None,
            jit_compile_ms: None,
            jit_compiles: None,
            error: Some("java.lang.OutOfMemoryError: Java heap space".into()),
            error_kind: Some("oom".into()),
        };
        let j = e.to_json();
        assert!(j.contains("\"score_secs\":null"));
        assert!(j.contains("OutOfMemoryError"));
        assert!(j.contains("\"error_kind\":\"oom\""));
    }

    #[test]
    fn successful_trial_omits_error_kind() {
        let e = TraceEvent::TrialMeasured {
            slot: 0,
            repeat_secs: vec![1.0],
            cost_secs: 1.5,
            error: None,
            error_kind: None,
        };
        // Legacy traces predate `error_kind`; successful trials must
        // serialise to the same bytes they always did.
        assert!(!e.to_json().contains("error_kind"));
    }
}
