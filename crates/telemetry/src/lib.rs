//! # jtune-telemetry
//!
//! Structured observability for the tuning stack: a typed trial-event
//! model ([`TraceEvent`]), an observer trait ([`TuningObserver`]) with a
//! fan-out bus ([`TelemetryBus`]), and four built-in sinks:
//!
//! - [`MemoryRecorder`] — in-memory event log (tests, post-run analysis);
//! - [`JsonlSink`] — JSON Lines trace file (the `--trace` surface);
//! - [`MetricsRegistry`] — counters + latency histograms over the stream;
//! - [`MetricsSink`] — file-backed registry snapshots (the `--metrics`
//!   surface), flushed on session finish and on drop;
//! - [`ProgressReporter`] — live human-readable progress on stderr
//!   (the `--progress` surface).
//!
//! ## Timing spans
//!
//! With [`TelemetryBus::with_spans`] enabled, instrumented code emits
//! paired [`TraceEvent::PhaseStarted`] / [`TraceEvent::PhaseEnded`]
//! events around each tuner phase (see [`bus::phase`] for the canonical
//! names) carrying real wall-clock elapsed time. Span events are
//! *ephemeral* — live sinks see them, but [`JsonlSink`] never serialises
//! them — so the JSONL trace stays byte-identical whether spans are on
//! or off. [`MetricsRegistry`] folds them into deterministic
//! fixed-bucket wall histograms ([`FixedHistogram`]).
//!
//! ## Determinism contract
//!
//! A traced tuning session is *bit-deterministic given its seed*: the
//! emitting side (the tuner and the evaluation pool) delivers events in
//! candidate order regardless of worker count — parallel workers buffer
//! per-slot and the batch flushes in order after it joins — so the JSONL
//! bytes of a `workers = 1` run equal those of a `workers = 8` run. The
//! evaluation-pipeline events ([`TraceEvent::CacheHit`],
//! [`TraceEvent::DuplicateSuppressed`], [`TraceEvent::TrialAborted`])
//! follow the same slot-ordered contract. The integration tests
//! `tests/telemetry.rs` and `tests/pipeline.rs` lock this in.
//!
//! ## Auditability
//!
//! Every candidate evaluation appears exactly once as
//! [`TraceEvent::TrialEvaluated`] carrying its budget charge; summing
//! the charges reproduces the session's spent budget exactly. This is
//! what makes the paper-style headline numbers (19 % / 26 % average
//! improvement within a 200-minute budget) auditable from a trace alone.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod bus;
pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod progress;
pub mod recorder;
pub mod sink;
pub mod stream;

pub use bus::{phase, SpanGuard, TelemetryBus, TuningObserver};
pub use event::TraceEvent;
pub use jsonl::JsonlSink;
pub use metrics::{FixedHistogram, MetricsRegistry, WALL_BUCKETS};
pub use progress::ProgressReporter;
pub use recorder::MemoryRecorder;
pub use sink::MetricsSink;
pub use stream::EventStreamSink;
