//! File-backed metrics snapshot sink.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::bus::TuningObserver;
use crate::event::TraceEvent;
use crate::metrics::MetricsRegistry;

/// Aggregates events into a [`MetricsRegistry`] and persists rendered
/// snapshots to a file.
///
/// Snapshots are buffered — the file is only (re)written on
/// [`TuningObserver::flush`], on `SessionFinished`, and on drop — so
/// the per-event cost is one registry update, not one filesystem write.
/// Every lock acquisition recovers from mutex poison, and the drop path
/// flushes whatever was aggregated, so a truncated (panicking) run still
/// leaves a parseable metrics file behind. Writes are atomic
/// (temp-file + rename): a reader never observes a half-written
/// snapshot. Write errors are counted, not propagated — telemetry must
/// never fail a tuning run.
#[derive(Debug)]
pub struct MetricsSink {
    registry: Arc<MetricsRegistry>,
    path: PathBuf,
    dirty: Mutex<bool>,
    write_errors: std::sync::atomic::AtomicU64,
}

impl MetricsSink {
    /// Snapshot metrics to `path` using a fresh registry. Parent
    /// directories are created as needed; an empty snapshot is written
    /// immediately so the file exists even if no event ever arrives.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<MetricsSink> {
        MetricsSink::with_registry(path, Arc::new(MetricsRegistry::new()))
    }

    /// Snapshot an externally shared registry to `path` — the caller
    /// keeps its `Arc` and can read live values while the sink persists
    /// them.
    pub fn with_registry(
        path: impl AsRef<Path>,
        registry: Arc<MetricsRegistry>,
    ) -> std::io::Result<MetricsSink> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let sink = MetricsSink {
            registry,
            path: path.to_path_buf(),
            dirty: Mutex::new(false),
            write_errors: std::sync::atomic::AtomicU64::new(0),
        };
        sink.write_snapshot()?;
        Ok(sink)
    }

    /// The registry this sink aggregates into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The snapshot file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of snapshots dropped because the underlying write failed.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(std::sync::atomic::Ordering::Relaxed)
    }

    fn write_snapshot(&self) -> std::io::Result<()> {
        let text = self.registry.render();
        let tmp = self.path.with_extension("tmp");
        fs::write(&tmp, text)?;
        fs::rename(&tmp, &self.path)
    }

    fn flush_if_dirty(&self) {
        // Poison recovery IS the flush path here: if an observer thread
        // panicked mid-update we still persist the partial aggregate.
        let mut dirty = self.dirty.lock().unwrap_or_else(|p| p.into_inner());
        if *dirty {
            match self.write_snapshot() {
                Ok(()) => *dirty = false,
                Err(_) => {
                    self.write_errors
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
    }
}

impl TuningObserver for MetricsSink {
    fn on_event(&self, event: &TraceEvent) {
        self.registry.on_event(event);
        *self.dirty.lock().unwrap_or_else(|p| p.into_inner()) = true;
        // A finished session is the last event the bus guarantees; write
        // the snapshot now rather than relying on the drop order.
        if matches!(event, TraceEvent::SessionFinished { .. }) {
            self.flush_if_dirty();
        }
    }

    fn flush(&self) {
        self.flush_if_dirty();
    }
}

impl Drop for MetricsSink {
    fn drop(&mut self) {
        self.flush_if_dirty();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("jtune-metrics-sink-{tag}-{}", std::process::id()))
    }

    fn round(round: u64) -> TraceEvent {
        TraceEvent::RoundProposed {
            round,
            technique: "t".into(),
            candidates: 1,
        }
    }

    #[test]
    fn writes_empty_snapshot_on_create_and_updates_on_flush() {
        let dir = tmp_path("basic");
        let path = dir.join("nested/metrics.txt");
        let sink = MetricsSink::create(&path).expect("create");
        assert!(path.exists(), "create writes an initial snapshot");
        sink.on_event(&round(0));
        sink.on_event(&round(1));
        // Buffered: the file still holds the initial (empty) snapshot.
        assert!(!fs::read_to_string(&path)
            .unwrap()
            .contains("rounds_proposed   2"));
        sink.flush();
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("rounds_proposed"));
        assert_eq!(sink.write_errors(), 0);
        drop(sink);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flushes_on_drop() {
        let dir = tmp_path("drop");
        let path = dir.join("metrics.txt");
        {
            let sink = MetricsSink::create(&path).expect("create");
            sink.on_event(&round(0));
            // No explicit flush: drop must persist it.
        }
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("rounds_proposed"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flushes_on_session_finished() {
        let dir = tmp_path("finish");
        let path = dir.join("metrics.txt");
        let sink = MetricsSink::create(&path).expect("create");
        sink.on_event(&round(0));
        sink.on_event(&TraceEvent::SessionFinished {
            program: "p".into(),
            default_secs: 2.0,
            best_secs: 1.0,
            improvement_percent: 50.0,
            evaluations: 1,
            spent_secs: 1.0,
            best_delta: vec![],
        });
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("sessions_finished"));
        drop(sink);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poison_recovery_still_flushes() {
        let dir = tmp_path("poison");
        let path = dir.join("metrics.txt");
        let sink = Arc::new(MetricsSink::create(&path).expect("create"));
        sink.on_event(&round(0));
        let s2 = sink.clone();
        let _ = std::thread::spawn(move || {
            let _guard = s2.dirty.lock().unwrap();
            panic!("poison");
        })
        .join();
        assert!(sink.dirty.lock().is_err(), "mutex should be poisoned");
        sink.flush();
        let text = fs::read_to_string(&path).unwrap();
        assert!(
            text.contains("rounds_proposed"),
            "poisoned sink still persists its aggregate"
        );
        drop(sink);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_registry_is_visible_to_caller() {
        let dir = tmp_path("shared");
        let path = dir.join("metrics.txt");
        let registry = Arc::new(MetricsRegistry::new());
        let sink = MetricsSink::with_registry(&path, registry.clone()).expect("create");
        sink.on_event(&round(0));
        assert_eq!(registry.counter("rounds_proposed"), 1);
        drop(sink);
        let _ = fs::remove_dir_all(&dir);
    }
}
