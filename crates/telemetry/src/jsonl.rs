//! JSONL file sink: one event per line, append-ordered.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::bus::TuningObserver;
use crate::event::TraceEvent;

/// Streams events to a file as JSON Lines.
///
/// Writes are buffered; the stream is flushed on [`TuningObserver::flush`]
/// and on drop. Write errors after a successful open are counted, not
/// propagated (telemetry must never fail a tuning run), and surfaced via
/// [`JsonlSink::write_errors`].
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<BufWriter<File>>,
    write_errors: std::sync::atomic::AtomicU64,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream events into it. Parent
    /// directories are created as needed.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(BufWriter::new(file)),
            write_errors: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Number of events dropped because the underlying write failed.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl TuningObserver for JsonlSink {
    fn on_event(&self, event: &TraceEvent) {
        // Ephemeral events (SessionResumed) describe this process, not
        // the session: serialising them would fork a resumed trace from
        // the uninterrupted one it must match byte for byte.
        if event.is_ephemeral() {
            return;
        }
        // A panic on another observer thread poisons the lock but leaves
        // the writer usable; recover instead of panicking the caller.
        let mut out = self.out.lock().unwrap_or_else(|p| p.into_inner());
        let line = event.to_json();
        if writeln!(out, "{line}").is_err() {
            self.write_errors
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().unwrap_or_else(|p| p.into_inner()).flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.out.lock().unwrap_or_else(|p| p.into_inner()).flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_one_line_per_event_and_creates_parents() {
        let dir = std::env::temp_dir().join(format!("jtune-jsonl-{}", std::process::id()));
        let path = dir.join("nested/trace.jsonl");
        let sink = JsonlSink::create(&path).expect("create");
        let e = TraceEvent::RoundProposed {
            round: 0,
            technique: "t".into(),
            candidates: 1,
        };
        sink.on_event(&e);
        sink.on_event(&e);
        sink.flush();
        let content = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(content.lines().count(), 2);
        for line in content.lines() {
            assert!(line.starts_with("{\"type\":\"RoundProposed\""));
        }
        assert_eq!(sink.write_errors(), 0);
        drop(sink);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn ephemeral_events_are_not_serialised() {
        let dir = std::env::temp_dir().join(format!("jtune-jsonl-eph-{}", std::process::id()));
        let path = dir.join("trace.jsonl");
        let sink = JsonlSink::create(&path).expect("create");
        sink.on_event(&TraceEvent::SessionResumed { trials_replayed: 5 });
        sink.on_event(&TraceEvent::CheckpointWritten {
            trials: 5,
            spent_secs: 1.0,
        });
        sink.flush();
        let content = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(content.lines().count(), 1);
        assert!(content.contains("CheckpointWritten"));
        assert!(!content.contains("SessionResumed"));
        drop(sink);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
