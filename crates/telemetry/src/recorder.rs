//! In-memory event recorder (tests, post-run analysis).

use std::sync::Mutex;

use crate::bus::TuningObserver;
use crate::event::TraceEvent;

/// Records every event it sees; read back with
/// [`MemoryRecorder::events`] or [`MemoryRecorder::to_jsonl`].
#[derive(Debug, Default)]
pub struct MemoryRecorder {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemoryRecorder {
    /// Empty recorder.
    pub fn new() -> MemoryRecorder {
        MemoryRecorder::default()
    }

    /// Snapshot of all recorded events, in arrival order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("recorder poisoned").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("recorder poisoned").len()
    }

    /// Has nothing been recorded?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drain the recorded events, leaving the recorder empty.
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("recorder poisoned"))
    }

    /// Render the recorded stream as JSONL (one event per line).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events.lock().expect("recorder poisoned").iter() {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

impl TuningObserver for MemoryRecorder {
    fn on_event(&self, event: &TraceEvent) {
        self.events
            .lock()
            .expect("recorder poisoned")
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_drains() {
        let r = MemoryRecorder::new();
        assert!(r.is_empty());
        let e = TraceEvent::RoundProposed {
            round: 1,
            technique: "x".into(),
            candidates: 2,
        };
        r.on_event(&e);
        r.on_event(&e);
        assert_eq!(r.len(), 2);
        assert!(r.to_jsonl().lines().count() == 2);
        assert_eq!(r.take().len(), 2);
        assert!(r.is_empty());
    }
}
