//! Table-driven fuzzing of the wire decoders.
//!
//! Every frame a peer can send — truncated, oversized, non-UTF-8, or
//! structurally valid JSON with junk fields — must come back as a
//! structured [`WireError`] with a stable code. No input may panic a
//! decoder, and no failure may surface as an ad-hoc code outside the
//! documented set.

use std::io::BufReader;

use jtune_server::{
    read_frame, FrameReadError, LeaseOffer, Reconnect, Request, Response, SessionSpec, TrialOutcome,
};
use jtune_server::wire::{error_frame, parse_reply, parse_request, parse_response, render_request, render_response};

/// Every error code the request/response decoders are allowed to emit.
const STABLE_CODES: &[&str] = &[
    "bad-frame",
    "bad-version",
    "unknown-op",
    "invalid-spec",
    "server-error",
];

fn assert_stable(code: &str, context: &str) {
    assert!(
        STABLE_CODES.contains(&code),
        "unstable error code {code:?} for {context}"
    );
}

#[test]
fn junk_request_frames_decode_to_stable_codes() {
    let table: &[(&str, &str)] = &[
        // Not JSON at all.
        ("", "bad-frame"),
        ("this is not json", "bad-frame"),
        ("{", "bad-frame"),
        ("[]", "bad-frame"),
        ("null", "bad-frame"),
        ("{}", "bad-frame"),
        // Version gate.
        ("{\"v\":9,\"op\":\"status\"}", "bad-version"),
        ("{\"v\":\"one\",\"op\":\"status\"}", "bad-frame"),
        ("{\"op\":\"status\"}", "bad-frame"),
        // Op dispatch.
        ("{\"v\":1}", "bad-frame"),
        ("{\"v\":1,\"op\":\"levitate\"}", "unknown-op"),
        ("{\"v\":1,\"op\":42}", "bad-frame"),
        // Junk fields where the op needs typed values.
        ("{\"v\":1,\"op\":\"submit\"}", "invalid-spec"),
        ("{\"v\":1,\"op\":\"submit\",\"program\":7}", "invalid-spec"),
        ("{\"v\":1,\"op\":\"watch\"}", "bad-frame"),
        ("{\"v\":1,\"op\":\"watch\",\"sid\":\"nope\"}", "bad-frame"),
        ("{\"v\":1,\"op\":\"result\",\"sid\":-3}", "bad-frame"),
        ("{\"v\":1,\"op\":\"cancel\",\"sid\":null}", "bad-frame"),
        ("{\"v\":1,\"op\":\"register\",\"slots\":1}", "bad-frame"),
        (
            "{\"v\":1,\"op\":\"register\",\"executor\":3,\"slots\":1}",
            "bad-frame",
        ),
        ("{\"v\":1,\"op\":\"lease\",\"wid\":1}", "bad-frame"),
        (
            "{\"v\":1,\"op\":\"complete\",\"wid\":1,\"lease\":2}",
            "bad-frame",
        ),
        (
            "{\"v\":1,\"op\":\"heartbeat\",\"wid\":1,\"leases\":[1,\"x\"]}",
            "bad-frame",
        ),
        ("{\"v\":1,\"op\":\"deregister\",\"wid\":{}}", "bad-frame"),
    ];
    for (line, want) in table {
        let err = parse_request(line).expect_err(&format!("{line:?} must not decode"));
        assert_eq!(err.code, *want, "{line:?} → {err}");
        assert_stable(&err.code, line);
    }
}

#[test]
fn junk_reply_frames_decode_to_stable_codes() {
    let table: &[(&str, &str)] = &[
        ("", "bad-frame"),
        ("garbage", "bad-frame"),
        ("{\"v\":1,\"ok\":true}", "bad-frame"),
        ("{\"v\":1,\"ok\":true,\"idle\":\"yes\"}", "bad-frame"),
        // Error frames pass the server's code through verbatim...
        ("{\"v\":1,\"ok\":false}", "server-error"),
        // ...and lease offers missing required fields are bad frames.
        ("{\"v\":1,\"ok\":true,\"lease\":3,\"sid\":4}", "bad-frame"),
        (
            "{\"v\":1,\"ok\":true,\"lease\":3,\"sid\":4,\"slot\":0,\"seed\":1,\"fingerprint\":2,\"deadline_ms\":5}",
            "bad-frame",
        ),
        (
            "{\"v\":1,\"ok\":true,\"lease\":3,\"sid\":4,\"slot\":0,\"seed\":1,\"fingerprint\":2,\"executor\":\"sim\",\"deadline_ms\":5,\"config\":[1]}",
            "bad-frame",
        ),
    ];
    for (line, want) in table {
        let err = parse_response(line).expect_err(&format!("{line:?} must not decode"));
        assert_eq!(err.code, *want, "{line:?} → {err}");
        assert_stable(&err.code, line);
    }
}

#[test]
fn overload_hints_survive_the_reply_decoder() {
    let line = "{\"v\":1,\"ok\":false,\"code\":\"overloaded\",\"error\":\"busy\",\"retry_after_ms\":250}";
    let err = parse_reply(line).expect_err("error frame");
    assert_eq!(err.code, "overloaded");
    assert_eq!(err.retry_after_ms, Some(250));
    // And the round trip through error_frame is lossless.
    assert_eq!(error_frame(&err), line);
}

fn sample_requests() -> Vec<Request> {
    vec![
        Request::Submit(SessionSpec {
            program: "compress".into(),
            budget_mins: 30,
            seed: 11,
            max_evaluations: Some(64),
            screen_ratio: Some(4.0),
            technique: Some("portfolio".into()),
        }),
        Request::Status { sid: Some(3) },
        Request::Watch { sid: 9 },
        Request::Result { sid: 4 },
        Request::Cancel { sid: 5 },
        Request::Stats { sid: None },
        Request::Shutdown { drain: true },
        Request::Register {
            executor: "sim".into(),
            slots: 2,
            reconnect: Some(Reconnect {
                prev_wid: 7,
                attempts: 2,
            }),
        },
        Request::Lease {
            wid: 1,
            wait_ms: 500,
        },
        Request::Complete {
            wid: 1,
            lease: 8,
            outcome: TrialOutcome {
                time_ns: 12_345,
                pause_p99_ns: Some(77),
                ..TrialOutcome::default()
            },
        },
        Request::Fail {
            wid: 1,
            lease: 8,
            reason: "lost".into(),
        },
        Request::Heartbeat {
            wid: 1,
            leases: vec![8, 9],
        },
        Request::Deregister { wid: 1 },
    ]
}

fn sample_responses() -> Vec<Response> {
    vec![
        Response::Sid { sid: 3 },
        Response::Sessions {
            sessions: "[{\"sid\":3}]".into(),
        },
        Response::Stats {
            sessions: "[]".into(),
            server: "{\"counters\":{}}".into(),
        },
        Response::RecordFollows,
        Response::WatchDone,
        Response::ShuttingDown { drain: false },
        Response::WorkerAck { wid: 7 },
        Response::Leased(LeaseOffer {
            lease: 8,
            sid: 3,
            slot: 1,
            seed: 42,
            fingerprint: 77,
            executor: "sim".into(),
            deadline_ms: 10_000,
            config: vec!["-XX:+UseG1GC".into()],
        }),
        Response::LeaseAck { lease: 8 },
        Response::HeartbeatAck { leases: 2 },
        Response::Idle { draining: true },
    ]
}

/// Truncating any rendered frame at any char boundary never panics a
/// decoder, and every rejection carries a stable code.
#[test]
fn truncated_frames_never_panic_the_decoders() {
    for request in sample_requests() {
        let frame = render_request(&request);
        for cut in frame.char_indices().map(|(i, _)| i) {
            if let Err(e) = parse_request(&frame[..cut]) {
                assert_stable(&e.code, &format!("request cut at {cut}: {frame}"));
            }
        }
        // The full frame still round-trips.
        assert_eq!(parse_request(&frame).expect("full frame decodes"), request);
    }
    for response in sample_responses() {
        let frame = render_response(&response);
        for cut in frame.char_indices().map(|(i, _)| i) {
            if let Err(e) = parse_response(&frame[..cut]) {
                assert_stable(&e.code, &format!("response cut at {cut}: {frame}"));
            }
        }
        parse_response(&frame).expect("full frame decodes");
    }
}

#[test]
fn oversized_frames_get_the_frame_too_large_code() {
    let line = format!("{}\nnext\n", "x".repeat(256));
    let mut reader = BufReader::new(line.as_bytes());
    let err = match read_frame(&mut reader, 64) {
        Err(e @ FrameReadError::TooLarge { .. }) => e,
        other => panic!("expected TooLarge, got {other:?}"),
    };
    assert_eq!(err.to_wire_error().code, "frame-too-large");
    assert!(
        error_frame(&err.to_wire_error()).contains("\"code\":\"frame-too-large\""),
        "error frame lost the code"
    );
}

#[test]
fn non_utf8_frames_are_rejected_and_the_stream_resyncs() {
    let bytes: &[u8] = b"\xff\xfe not text\n{\"v\":1,\"op\":\"status\"}\n";
    let mut reader = BufReader::new(bytes);
    match read_frame(&mut reader, 1024) {
        Err(FrameReadError::NotUtf8) => {}
        other => panic!("expected NotUtf8, got {other:?}"),
    }
    assert_eq!(FrameReadError::NotUtf8.to_wire_error().code, "bad-frame");
    // The reader resynchronised at the newline: the next frame decodes.
    let next = read_frame(&mut reader, 1024)
        .expect("next frame readable")
        .expect("next frame present");
    parse_request(&next).expect("next frame decodes");
}
