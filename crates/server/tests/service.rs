//! Integration tests for the tuning daemon.
//!
//! The contract under test throughout: a daemon session's trace and
//! result are byte-identical to the one-shot `jtune tune` run with the
//! same spec — regardless of concurrent sessions, cross-session cache
//! hits, or a drain/restart in the middle.

use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use autotuner_core::Tuner;
use jtune_harness::SimExecutor;
use jtune_server::{
    run_worker, Client, LeaseGrant, NetFaultPlan, Reconnect, Request, Response, ServerConfig,
    SessionSpec, SessionState, TuneServer, WorkerOptions,
};
use jtune_telemetry::{JsonlSink, TelemetryBus};
use jtune_util::json::JsonValue;
use jtune_workloads::workload_by_name;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("jtune-server-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn spec(program: &str, budget_mins: u64, seed: u64) -> SessionSpec {
    SessionSpec {
        program: program.to_string(),
        budget_mins,
        seed,
        max_evaluations: None,
        screen_ratio: None,
        technique: None,
    }
}

/// Run the spec one-shot, the way `jtune tune <program> --budget ...
/// --seed ... --checkpoint ... --trace ...` would; returns the trace
/// bytes and the session record line.
fn one_shot_reference(dir: &Path, spec: &SessionSpec) -> (String, String) {
    let trace = dir.join("trace.jsonl");
    let mut opts = spec.tuner_options();
    opts.checkpoint = Some(dir.join("journal.jsonl"));
    let mut bus = TelemetryBus::new();
    bus.add(Arc::new(JsonlSink::create(&trace).expect("trace sink")));
    let executor = SimExecutor::new(workload_by_name(&spec.program).expect("workload"));
    let result = Tuner::new(opts).run(&executor, &spec.program, &bus);
    (
        std::fs::read_to_string(&trace).expect("read trace"),
        result.session.to_json(),
    )
}

fn read_session_files(state_dir: &Path, sid: u64) -> (String, String) {
    let dir = state_dir.join(sid.to_string());
    (
        std::fs::read_to_string(dir.join("trace.jsonl")).expect("session trace"),
        std::fs::read_to_string(dir.join("result.json"))
            .expect("session result")
            .trim_end()
            .to_string(),
    )
}

#[test]
fn concurrent_sessions_match_one_shot_traces_byte_for_byte() {
    let state = temp_dir("concurrent");
    let server = TuneServer::new(ServerConfig::new(state.join("state"))).expect("server");

    // Three concurrent sessions; the third repeats the first's spec so
    // it runs entirely off the shared measurement cache.
    let specs = [
        spec("compress", 30, 11),
        spec("crypto.aes", 30, 22),
        spec("compress", 30, 11),
    ];
    let sids: Vec<u64> = specs
        .iter()
        .map(|s| server.submit(s.clone()).expect("submit"))
        .collect();
    for &sid in &sids {
        assert_eq!(
            server.join_session(sid),
            Some(SessionState::Completed),
            "session {sid} did not complete"
        );
    }

    for (spec, &sid) in specs.iter().zip(&sids) {
        let reference = temp_dir(&format!("concurrent-ref-{sid}"));
        let (want_trace, want_record) = one_shot_reference(&reference, spec);
        let (got_trace, got_record) = read_session_files(&state.join("state"), sid);
        assert_eq!(got_trace, want_trace, "session {sid} trace diverged");
        assert_eq!(got_record, want_record, "session {sid} record diverged");
        let _ = std::fs::remove_dir_all(&reference);
    }

    // The duplicate session measured nothing new: every one of its
    // trials hit the shared cache, and the hits are visible per-session.
    let twin = server.session(sids[2]).expect("twin handle");
    assert!(
        twin.shared_hits() > 0 || server.session(sids[0]).expect("first").shared_hits() > 0,
        "identical specs should share measurements across sessions"
    );
    assert!(server.memo().hits() > 0, "shared cache saw no hits");

    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn drained_sessions_resume_on_restart_with_identical_traces() {
    let state = temp_dir("drain");
    let session_spec = spec("compress", 2000, 77);

    let reference = temp_dir("drain-ref");
    let (want_trace, want_record) = one_shot_reference(&reference, &session_spec);

    // Start, let it make some progress, then drain the daemon.
    let sid = {
        let server = TuneServer::new(ServerConfig::new(state.join("state"))).expect("server");
        let sid = server.submit(session_spec.clone()).expect("submit");
        let handle = server.session(sid).expect("handle");
        let start = Instant::now();
        while handle.trials() < 2 {
            assert!(
                start.elapsed() < Duration::from_secs(60),
                "session made no progress"
            );
            std::thread::yield_now();
        }
        server.shutdown(true);
        assert_eq!(
            handle.state(),
            SessionState::Suspended,
            "drain should suspend the in-flight session"
        );
        sid
    };

    // A fresh daemon over the same state dir resumes it to completion.
    let server = TuneServer::new(ServerConfig::new(state.join("state"))).expect("restart");
    assert_eq!(server.join_session(sid), Some(SessionState::Completed));

    let (got_trace, got_record) = read_session_files(&state.join("state"), sid);
    assert_eq!(got_trace, want_trace, "resumed trace diverged");
    assert_eq!(got_record, want_record, "resumed record diverged");

    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn submissions_past_capacity_are_shed_with_a_retry_hint() {
    let state = temp_dir("capacity");
    let mut config = ServerConfig::new(state.join("state"));
    config.capacity = 0;
    config.queue = 0;
    let server = TuneServer::new(config).expect("server");
    let err = server.submit(spec("compress", 1, 1)).expect_err("rejected");
    assert_eq!(err.code, "overloaded");
    assert!(
        err.retry_after_ms.unwrap_or(0) > 0,
        "overloaded rejection carried no retry_after_ms hint: {err}"
    );

    let unknown = server
        .submit(spec("no-such-workload", 1, 1))
        .expect_err("rejected");
    assert_eq!(unknown.code, "invalid-spec");
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn cancelled_sessions_stop_and_stay_cancelled_across_restarts() {
    let state = temp_dir("cancel");
    let sid = {
        let server = TuneServer::new(ServerConfig::new(state.join("state"))).expect("server");
        // A budget this large runs for a long while; cancel lands first.
        let sid = server
            .submit(spec("compress", 1_000_000, 5))
            .expect("submit");
        server.cancel(sid).expect("cancel");
        let final_state = server.join_session(sid).expect("join");
        assert!(
            matches!(
                final_state,
                SessionState::Cancelled | SessionState::Completed
            ),
            "unexpected state {final_state:?}"
        );
        assert_eq!(server.cancel(sid).expect_err("terminal").code, "no-session");
        sid
    };
    assert!(state
        .join("state")
        .join(sid.to_string())
        .join("cancelled")
        .exists());

    // Restart: the cancelled session is registered, never resumed.
    let server = TuneServer::new(ServerConfig::new(state.join("state"))).expect("restart");
    assert_eq!(
        server.session(sid).expect("restored").state(),
        SessionState::Cancelled
    );
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn partially_written_results_are_never_served() {
    let state = temp_dir("torn-result");
    let server = TuneServer::new(ServerConfig::new(state.join("state"))).expect("server");
    // A budget this large keeps the session running while we probe.
    let sid = server
        .submit(spec("compress", 1_000_000, 9))
        .expect("submit");

    // Simulate the instant the session thread is half-way through
    // persisting its multi-megabyte record: bytes on disk, state not yet
    // completed. `result` must keep answering no-result rather than
    // serving a truncated record.
    std::fs::write(
        state
            .join("state")
            .join(sid.to_string())
            .join("result.json"),
        "{\"program\":\"compress\",\"trunc",
    )
    .expect("plant torn record");
    let err = server.result(sid).expect_err("result while running");
    assert_eq!(err.code, "no-result");

    server.cancel(sid).expect("cancel");
    server.join_session(sid);
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn tcp_round_trip_submit_watch_status_result_shutdown() {
    let state = temp_dir("tcp");
    let server = TuneServer::new(ServerConfig::new(state.join("state"))).expect("server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let serve = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(listener))
    };

    let session_spec = spec("compress", 10, 99);
    let mut client = Client::connect(addr).expect("connect");
    let sid = client.submit(session_spec.clone()).expect("submit");

    // Watch streams events (possibly zero if the session already
    // finished) and terminates with the done frame.
    let mut saw = Vec::new();
    client
        .watch(sid, |event| saw.push(event.to_string()))
        .expect("watch");
    for event in &saw {
        assert!(event.starts_with('{'), "event not JSON: {event}");
    }

    server.join_session(sid);
    let status = client.status(Some(sid)).expect("status");
    let sessions = status
        .get("sessions")
        .and_then(JsonValue::as_array)
        .expect("rows");
    assert_eq!(sessions.len(), 1);
    assert_eq!(
        sessions[0].get("state").and_then(JsonValue::as_str),
        Some("completed")
    );

    // The raw record line equals the one-shot record for the same spec.
    let reference = temp_dir("tcp-ref");
    let (_, want_record) = one_shot_reference(&reference, &session_spec);
    assert_eq!(client.result(sid).expect("result"), want_record);

    // Structured errors for unknown sessions: the server's stable code
    // arrives in the code field, verbatim.
    let err = client.result(9999).expect_err("unknown sid");
    assert_eq!(err.code, "unknown-session", "{err}");

    client.shutdown(false).expect("shutdown");
    serve.join().expect("serve thread").expect("serve io");
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn stats_round_trip_reports_counters_and_histograms() {
    let state = temp_dir("stats");
    let mut config = ServerConfig::new(state.join("state"));
    // Spans feed the wall histograms; the serialised trace must stay
    // byte-identical to the spans-off one-shot reference regardless.
    config.spans = true;
    let server = TuneServer::new(config).expect("server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let serve = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(listener))
    };

    let session_spec = spec("compress", 10, 41);
    let mut client = Client::connect(addr).expect("connect");
    let sid = client.submit(session_spec.clone()).expect("submit");
    server.join_session(sid);

    let stats = client.stats(Some(sid)).expect("stats");
    let sessions = stats
        .get("sessions")
        .and_then(JsonValue::as_array)
        .expect("sessions rows");
    assert_eq!(sessions.len(), 1);
    let row = &sessions[0];
    assert_eq!(row.get("sid").and_then(JsonValue::as_u64), Some(sid));
    assert_eq!(
        row.get("state").and_then(JsonValue::as_str),
        Some("completed")
    );
    let metrics = row.get("metrics").expect("metrics object");
    let counters = metrics.get("counters").expect("counters object");
    assert!(
        counters
            .get("trials_measured")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            > 0,
        "session counters missing trials"
    );
    // Spans were on, so the per-session wall histograms are populated.
    let wall = metrics.get("wall").expect("wall object");
    let trial_wall = wall.get("trial_wall").expect("trial_wall histogram");
    assert!(
        trial_wall
            .get("count")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            > 0,
        "trial_wall histogram empty despite spans on"
    );
    // The daemon-level frame histogram saw at least the submit frame.
    let frame_wall = stats
        .get("server")
        .and_then(|s| s.get("wall"))
        .and_then(|w| w.get("frame_wall"))
        .expect("server frame_wall");
    assert!(
        frame_wall
            .get("count")
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            > 0,
        "frame_wall histogram empty"
    );

    // Unknown sessions get the structured unknown-session error code.
    let err = client.stats(Some(9999)).expect_err("unknown sid");
    assert_eq!(err.code, "unknown-session", "{err}");

    // Spans on changed nothing about the serialised trace: it is still
    // byte-identical to the spans-off one-shot run.
    let reference = temp_dir("stats-ref");
    let (want_trace, _) = one_shot_reference(&reference, &session_spec);
    let (got_trace, _) = read_session_files(&state.join("state"), sid);
    assert_eq!(got_trace, want_trace, "spans leaked into the trace");

    client.shutdown(false).expect("shutdown");
    serve.join().expect("serve thread").expect("serve io");
    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn two_workers_produce_byte_identical_traces_and_records() {
    let state = temp_dir("workers");
    let server = TuneServer::new(ServerConfig::new(state.join("state"))).expect("server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let serve = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(listener))
    };

    // Two remote workers, one of them multi-slot.
    let agents: Vec<_> = [1usize, 2]
        .into_iter()
        .map(|slots| {
            let mut options = WorkerOptions::new(addr.to_string());
            options.slots = slots;
            options.wait_ms = 200;
            std::thread::spawn(move || run_worker(&options))
        })
        .collect();
    let start = Instant::now();
    while server.workers().workers() < 2 {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "workers never registered"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let session_spec = spec("compress", 10, 99);
    let mut client = Client::connect(addr).expect("connect");
    let sid = client.submit(session_spec.clone()).expect("submit");
    assert_eq!(server.join_session(sid), Some(SessionState::Completed));

    // The trials really ran remotely...
    assert!(
        server.workers().leases_completed() > 0,
        "no trial was measured by a worker"
    );
    // ...and the worker plane left no trace in the session's data path:
    // trace and record are byte-identical to the single-host run.
    let reference = temp_dir("workers-ref");
    let (want_trace, want_record) = one_shot_reference(&reference, &session_spec);
    let (got_trace, got_record) = read_session_files(&state.join("state"), sid);
    assert_eq!(got_trace, want_trace, "distributed trace diverged");
    assert_eq!(got_record, want_record, "distributed record diverged");

    // The worker counters surface in the daemon-level stats payload.
    let (_, server_metrics) = server.stats(None).expect("stats");
    assert!(
        server_metrics.contains("\"trials_leased\""),
        "worker counters missing from server stats: {server_metrics}"
    );

    // Drain: both workers exit their lease loops and report stats.
    client.shutdown(false).expect("shutdown");
    let mut measured = 0;
    for agent in agents {
        let stats = agent.join().expect("worker thread").expect("worker ran");
        measured += stats.completed;
    }
    assert!(measured > 0, "workers reported no completed trials");
    serve.join().expect("serve thread").expect("serve io");
    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn killed_worker_mid_lease_reissues_to_the_survivor_byte_identically() {
    let state = temp_dir("worker-kill");
    let server = TuneServer::new(ServerConfig::new(state.join("state"))).expect("server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let serve = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(listener))
    };

    // A rogue worker registers by hand and takes the session's first
    // trial...
    let mut rogue = Client::connect(addr).expect("rogue connect");
    let rogue_wid = match rogue
        .request(&Request::Register {
            executor: "sim".into(),
            slots: 1,
            reconnect: None,
        })
        .expect("register")
    {
        Response::WorkerAck { wid } => wid,
        other => panic!("unexpected register reply: {other:?}"),
    };

    let session_spec = spec("compress", 10, 41);
    let sid = server.submit(session_spec.clone()).expect("submit");
    match rogue
        .request(&Request::Lease {
            wid: rogue_wid,
            wait_ms: 10_000,
        })
        .expect("lease")
    {
        Response::Leased(offer) => assert_eq!(offer.sid, sid),
        other => panic!("expected a lease offer, got {other:?}"),
    }

    // ...a healthy worker joins...
    let survivor = {
        let mut options = WorkerOptions::new(addr.to_string());
        options.wait_ms = 200;
        std::thread::spawn(move || run_worker(&options))
    };
    let start = Instant::now();
    while server.workers().workers() < 2 {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "survivor never registered"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // ...and the rogue dies mid-lease. Dropping the registering
    // connection deregisters it instantly; its lease is reissued to the
    // survivor without waiting out the deadline.
    drop(rogue);

    assert_eq!(server.join_session(sid), Some(SessionState::Completed));
    assert!(
        server.workers().leases_expired() >= 1,
        "the lost lease never expired"
    );
    assert!(
        server.workers().leases_completed() >= 1,
        "the survivor measured nothing"
    );

    // The merged output is still byte-identical to the uninterrupted
    // single-host run.
    let reference = temp_dir("worker-kill-ref");
    let (want_trace, want_record) = one_shot_reference(&reference, &session_spec);
    let (got_trace, got_record) = read_session_files(&state.join("state"), sid);
    assert_eq!(got_trace, want_trace, "trace diverged after worker death");
    assert_eq!(
        got_record, want_record,
        "record diverged after worker death"
    );

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown(false).expect("shutdown");
    survivor.join().expect("survivor thread").expect("ran");
    serve.join().expect("serve thread").expect("serve io");
    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn silent_workers_lose_their_leases_to_the_deadline() {
    let state = temp_dir("worker-deadline");
    let mut config = ServerConfig::new(state.join("state"));
    config.lease_ms = 200;
    let server = TuneServer::new(config).expect("server");

    // A worker registers straight against the registry, takes a lease,
    // and goes silent: no complete, no heartbeat.
    let wid = server.workers().register("sim", 1);
    let session_spec = spec("compress", 10, 7);
    let sid = server.submit(session_spec.clone()).expect("submit");
    match server
        .workers()
        .lease(wid, Duration::from_secs(10))
        .expect("lease")
    {
        LeaseGrant::Offer(offer) => assert_eq!(offer.sid, sid),
        other => panic!("expected a lease offer, got {other:?}"),
    }

    // The session's own result waiters double as the reaper: the lease
    // expires ~lease_ms later with no dedicated thread involved.
    let start = Instant::now();
    while server.workers().leases_expired() == 0 {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "deadline never expired the lease"
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Deregister the idler so the requeued trial falls back to the
    // local pool, and the session finishes byte-identically.
    server.workers().deregister(wid);
    assert_eq!(server.join_session(sid), Some(SessionState::Completed));

    let reference = temp_dir("worker-deadline-ref");
    let (want_trace, want_record) = one_shot_reference(&reference, &session_spec);
    let (got_trace, got_record) = read_session_files(&state.join("state"), sid);
    assert_eq!(got_trace, want_trace, "trace diverged after lease expiry");
    assert_eq!(
        got_record, want_record,
        "record diverged after lease expiry"
    );

    let _ = std::fs::remove_dir_all(&reference);
    let _ = std::fs::remove_dir_all(&state);
}

/// The chaos contract end to end: a daemon whose outbound frames run
/// through a seeded fault plan, served by workers whose own frames run
/// through fault plans of their own, with clients connecting and
/// vanishing mid-stream — and the sessions' traces and records are
/// still byte-identical to the undisturbed one-shot runs.
#[test]
fn chaotic_network_still_yields_byte_identical_traces() {
    let state = temp_dir("chaos");
    let mut config = ServerConfig::new(state.join("state"));
    // Server-side chaos: every reply frame may be dropped, delayed,
    // garbled, or have its connection killed, per the seeded schedule.
    config.net_faults = NetFaultPlan::chaotic(0.2, 0xC0FFEE);
    // Deadlines unwedge both sides when a frame is eaten...
    config.io_timeout_ms = 2_000;
    // ...and short leases keep lost-lease reissue fast (and skip the
    // heartbeat sidecars, which this test does not need).
    config.lease_ms = 1_000;
    let server = TuneServer::new(config).expect("server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let serve = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(listener))
    };

    // Two workers, each with its own outbound fault schedule; their
    // reconnect budgets keep them coming back through every disconnect.
    let agents: Vec<_> = [0xBEE5u64, 0xFACADE]
        .into_iter()
        .map(|seed| {
            let mut options = WorkerOptions::new(addr.to_string());
            options.wait_ms = 200;
            options.net_faults = NetFaultPlan::chaotic(0.15, seed);
            options.retries = 3;
            options.retry_max_ms = 500;
            std::thread::spawn(move || run_worker(&options))
        })
        .collect();
    let start = Instant::now();
    while server.workers().workers() < 2 {
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "workers never registered under chaos"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    let specs = [spec("compress", 10, 11), spec("crypto.aes", 10, 22)];
    let sids: Vec<u64> = specs
        .iter()
        .map(|s| server.submit(s.clone()).expect("submit"))
        .collect();

    // Client churn: a watcher attaches over the chaotic wire and then
    // vanishes mid-stream; a status poller connects and drops. Both may
    // fail (their replies are fair game for the fault plan) — the point
    // is that their connections die while sessions are in flight.
    {
        let mut watcher = Client::connect(addr).expect("watcher connect");
        watcher
            .set_io_timeout(Duration::from_secs(2))
            .expect("watcher deadline");
        let _ = watcher.request(&Request::Watch { sid: sids[0] });
        drop(watcher);
        let mut poller = Client::connect(addr).expect("poller connect");
        poller
            .set_io_timeout(Duration::from_secs(2))
            .expect("poller deadline");
        let _ = poller.status(None);
        drop(poller);
    }

    for &sid in &sids {
        assert_eq!(
            server.join_session(sid),
            Some(SessionState::Completed),
            "session {sid} did not complete under chaos"
        );
    }
    for (spec, &sid) in specs.iter().zip(&sids) {
        let reference = temp_dir(&format!("chaos-ref-{sid}"));
        let (want_trace, want_record) = one_shot_reference(&reference, spec);
        let (got_trace, got_record) = read_session_files(&state.join("state"), sid);
        assert_eq!(got_trace, want_trace, "session {sid} trace diverged");
        assert_eq!(got_record, want_record, "session {sid} record diverged");
        let _ = std::fs::remove_dir_all(&reference);
    }

    // Shutdown through the chaotic wire: the flag flips server-side
    // before the reply frame rolls the fault dice, so a lost reply only
    // costs this client its ack.
    let mut closer = Client::connect(addr).expect("closer connect");
    closer
        .set_io_timeout(Duration::from_secs(2))
        .expect("closer deadline");
    let _ = closer.shutdown(false);
    // Workers either drained cleanly (stats) or exhausted their
    // reconnect budget against the stopped daemon; both are clean exits
    // here — what matters is that none of them wedged.
    for agent in agents {
        let _ = agent.join().expect("worker thread exits");
    }
    serve.join().expect("serve thread").expect("serve io");
    let _ = std::fs::remove_dir_all(&state);
}

/// A client that connects and trickles half a frame must be reaped by
/// the read deadline — without slowing the sessions other clients run.
#[test]
fn slow_loris_connections_are_reaped_by_the_deadline() {
    use std::io::{Read, Write};

    let state = temp_dir("loris");
    let mut config = ServerConfig::new(state.join("state"));
    config.io_timeout_ms = 300;
    let server = TuneServer::new(config).expect("server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let serve = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(listener))
    };

    // The loris: half a frame, then silence.
    let mut loris = std::net::TcpStream::connect(addr).expect("loris connect");
    loris.write_all(b"{\"v\":1,\"op\":\"stat").expect("half frame");

    // A healthy session proceeds, unbothered.
    let mut client = Client::connect(addr).expect("connect");
    let sid = client.submit(spec("compress", 10, 3)).expect("submit");
    assert_eq!(server.join_session(sid), Some(SessionState::Completed));

    // The loris connection is closed by the deadline, not served and
    // not left pinning a handler: the next read sees EOF/reset, fast.
    loris
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("loris read timeout");
    let mut buf = [0u8; 64];
    match loris.read(&mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!(
            "server answered a half frame with {n} bytes: {:?}",
            String::from_utf8_lossy(&buf[..n])
        ),
    }

    // The submit connection idled past the deadline too — shutdown
    // rides a fresh one.
    drop(client);
    let mut closer = Client::connect(addr).expect("closer connect");
    closer.shutdown(false).expect("shutdown");
    serve.join().expect("serve thread").expect("serve io");
    let _ = std::fs::remove_dir_all(&state);
}

/// Admission control: `capacity` sessions run, `queue` more wait, and
/// past both bounds submits are shed with `overloaded` + a hint — until
/// residents leave and admission reopens.
#[test]
fn queued_submissions_wait_and_excess_is_shed_until_load_drops() {
    let state = temp_dir("queue");
    let mut config = ServerConfig::new(state.join("state"));
    config.capacity = 1;
    config.queue = 2;
    let server = TuneServer::new(config).expect("server");

    // Budgets this large run until cancelled, holding the slots.
    let a = server.submit(spec("compress", 1_000_000, 1)).expect("a");
    let b = server.submit(spec("compress", 1_000_000, 2)).expect("b");
    let c = server.submit(spec("compress", 1_000_000, 3)).expect("c");
    assert_eq!(server.session(a).expect("a handle").state(), SessionState::Running);
    for sid in [b, c] {
        assert_eq!(
            server.session(sid).expect("handle").state(),
            SessionState::Queued,
            "session {sid} should be waiting in the admission queue"
        );
    }

    // Past capacity + queue: shed, with a positive retry hint, and the
    // rejection shows up in the daemon counters.
    let err = server.submit(spec("compress", 1_000_000, 4)).expect_err("shed");
    assert_eq!(err.code, "overloaded");
    assert!(err.retry_after_ms.unwrap_or(0) > 0, "{err}");
    assert!(
        server
            .server_metrics()
            .to_json()
            .contains("\"connections_rejected\":1"),
        "shed submit missing from counters: {}",
        server.server_metrics().to_json()
    );

    // Cancel everything; the queue drains through the freed slot and
    // every session reaches a terminal state.
    for sid in [a, b, c] {
        server.cancel(sid).expect("cancel");
    }
    let start = Instant::now();
    for sid in [a, b, c] {
        loop {
            if server.session(sid).expect("handle").state().is_terminal() {
                break;
            }
            assert!(
                start.elapsed() < Duration::from_secs(60),
                "session {sid} never left the queue"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // Residency dropped: admission is open again.
    let d = server.submit(spec("compress", 1_000_000, 5)).expect("readmitted");
    server.cancel(d).expect("cancel d");
    server.join_session(d);
    let _ = std::fs::remove_dir_all(&state);
}

/// A connection past `conn_limit` gets one `overloaded` error frame
/// (with the fixed retry hint) and no handler thread.
#[test]
fn connections_past_the_limit_are_shed_with_a_hint() {
    use std::io::{BufRead, BufReader};

    let state = temp_dir("conn-limit");
    let mut config = ServerConfig::new(state.join("state"));
    config.conn_limit = 1;
    let server = TuneServer::new(config).expect("server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let serve = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(listener))
    };

    // The round trip guarantees the first connection is being served
    // (and counted) before the second one arrives.
    let mut first = Client::connect(addr).expect("first connect");
    first.status(None).expect("first status");

    let second = std::net::TcpStream::connect(addr).expect("second connect");
    let mut reply = String::new();
    BufReader::new(second)
        .read_line(&mut reply)
        .expect("read shed frame");
    assert!(reply.contains("\"code\":\"overloaded\""), "{reply}");
    assert!(reply.contains("\"retry_after_ms\":250"), "{reply}");
    assert!(
        server
            .server_metrics()
            .to_json()
            .contains("\"connections_rejected\":1"),
        "{}",
        server.server_metrics().to_json()
    );

    first.shutdown(false).expect("shutdown");
    serve.join().expect("serve thread").expect("serve io");
    let _ = std::fs::remove_dir_all(&state);
}

/// The robustness counters ride the stats payload: rejected frames
/// (junk and oversized), tagged client retries, and worker reconnects
/// are all visible to `client stats` and the shutdown metrics snapshot.
#[test]
fn overload_and_retry_counters_surface_in_stats() {
    use std::io::{BufRead, BufReader, Write};

    let state = temp_dir("overload-counters");
    let mut config = ServerConfig::new(state.join("state"));
    config.max_frame = 1024;
    let server = TuneServer::new(config).expect("server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let serve = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(listener))
    };

    // One junk frame (decoder reject) and one oversized frame (reader
    // reject; the server closes that connection afterwards).
    {
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        writeln!(writer, "this is not json").expect("junk frame");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("junk reply");
        assert!(reply.contains("\"code\":\"bad-frame\""), "{reply}");
        writeln!(writer, "{}", "x".repeat(4096)).expect("oversized frame");
        reply.clear();
        reader.read_line(&mut reply).expect("oversized reply");
        assert!(reply.contains("\"code\":\"frame-too-large\""), "{reply}");
        reply.clear();
        // Closed with our unread bytes still buffered, so this may be a
        // reset rather than a clean EOF — either way, no more frames.
        match reader.read_line(&mut reply) {
            Ok(0) | Err(_) => {}
            Ok(_) => panic!("oversized frame must close the connection: {reply}"),
        }
    }

    // A retry-tagged status frame (what `with_retries` sends on its
    // second attempt) bumps the client-retry counter.
    {
        let stream = std::net::TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut writer = stream;
        writeln!(
            writer,
            "{{\"v\":1,\"op\":\"status\",\"attempt\":2,\"delay_ms\":150}}"
        )
        .expect("tagged frame");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("tagged reply");
        assert!(reply.contains("\"ok\":true"), "{reply}");
    }

    // A worker identity dies and its successor re-registers naming it.
    let prev_wid = {
        let mut worker = Client::connect(addr).expect("worker connect");
        match worker
            .request(&Request::Register {
                executor: "sim".into(),
                slots: 1,
                reconnect: None,
            })
            .expect("register")
        {
            Response::WorkerAck { wid } => wid,
            other => panic!("unexpected register reply: {other:?}"),
        }
    };
    let mut successor = Client::connect(addr).expect("successor connect");
    match successor
        .request(&Request::Register {
            executor: "sim".into(),
            slots: 1,
            reconnect: Some(Reconnect {
                prev_wid,
                attempts: 2,
            }),
        })
        .expect("re-register")
    {
        Response::WorkerAck { wid } => assert_ne!(wid, prev_wid, "successor got a fresh identity"),
        other => panic!("unexpected re-register reply: {other:?}"),
    }

    let metrics = server.server_metrics().to_json();
    assert!(metrics.contains("\"frames_rejected\":2"), "{metrics}");
    assert!(metrics.contains("\"clients_retried\":1"), "{metrics}");
    assert!(metrics.contains("\"workers_reconnected\":1"), "{metrics}");

    let mut client = Client::connect(addr).expect("connect");
    client.shutdown(false).expect("shutdown");
    serve.join().expect("serve thread").expect("serve io");

    // The drained daemon left the same counters on disk for offline
    // `jtune report`.
    let snapshot = std::fs::read_to_string(state.join("state").join("server-metrics.json"))
        .expect("metrics snapshot");
    assert!(snapshot.contains("\"frames_rejected\":2"), "{snapshot}");
    let _ = std::fs::remove_dir_all(&state);
}

#[test]
fn malformed_frames_get_structured_error_replies() {
    use std::io::{BufRead, BufReader, Write};

    let state = temp_dir("badframe");
    let server = TuneServer::new(ServerConfig::new(state.join("state"))).expect("server");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let serve = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.serve(listener))
    };

    let stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut ask = |line: &str| -> String {
        writeln!(writer, "{line}").expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        reply.trim_end().to_string()
    };

    for (line, code) in [
        ("this is not json", "\"code\":\"bad-frame\""),
        ("{\"v\":9,\"op\":\"status\"}", "\"code\":\"bad-version\""),
        ("{\"v\":1,\"op\":\"levitate\"}", "\"code\":\"unknown-op\""),
        ("{\"v\":1,\"op\":\"submit\"}", "\"code\":\"invalid-spec\""),
    ] {
        let reply = ask(line);
        assert!(reply.contains("\"ok\":false"), "{reply}");
        assert!(reply.contains(code), "{reply}");
    }

    let mut client = Client::connect(addr).expect("connect 2");
    client.shutdown(false).expect("shutdown");
    serve.join().expect("serve thread").expect("serve io");
    let _ = std::fs::remove_dir_all(&state);
}
