//! Fair-share scheduling of measurement slots across sessions.
//!
//! Every live measurement in the daemon — regardless of which session's
//! worker thread wants to run it — first acquires a permit from the
//! shared [`FairScheduler`]. Permits are granted round-robin over the
//! sessions that currently have waiters, so a session with a huge batch
//! or many workers cannot starve a small one: with S sessions waiting it
//! gets ~1/S of the measurement slots, whatever its own parallelism.
//!
//! **Fairness invariant:** between two consecutive grants to session A,
//! every other session that had a waiter for the whole interval receives
//! at least one grant.
//!
//! The gate changes only *when* a measurement runs, never its inputs
//! (config and seed) or its result — sessions stay bit-deterministic
//! under any scheduling interleaving. The scheduler also keeps
//! per-session accounting (grants and virtual cost) that `status`
//! surfaces.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};

use jtune_flags::{JvmConfig, Registry};
use jtune_harness::{Executor, Measurement};
use jtune_util::SimDuration;

#[derive(Debug, Default)]
struct SchedState {
    free: usize,
    /// Waiter count per session with at least one waiter.
    waiting: HashMap<u64, usize>,
    /// Round-robin rotation of sessions with waiters.
    rotation: VecDeque<u64>,
    /// Total permits granted per session.
    grants: HashMap<u64, u64>,
    /// Total measured virtual nanoseconds per session.
    cost_nanos: HashMap<u64, u64>,
}

/// Round-robin measurement-slot scheduler; see the module docs.
#[derive(Debug)]
pub struct FairScheduler {
    state: Mutex<SchedState>,
    turn: Condvar,
}

impl FairScheduler {
    /// A scheduler with `slots` concurrent measurement permits (at
    /// least 1).
    pub fn new(slots: usize) -> FairScheduler {
        FairScheduler {
            state: Mutex::new(SchedState {
                free: slots.max(1),
                ..SchedState::default()
            }),
            turn: Condvar::new(),
        }
    }

    /// Block until it is `sid`'s turn and a slot is free; returns a
    /// permit that releases the slot on drop.
    pub fn acquire(&self, sid: u64) -> SchedPermit<'_> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *st.waiting.entry(sid).or_insert(0) += 1;
        if !st.rotation.contains(&sid) {
            st.rotation.push_back(sid);
        }
        loop {
            if st.free > 0 && st.rotation.front() == Some(&sid) {
                st.free -= 1;
                // This session takes its turn: rotate it to the back if
                // it still has other waiters, drop it otherwise.
                st.rotation.pop_front();
                let remaining = {
                    // Registered at entry; the entry form keeps this
                    // panic-free even if that invariant ever slips.
                    let w = st.waiting.entry(sid).or_insert(1);
                    *w = w.saturating_sub(1);
                    *w
                };
                if remaining > 0 {
                    st.rotation.push_back(sid);
                } else {
                    st.waiting.remove(&sid);
                }
                *st.grants.entry(sid).or_insert(0) += 1;
                // Wake siblings: the head of the rotation may already
                // have a free slot to claim.
                self.turn.notify_all();
                return SchedPermit { sched: self };
            }
            st = self.turn.wait(st).unwrap_or_else(|p| p.into_inner());
        }
    }

    fn release(&self) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.free += 1;
        drop(st);
        self.turn.notify_all();
    }

    /// Record `cost` of measured virtual time against `sid`.
    pub fn charge(&self, sid: u64, cost: SimDuration) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        *st.cost_nanos.entry(sid).or_insert(0) += cost.as_nanos();
    }

    /// Permits granted to `sid` so far.
    pub fn grants(&self, sid: u64) -> u64 {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.grants.get(&sid).copied().unwrap_or(0)
    }

    /// Virtual time measured under `sid`'s permits so far.
    pub fn charged(&self, sid: u64) -> SimDuration {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        SimDuration::from_nanos(st.cost_nanos.get(&sid).copied().unwrap_or(0))
    }

    /// Waiters currently blocked for `sid` (used by tests to observe
    /// the queue deterministically).
    pub fn waiting(&self, sid: u64) -> usize {
        let st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.waiting.get(&sid).copied().unwrap_or(0)
    }
}

/// RAII permit from [`FairScheduler::acquire`].
#[derive(Debug)]
pub struct SchedPermit<'a> {
    sched: &'a FairScheduler,
}

impl Drop for SchedPermit<'_> {
    fn drop(&mut self) {
        self.sched.release();
    }
}

/// An [`Executor`] wrapper that runs every measurement under a
/// fair-share permit for its session, and charges the measured virtual
/// time to the session's scheduler account.
///
/// Everything observable delegates to the inner executor; the gate can
/// only delay a measurement, never change it.
pub struct GatedExecutor<E> {
    inner: E,
    sched: Arc<FairScheduler>,
    sid: u64,
}

impl<E: Executor> GatedExecutor<E> {
    /// Gate `inner` behind `sched` on behalf of session `sid`.
    pub fn new(inner: E, sched: Arc<FairScheduler>, sid: u64) -> GatedExecutor<E> {
        GatedExecutor { inner, sched, sid }
    }
}

impl<E: Executor> Executor for GatedExecutor<E> {
    fn measure(&self, config: &JvmConfig, seed: u64) -> Measurement {
        let permit = self.sched.acquire(self.sid);
        let measured = self.inner.measure(config, seed);
        drop(permit);
        self.sched.charge(self.sid, measured.time);
        measured
    }

    fn registry(&self) -> &Registry {
        self.inner.registry()
    }

    fn fixed_overhead(&self) -> SimDuration {
        self.inner.fixed_overhead()
    }

    fn describe(&self) -> String {
        self.inner.describe()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    fn spin_until(deadline_ms: u64, mut done: impl FnMut() -> bool) {
        let start = std::time::Instant::now();
        while !done() {
            assert!(
                start.elapsed() < Duration::from_millis(deadline_ms),
                "condition not reached in {deadline_ms} ms"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn grants_rotate_round_robin_over_waiting_sessions() {
        let sched = Arc::new(FairScheduler::new(1));
        // Session 1 holds the only slot while 2, 3 and a second waiter
        // for 1 queue up behind it.
        let held = sched.acquire(1);
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut threads = Vec::new();
        for sid in [2u64, 3, 1] {
            let sched = Arc::clone(&sched);
            let order = Arc::clone(&order);
            // Register waiters one at a time so the rotation order is
            // deterministic: [2, 3, 1].
            spin_until(5000, || match sid {
                2 => true,
                3 => sched.waiting(2) == 1,
                _ => sched.waiting(3) == 1,
            });
            threads.push(std::thread::spawn(move || {
                let permit = sched.acquire(sid);
                order.lock().expect("order mutex healthy").push(sid);
                drop(permit);
            }));
        }
        spin_until(5000, || sched.waiting(1) == 1);
        drop(held);
        for t in threads {
            t.join().expect("waiter thread exits cleanly");
        }
        assert_eq!(*order.lock().expect("order mutex healthy"), vec![2, 3, 1]);
        assert_eq!(sched.grants(1), 2);
        assert_eq!(sched.grants(2), 1);
        assert_eq!(sched.grants(3), 1);
    }

    #[test]
    fn a_greedy_session_cannot_starve_a_waiting_one() {
        let sched = Arc::new(FairScheduler::new(1));
        let stop = Arc::new(AtomicBool::new(false));
        // Session 1 hammers the scheduler in a tight loop.
        let greedy = {
            let sched = Arc::clone(&sched);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    drop(sched.acquire(1));
                }
            })
        };
        // Session 2 asks exactly five times; each must be served.
        for _ in 0..5 {
            drop(sched.acquire(2));
        }
        stop.store(true, Ordering::Relaxed);
        greedy.join().expect("greedy thread exits cleanly");
        assert_eq!(sched.grants(2), 5);
    }

    #[test]
    fn accounting_tracks_charges_per_session() {
        let sched = FairScheduler::new(2);
        sched.charge(7, SimDuration::from_secs_f64(1.5));
        sched.charge(7, SimDuration::from_secs_f64(0.5));
        sched.charge(8, SimDuration::from_secs_f64(3.0));
        assert!((sched.charged(7).as_secs_f64() - 2.0).abs() < 1e-9);
        assert!((sched.charged(8).as_secs_f64() - 3.0).abs() < 1e-9);
        assert_eq!(sched.charged(9), SimDuration::ZERO);
    }
}
