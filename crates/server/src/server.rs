//! The tuning daemon: session manager, state directory, TCP front-end.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use autotuner_core::Tuner;
use jtune_harness::{MeasurementCache, MemoExecutor};
use jtune_telemetry::{EventStreamSink, JsonlSink, MetricsRegistry, TelemetryBus};
use jtune_util::json::JsonValue;
use jtune_workloads::workload_by_name;

use crate::scheduler::{FairScheduler, GatedExecutor};
use crate::session::{ProgressProbe, SessionSpec, SessionState};
use crate::wire::{self, Request, Response, WireError};
use crate::worker::{LeaseGrant, RemoteExecutor, WorkerRegistry};

/// The concrete executor stack a daemon session runs on: the session's
/// base executor (built from its [`ExecutorSpec`]) offered to the
/// worker pool, gated by the fair-share scheduler, memoized across
/// sessions. Memo sits outermost so cache hits never consume a
/// scheduler slot or a worker lease — and since the memo key is the
/// inner executor's tag (which [`RemoteExecutor`] passes through), a
/// trial measured by one worker is a free hit for every session and
/// every other worker.
///
/// [`ExecutorSpec`]: jtune_harness::ExecutorSpec
pub type SessionExecutor = MemoExecutor<GatedExecutor<RemoteExecutor>>;

/// Replace `path` with `contents` atomically: write a sibling temp file,
/// then rename it into place. Session records run to megabytes, so a
/// plain `fs::write` is visible half-written — both to a `result`
/// request polling for completion and to [`TuneServer::restore`] after a
/// kill mid-write, which treats the file's existence as the completion
/// marker. Neither may ever observe a torn prefix.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum resident non-terminal sessions; submissions past this are
    /// rejected with the `capacity` error code.
    pub capacity: usize,
    /// Concurrent measurement slots shared (fairly) by all sessions.
    pub slots: usize,
    /// Durable session state: one subdirectory per session holding
    /// `spec.json`, `journal.jsonl`, `trace.jsonl` and, when finished,
    /// `result.json`.
    pub state_dir: PathBuf,
    /// Emit timing spans on each session's bus (default `false`). Spans
    /// are ephemeral — the serialised `trace.jsonl` is byte-identical
    /// either way — but they feed the per-session wall histograms the
    /// `stats` op reports.
    pub spans: bool,
    /// Worker lease lifetime in milliseconds: a leased trial whose
    /// `complete` (or heartbeat) has not arrived this long after issue
    /// is reissued to another worker, and eventually abandoned to the
    /// local pool.
    pub lease_ms: u64,
}

impl ServerConfig {
    /// Defaults: capacity 8, 4 slots, spans off, 10 s leases, state
    /// under `jtune-state/`.
    pub fn new(state_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            capacity: 8,
            slots: 4,
            state_dir: state_dir.into(),
            spans: false,
            lease_ms: 10_000,
        }
    }
}

/// One resident session: spec, live state, control handles.
pub struct SessionHandle {
    /// The session's stable ID.
    pub sid: u64,
    /// What was submitted.
    pub spec: SessionSpec,
    state: Mutex<SessionState>,
    stop: Arc<AtomicBool>,
    stream: Arc<EventStreamSink>,
    probe: Arc<ProgressProbe>,
    metrics: Arc<MetricsRegistry>,
    executor: Mutex<Option<Arc<SessionExecutor>>>,
    join: Mutex<Option<JoinHandle<()>>>,
}

impl SessionHandle {
    fn new(sid: u64, spec: SessionSpec, state: SessionState) -> SessionHandle {
        SessionHandle {
            sid,
            spec,
            state: Mutex::new(state),
            stop: Arc::new(AtomicBool::new(false)),
            stream: Arc::new(EventStreamSink::new()),
            probe: Arc::new(ProgressProbe::new()),
            metrics: Arc::new(MetricsRegistry::new()),
            executor: Mutex::new(None),
            join: Mutex::new(None),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    fn set_state(&self, next: SessionState) {
        *self.state.lock().unwrap_or_else(|p| p.into_inner()) = next;
    }

    /// Trials this session has evaluated so far (live).
    pub fn trials(&self) -> u64 {
        self.probe.trials()
    }

    /// This session's live metrics registry (event counters plus, with
    /// spans enabled, wall-clock histograms).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Cross-session cache hits this session has enjoyed so far.
    pub fn shared_hits(&self) -> u64 {
        self.executor
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .as_ref()
            .map(|e| e.hits())
            .unwrap_or(0)
    }
}

/// The long-running tuning service. One instance owns every session,
/// the shared measurement memo, and the fair-share scheduler; `serve`
/// pumps a TCP listener through it.
pub struct TuneServer {
    config: ServerConfig,
    sched: Arc<FairScheduler>,
    memo: Arc<MeasurementCache>,
    sessions: Mutex<BTreeMap<u64, Arc<SessionHandle>>>,
    next_sid: AtomicU64,
    shutting_down: AtomicBool,
    /// Daemon-level metrics: the `frame_wall` histogram of per-request
    /// handling time (fed directly by `handle_connection`) plus the
    /// worker-plane counters (`workers_registered`, `trials_leased`,
    /// `leases_expired`) fed by the registry's telemetry bus.
    metrics: Arc<MetricsRegistry>,
    /// Remote worker ledger: registered workers, queued trials,
    /// outstanding leases.
    workers: Arc<WorkerRegistry>,
}

impl TuneServer {
    /// Build a server and restore any resumable sessions found in the
    /// state directory (suspended by a drain or orphaned by a crash).
    pub fn new(config: ServerConfig) -> std::io::Result<Arc<TuneServer>> {
        std::fs::create_dir_all(&config.state_dir)?;
        let metrics = Arc::new(MetricsRegistry::new());
        let mut worker_bus = TelemetryBus::new();
        worker_bus.add(Arc::clone(&metrics) as Arc<dyn jtune_telemetry::TuningObserver>);
        let workers = Arc::new(WorkerRegistry::new(
            Duration::from_millis(config.lease_ms.max(1)),
            worker_bus,
        ));
        let server = Arc::new(TuneServer {
            sched: Arc::new(FairScheduler::new(config.slots)),
            memo: Arc::new(MeasurementCache::new()),
            sessions: Mutex::new(BTreeMap::new()),
            next_sid: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            metrics,
            workers,
            config,
        });
        server.restore()?;
        Ok(server)
    }

    /// The worker registry (for tests and embedders).
    pub fn workers(&self) -> &Arc<WorkerRegistry> {
        &self.workers
    }

    /// The shared cross-session measurement cache (for tests/metrics).
    pub fn memo(&self) -> &Arc<MeasurementCache> {
        &self.memo
    }

    /// Look up a resident session by ID.
    pub fn session(&self, sid: u64) -> Option<Arc<SessionHandle>> {
        self.sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&sid)
            .cloned()
    }

    /// Block until session `sid` reaches a terminal or suspended state
    /// (joins its thread); returns its final state.
    pub fn join_session(&self, sid: u64) -> Option<SessionState> {
        let handle = self.session(sid)?;
        let join = handle.join.lock().unwrap_or_else(|p| p.into_inner()).take();
        if let Some(join) = join {
            let _ = join.join();
        }
        Some(handle.state())
    }

    fn session_dir(&self, sid: u64) -> PathBuf {
        self.config.state_dir.join(sid.to_string())
    }

    fn handle_of(&self, sid: u64) -> Result<Arc<SessionHandle>, WireError> {
        self.sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&sid)
            .cloned()
            .ok_or_else(|| WireError::new("unknown-session", format!("no session {sid}")))
    }

    /// Scan the state directory: register finished/cancelled sessions
    /// for `status`/`result`, and restart every resumable one.
    fn restore(self: &Arc<Self>) -> std::io::Result<()> {
        let mut resumable = Vec::new();
        let mut max_sid = 0u64;
        for entry in std::fs::read_dir(&self.config.state_dir)? {
            let entry = entry?;
            let Some(sid) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            max_sid = max_sid.max(sid);
            let dir = entry.path();
            let spec = match std::fs::read_to_string(dir.join("spec.json"))
                .ok()
                .and_then(|text| SessionSpec::parse(&text).ok())
            {
                Some(spec) => spec,
                None => continue, // torn submit: no usable spec, skip
            };
            let state = if dir.join("cancelled").exists() {
                SessionState::Cancelled
            } else if dir.join("result.json").exists() {
                SessionState::Completed
            } else {
                resumable.push(sid);
                SessionState::Queued
            };
            self.sessions
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(sid, Arc::new(SessionHandle::new(sid, spec, state)));
        }
        self.next_sid.store(max_sid + 1, Ordering::SeqCst);
        for sid in resumable {
            let handle = self.handle_of(sid).expect("registered above");
            self.spawn_session(handle);
        }
        Ok(())
    }

    /// Admit a new session: validate, persist the spec, start the
    /// session thread, return the session ID.
    pub fn submit(self: &Arc<Self>, spec: SessionSpec) -> Result<u64, WireError> {
        if workload_by_name(&spec.program).is_none() {
            return Err(WireError::new(
                "invalid-spec",
                format!("unknown workload {:?}", spec.program),
            ));
        }
        if let Err(e) = spec.tuner_options().validate() {
            return Err(WireError::new("invalid-spec", e.to_string()));
        }
        let sid = {
            // Admission control under the registry lock so concurrent
            // submits cannot both squeeze past the capacity check.
            let mut sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
            let resident = sessions
                .values()
                .filter(|h| !h.state().is_terminal())
                .count();
            if resident >= self.config.capacity {
                return Err(WireError::new(
                    "capacity",
                    format!(
                        "daemon at capacity ({} of {} sessions); retry later",
                        resident, self.config.capacity
                    ),
                ));
            }
            let sid = self.next_sid.fetch_add(1, Ordering::SeqCst);
            sessions.insert(
                sid,
                Arc::new(SessionHandle::new(sid, spec.clone(), SessionState::Queued)),
            );
            sid
        };
        // Persist the spec before acknowledging: a daemon crash after
        // the ack can always resume the session from disk.
        let dir = self.session_dir(sid);
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|()| write_atomic(&dir.join("spec.json"), &(spec.to_json() + "\n")))
        {
            let handle = self.handle_of(sid).expect("registered above");
            handle.set_state(SessionState::Failed(format!("cannot persist spec: {e}")));
            return Err(WireError::new(
                "io-error",
                format!("cannot persist session state: {e}"),
            ));
        }
        let handle = self.handle_of(sid).expect("registered above");
        self.spawn_session(handle);
        Ok(sid)
    }

    /// Start (or restart) a session's tuning thread.
    fn spawn_session(self: &Arc<Self>, handle: Arc<SessionHandle>) {
        let dir = self.session_dir(handle.sid);
        let journal = dir.join("journal.jsonl");
        let trace = dir.join("trace.jsonl");

        let base = match handle.spec.executor_spec() {
            Ok(spec) => spec.build(),
            Err(e) => {
                handle.set_state(SessionState::Failed(e));
                return;
            }
        };
        let sink = match JsonlSink::create(&trace) {
            Ok(sink) => sink,
            Err(e) => {
                handle.set_state(SessionState::Failed(format!(
                    "cannot create trace file: {e}"
                )));
                return;
            }
        };
        let executor: Arc<SessionExecutor> = Arc::new(MemoExecutor::new(
            GatedExecutor::new(
                RemoteExecutor::new(base, Arc::clone(&self.workers), handle.sid),
                Arc::clone(&self.sched),
                handle.sid,
            ),
            Arc::clone(&self.memo),
        ));
        *handle.executor.lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::clone(&executor));

        let mut opts = handle.spec.tuner_options();
        opts.checkpoint = Some(journal.clone());
        if journal.exists() {
            opts.resume = Some(journal);
        }
        opts.stop = Some(Arc::clone(&handle.stop));

        let mut bus = TelemetryBus::new().with_spans(self.config.spans);
        bus.add(Arc::new(sink));
        bus.add(Arc::clone(&handle.stream) as Arc<dyn jtune_telemetry::TuningObserver>);
        bus.add(Arc::clone(&handle.probe) as Arc<dyn jtune_telemetry::TuningObserver>);
        bus.add(Arc::clone(&handle.metrics) as Arc<dyn jtune_telemetry::TuningObserver>);

        handle.set_state(SessionState::Running);
        let thread_handle = Arc::clone(&handle);
        let result_path = dir.join("result.json");
        let cancelled_marker = dir.join("cancelled");
        let join = std::thread::spawn(move || {
            let program = thread_handle.spec.program.clone();
            let outcome = Tuner::new(opts).try_run(executor.as_ref(), &program, &bus);
            let next = match outcome {
                Ok(result) if result.suspended => {
                    if cancelled_marker.exists() {
                        SessionState::Cancelled
                    } else {
                        SessionState::Suspended
                    }
                }
                Ok(result) => {
                    match write_atomic(&result_path, &(result.session.to_json() + "\n")) {
                        Ok(()) => SessionState::Completed,
                        Err(e) => SessionState::Failed(format!("cannot persist result: {e}")),
                    }
                }
                Err(e) => SessionState::Failed(e.to_string()),
            };
            thread_handle.set_state(next);
            thread_handle.stream.close();
        });
        *handle.join.lock().unwrap_or_else(|p| p.into_inner()) = Some(join);
    }

    /// Render the status payload (one session, or all in ID order): the
    /// raw JSON array carried by [`Response::Sessions`].
    pub fn status(&self, sid: Option<u64>) -> Result<String, WireError> {
        let handles: Vec<Arc<SessionHandle>> = match sid {
            Some(sid) => vec![self.handle_of(sid)?],
            None => self
                .sessions
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .values()
                .cloned()
                .collect(),
        };
        let rows: Vec<String> = handles
            .iter()
            .map(|h| {
                let state = h.state();
                let mut obj = jtune_util::json::JsonObject::new()
                    .u64("sid", h.sid)
                    .str("program", &h.spec.program)
                    .str("state", state.label());
                if let SessionState::Failed(why) = &state {
                    obj = obj.str("error", why);
                }
                obj.u64("seed", h.spec.seed)
                    .u64("budget_mins", h.spec.budget_mins)
                    .u64("trials", h.probe.trials())
                    .f64("spent_secs", h.probe.spent_secs())
                    .u64("screened", h.probe.screened())
                    .u64("model_fits", h.probe.model_fits())
                    .u64("shared_hits", h.shared_hits())
                    .u64("sched_runs", self.sched.grants(h.sid))
                    .f64("sched_cost_secs", self.sched.charged(h.sid).as_secs_f64())
                    .finish()
            })
            .collect();
        Ok(jtune_util::json::array_of(&rows))
    }

    /// The daemon-level metrics registry (frame-handling histogram and
    /// worker-plane counters).
    pub fn server_metrics(&self) -> &MetricsRegistry {
        self.metrics.as_ref()
    }

    /// Render the stats payloads for [`Response::Stats`]: the raw JSON
    /// array of per-session rows (ID order, each carrying its aggregated
    /// counters + histograms as rendered by [`MetricsRegistry::to_json`])
    /// and the raw JSON object of daemon-level metrics (frame-handling
    /// histogram, worker-plane counters).
    pub fn stats(&self, sid: Option<u64>) -> Result<(String, String), WireError> {
        let handles: Vec<Arc<SessionHandle>> = match sid {
            Some(sid) => vec![self.handle_of(sid)?],
            None => self
                .sessions
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .values()
                .cloned()
                .collect(),
        };
        let rows: Vec<String> = handles
            .iter()
            .map(|h| {
                jtune_util::json::JsonObject::new()
                    .u64("sid", h.sid)
                    .str("program", &h.spec.program)
                    .str("state", h.state().label())
                    .raw("metrics", &h.metrics.to_json())
                    .finish()
            })
            .collect();
        Ok((jtune_util::json::array_of(&rows), self.metrics.to_json()))
    }

    /// Fetch a completed session's record line (the bytes of
    /// `result.json`, which equal one-shot `jtune tune --json` output).
    pub fn result(&self, sid: u64) -> Result<String, WireError> {
        let handle = self.handle_of(sid)?;
        let state = handle.state();
        // Gate on the state, not the file: the record is renamed into
        // place before the state flips to completed, so a completed
        // session's `result.json` is always whole.
        if state != SessionState::Completed {
            return Err(WireError::new(
                "no-result",
                format!("session {sid} has no result (state: {})", state.label()),
            ));
        }
        let path = self.session_dir(sid).join("result.json");
        match std::fs::read_to_string(&path) {
            Ok(text) => Ok(text.trim_end().to_string()),
            Err(e) => Err(WireError::new(
                "io-error",
                format!("session {sid} result unreadable: {e}"),
            )),
        }
    }

    /// Cancel a session: raise its stop flag and leave a marker so it is
    /// never resumed.
    pub fn cancel(&self, sid: u64) -> Result<(), WireError> {
        let handle = self.handle_of(sid)?;
        if handle.state().is_terminal() {
            return Err(WireError::new(
                "no-session",
                format!(
                    "session {sid} already {}; nothing to cancel",
                    handle.state().label()
                ),
            ));
        }
        let marker = self.session_dir(sid).join("cancelled");
        if let Err(e) = std::fs::write(&marker, b"") {
            return Err(WireError::new(
                "io-error",
                format!("cannot mark session cancelled: {e}"),
            ));
        }
        handle.stop.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Begin shutdown. With `drain`, every running session is stopped at
    /// its next batch boundary and joined — its journal then resumes it
    /// on the next daemon start. Returns once sessions are down.
    pub fn shutdown(&self, drain: bool) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Stop offering trials to workers first: queued jobs fall back
        // to the local pool, long-polling workers are told to exit, and
        // in-flight leases may still stream their results back.
        self.workers.drain();
        let handles: Vec<Arc<SessionHandle>> = self
            .sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .cloned()
            .collect();
        if drain {
            for h in &handles {
                h.stop.store(true, Ordering::SeqCst);
            }
            for h in &handles {
                let join = h.join.lock().unwrap_or_else(|p| p.into_inner()).take();
                if let Some(join) = join {
                    let _ = join.join();
                }
            }
        }
    }

    /// Is the server past a shutdown request?
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Serve connections until a `shutdown` request arrives. Each
    /// connection is handled on its own thread; the accept loop itself
    /// is unblocked by a loopback connection after shutdown.
    pub fn serve(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        let addr = listener.local_addr()?;
        for conn in listener.incoming() {
            if self.is_shutting_down() {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            let server = Arc::clone(self);
            std::thread::spawn(move || {
                let _ = server.handle_connection(stream, addr);
            });
        }
        Ok(())
    }

    fn handle_connection(
        self: &Arc<Self>,
        stream: TcpStream,
        self_addr: std::net::SocketAddr,
    ) -> std::io::Result<()> {
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = stream;
        // A worker's registration lives exactly as long as the
        // connection that registered it: when the socket drops — worker
        // killed, network gone, clean exit — its leases are reissued
        // immediately instead of waiting out their deadlines.
        let mut conn_wid: Option<u64> = None;
        let outcome = self.serve_frames(reader, &mut writer, self_addr, &mut conn_wid);
        if let Some(wid) = conn_wid {
            self.workers.deregister(wid);
        }
        outcome
    }

    /// Pump one connection's request/reply frames. Every reply goes
    /// through [`wire::render_reply`] — the single encode path the
    /// protocol tests pin byte-for-byte.
    fn serve_frames(
        self: &Arc<Self>,
        reader: BufReader<TcpStream>,
        writer: &mut TcpStream,
        self_addr: std::net::SocketAddr,
        conn_wid: &mut Option<u64>,
    ) -> std::io::Result<()> {
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            // Frame-handling wall time: from parse to reply written
            // (watch streams count until their stream closes).
            let frame_start = std::time::Instant::now();
            let request = match wire::parse_request(&line) {
                Ok(r) => r,
                Err(e) => {
                    writeln!(writer, "{}", wire::error_frame(&e))?;
                    self.metrics
                        .record_wall("frame_wall", frame_start.elapsed().as_secs_f64());
                    continue;
                }
            };
            let reply: Result<Response, WireError> = match request {
                Request::Submit(spec) => self.submit(spec).map(|sid| Response::Sid { sid }),
                Request::Status { sid } => self
                    .status(sid)
                    .map(|sessions| Response::Sessions { sessions }),
                Request::Stats { sid } => self
                    .stats(sid)
                    .map(|(sessions, server)| Response::Stats { sessions, server }),
                Request::Cancel { sid } => self.cancel(sid).map(|()| Response::Sid { sid }),
                Request::Result { sid } => match self.result(sid) {
                    Ok(record) => {
                        writeln!(
                            writer,
                            "{}",
                            wire::render_response(&Response::RecordFollows)
                        )?;
                        writeln!(writer, "{record}")?;
                        self.metrics
                            .record_wall("frame_wall", frame_start.elapsed().as_secs_f64());
                        continue;
                    }
                    Err(e) => Err(e),
                },
                Request::Watch { sid } => match self.handle_of(sid) {
                    Ok(handle) => {
                        // Subscribe before checking for terminality so a
                        // session finishing right now cannot slip between
                        // the check and the subscription.
                        let events = handle.stream.subscribe();
                        writeln!(writer, "{}", wire::render_response(&Response::Sid { sid }))?;
                        if !handle.state().is_terminal() {
                            for event in events {
                                writeln!(writer, "{}", wire::watch_event_line(&event))?;
                            }
                        }
                        writeln!(writer, "{}", wire::watch_done_frame())?;
                        self.metrics
                            .record_wall("frame_wall", frame_start.elapsed().as_secs_f64());
                        continue;
                    }
                    Err(e) => Err(e),
                },
                Request::Register { executor, slots } => {
                    let wid = self.workers.register(&executor, slots);
                    // Re-registering on the same connection replaces the
                    // old identity (and releases its leases).
                    if let Some(old) = conn_wid.replace(wid) {
                        self.workers.deregister(old);
                    }
                    Ok(Response::WorkerAck { wid })
                }
                Request::Lease { wid, wait_ms } => self
                    .workers
                    .lease(wid, Duration::from_millis(wait_ms))
                    .map(|grant| match grant {
                        LeaseGrant::Offer(offer) => Response::Leased(offer),
                        LeaseGrant::Idle => Response::Idle { draining: false },
                        LeaseGrant::Draining => Response::Idle { draining: true },
                    }),
                Request::Complete {
                    wid,
                    lease,
                    outcome,
                } => outcome.to_measurement().map(|measurement| {
                    self.workers.complete(wid, lease, measurement);
                    Response::LeaseAck { lease }
                }),
                Request::Fail { wid, lease, reason } => {
                    self.workers.fail(wid, lease, &reason);
                    Ok(Response::LeaseAck { lease })
                }
                Request::Heartbeat { wid, leases } => {
                    let extended = self.workers.heartbeat(wid, &leases);
                    Ok(Response::HeartbeatAck { leases: extended })
                }
                Request::Deregister { wid } => {
                    self.workers.deregister(wid);
                    if *conn_wid == Some(wid) {
                        *conn_wid = None;
                    }
                    Ok(Response::WorkerAck { wid })
                }
                Request::Shutdown { drain } => {
                    self.shutdown(drain);
                    writeln!(
                        writer,
                        "{}",
                        wire::render_response(&Response::ShuttingDown { drain })
                    )?;
                    self.metrics
                        .record_wall("frame_wall", frame_start.elapsed().as_secs_f64());
                    // Unblock the accept loop so `serve` returns.
                    let _ = TcpStream::connect(self_addr);
                    return Ok(());
                }
            };
            writeln!(writer, "{}", wire::render_reply(&reply))?;
            self.metrics
                .record_wall("frame_wall", frame_start.elapsed().as_secs_f64());
        }
        Ok(())
    }
}

/// Convenience for tests and embedders: pull a `u64` payload field out
/// of a parsed ok frame.
pub fn frame_u64(frame: &JsonValue, key: &str) -> Option<u64> {
    frame.get(key).and_then(JsonValue::as_u64)
}
