//! The tuning daemon: session manager, state directory, TCP front-end.

use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use autotuner_core::Tuner;
use jtune_harness::{MeasurementCache, MemoExecutor};
use jtune_telemetry::{EventStreamSink, JsonlSink, MetricsRegistry, TelemetryBus, TraceEvent};
use jtune_util::json::JsonValue;
use jtune_workloads::workload_by_name;

use crate::net::{self, ChaosWriter, FrameReadError, NetFaultPlan};
use crate::scheduler::{FairScheduler, GatedExecutor};
use crate::session::{ProgressProbe, SessionSpec, SessionState};
use crate::wire::{self, Request, Response, WireError};
use crate::worker::{LeaseGrant, RemoteExecutor, WorkerRegistry};

/// The concrete executor stack a daemon session runs on: the session's
/// base executor (built from its [`ExecutorSpec`]) offered to the
/// worker pool, gated by the fair-share scheduler, memoized across
/// sessions. Memo sits outermost so cache hits never consume a
/// scheduler slot or a worker lease — and since the memo key is the
/// inner executor's tag (which [`RemoteExecutor`] passes through), a
/// trial measured by one worker is a free hit for every session and
/// every other worker.
///
/// [`ExecutorSpec`]: jtune_harness::ExecutorSpec
pub type SessionExecutor = MemoExecutor<GatedExecutor<RemoteExecutor>>;

/// Replace `path` with `contents` atomically: write a sibling temp file,
/// then rename it into place. Session records run to megabytes, so a
/// plain `fs::write` is visible half-written — both to a `result`
/// request polling for completion and to [`TuneServer::restore`] after a
/// kill mid-write, which treats the file's existence as the completion
/// marker. Neither may ever observe a torn prefix.
fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path)
}

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum concurrently *running* sessions. Submissions past this
    /// wait in the admission queue (up to [`ServerConfig::queue`]);
    /// past both bounds they are shed with the `overloaded` error code
    /// and a `retry_after_ms` hint.
    pub capacity: usize,
    /// Extra sessions admitted as queued beyond `capacity`; they start
    /// as running sessions finish. `capacity + queue` bounds resident
    /// non-terminal sessions.
    pub queue: usize,
    /// Concurrent measurement slots shared (fairly) by all sessions.
    pub slots: usize,
    /// Durable session state: one subdirectory per session holding
    /// `spec.json`, `journal.jsonl`, `trace.jsonl` and, when finished,
    /// `result.json`.
    pub state_dir: PathBuf,
    /// Emit timing spans on each session's bus (default `false`). Spans
    /// are ephemeral — the serialised `trace.jsonl` is byte-identical
    /// either way — but they feed the per-session wall histograms the
    /// `stats` op reports.
    pub spans: bool,
    /// Worker lease lifetime in milliseconds: a leased trial whose
    /// `complete` (or heartbeat) has not arrived this long after issue
    /// is reissued to another worker, and eventually abandoned to the
    /// local pool.
    pub lease_ms: u64,
    /// Per-connection read/write deadline in milliseconds; `0` (the
    /// default) leaves sockets deadline-free, preserving pre-hardening
    /// behaviour. With a deadline set, a peer that stalls mid-frame (a
    /// slow-loris client, a hung worker) is reaped when the deadline
    /// lapses instead of pinning its handler thread forever.
    pub io_timeout_ms: u64,
    /// Cap on one wire frame in bytes; longer lines are rejected with
    /// the `frame-too-large` code and bounded memory.
    pub max_frame: usize,
    /// Maximum concurrently served connections; `0` (the default) is
    /// unlimited. Over-limit connections get one `overloaded` error
    /// frame and are dropped without a handler thread.
    pub conn_limit: usize,
    /// Seeded network-fault schedule applied to every connection's
    /// outbound frames (chaos testing); inactive by default, which is
    /// byte-invisible on the wire.
    pub net_faults: NetFaultPlan,
}

impl ServerConfig {
    /// Defaults: capacity 8 running + 8 queued, 4 slots, spans off,
    /// 10 s leases, no socket deadlines, 1 MiB frame cap, unlimited
    /// connections, chaos off.
    pub fn new(state_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            capacity: 8,
            queue: 8,
            slots: 4,
            state_dir: state_dir.into(),
            spans: false,
            lease_ms: 10_000,
            io_timeout_ms: 0,
            max_frame: net::DEFAULT_MAX_FRAME,
            conn_limit: 0,
            net_faults: NetFaultPlan::inactive(),
        }
    }
}

/// One resident session: spec, live state, control handles.
pub struct SessionHandle {
    /// The session's stable ID.
    pub sid: u64,
    /// What was submitted.
    pub spec: SessionSpec,
    state: Mutex<SessionState>,
    stop: Arc<AtomicBool>,
    stream: Arc<EventStreamSink>,
    probe: Arc<ProgressProbe>,
    metrics: Arc<MetricsRegistry>,
    executor: Mutex<Option<Arc<SessionExecutor>>>,
    join: Mutex<Option<JoinHandle<()>>>,
}

impl SessionHandle {
    fn new(sid: u64, spec: SessionSpec, state: SessionState) -> SessionHandle {
        SessionHandle {
            sid,
            spec,
            state: Mutex::new(state),
            stop: Arc::new(AtomicBool::new(false)),
            stream: Arc::new(EventStreamSink::new()),
            probe: Arc::new(ProgressProbe::new()),
            metrics: Arc::new(MetricsRegistry::new()),
            executor: Mutex::new(None),
            join: Mutex::new(None),
        }
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    fn set_state(&self, next: SessionState) {
        *self.state.lock().unwrap_or_else(|p| p.into_inner()) = next;
    }

    /// Trials this session has evaluated so far (live).
    pub fn trials(&self) -> u64 {
        self.probe.trials()
    }

    /// This session's live metrics registry (event counters plus, with
    /// spans enabled, wall-clock histograms).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Cross-session cache hits this session has enjoyed so far.
    pub fn shared_hits(&self) -> u64 {
        self.executor
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .as_ref()
            .map(|e| e.hits())
            .unwrap_or(0)
    }
}

/// The long-running tuning service. One instance owns every session,
/// the shared measurement memo, and the fair-share scheduler; `serve`
/// pumps a TCP listener through it.
pub struct TuneServer {
    config: ServerConfig,
    sched: Arc<FairScheduler>,
    memo: Arc<MeasurementCache>,
    sessions: Mutex<BTreeMap<u64, Arc<SessionHandle>>>,
    next_sid: AtomicU64,
    shutting_down: AtomicBool,
    /// Daemon-level metrics: the `frame_wall` histogram of per-request
    /// handling time (fed directly by `handle_connection`) plus the
    /// worker-plane counters (`workers_registered`, `trials_leased`,
    /// `leases_expired`) fed by the registry's telemetry bus.
    metrics: Arc<MetricsRegistry>,
    /// Remote worker ledger: registered workers, queued trials,
    /// outstanding leases.
    workers: Arc<WorkerRegistry>,
    /// Connections currently being served (admission control).
    connections: AtomicUsize,
    /// Monotonic connection counter: each connection's index into the
    /// [`NetFaultPlan`] schedule.
    next_conn: AtomicU64,
}

/// How long an over-capacity submitter should wait before retrying,
/// in milliseconds: grows with the depth of the overload so a thundering
/// herd spreads out, capped at five seconds.
fn overload_hint(resident: usize, bound: usize) -> u64 {
    (100 * (resident.saturating_sub(bound) as u64 + 1)).min(5_000)
}

impl TuneServer {
    /// Build a server and restore any resumable sessions found in the
    /// state directory (suspended by a drain or orphaned by a crash).
    pub fn new(config: ServerConfig) -> std::io::Result<Arc<TuneServer>> {
        std::fs::create_dir_all(&config.state_dir)?;
        let metrics = Arc::new(MetricsRegistry::new());
        let mut worker_bus = TelemetryBus::new();
        worker_bus.add(Arc::clone(&metrics) as Arc<dyn jtune_telemetry::TuningObserver>);
        let workers = Arc::new(WorkerRegistry::new(
            Duration::from_millis(config.lease_ms.max(1)),
            worker_bus,
        ));
        let server = Arc::new(TuneServer {
            sched: Arc::new(FairScheduler::new(config.slots)),
            memo: Arc::new(MeasurementCache::new()),
            sessions: Mutex::new(BTreeMap::new()),
            next_sid: AtomicU64::new(1),
            shutting_down: AtomicBool::new(false),
            metrics,
            workers,
            connections: AtomicUsize::new(0),
            next_conn: AtomicU64::new(0),
            config,
        });
        server.restore()?;
        Ok(server)
    }

    /// The worker registry (for tests and embedders).
    pub fn workers(&self) -> &Arc<WorkerRegistry> {
        &self.workers
    }

    /// The shared cross-session measurement cache (for tests/metrics).
    pub fn memo(&self) -> &Arc<MeasurementCache> {
        &self.memo
    }

    /// Look up a resident session by ID.
    pub fn session(&self, sid: u64) -> Option<Arc<SessionHandle>> {
        self.sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&sid)
            .cloned()
    }

    /// Block until session `sid` reaches a terminal or suspended state
    /// (joins its thread); returns its final state.
    pub fn join_session(&self, sid: u64) -> Option<SessionState> {
        let handle = self.session(sid)?;
        let join = handle.join.lock().unwrap_or_else(|p| p.into_inner()).take();
        if let Some(join) = join {
            let _ = join.join();
        }
        Some(handle.state())
    }

    /// Feed an overload/robustness event to the daemon-level metrics
    /// registry. These events have no session bus to ride — they happen
    /// at admission or on the wire, before any session is involved — so
    /// they surface as daemon counters in `stats` instead of trace
    /// lines (all four are ephemeral, keeping traces byte-identical).
    fn note_event(&self, event: &TraceEvent) {
        jtune_telemetry::TuningObserver::on_event(self.metrics.as_ref(), event);
    }

    fn session_dir(&self, sid: u64) -> PathBuf {
        self.config.state_dir.join(sid.to_string())
    }

    fn handle_of(&self, sid: u64) -> Result<Arc<SessionHandle>, WireError> {
        self.sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .get(&sid)
            .cloned()
            .ok_or_else(|| WireError::new("unknown-session", format!("no session {sid}")))
    }

    /// Scan the state directory: register finished/cancelled sessions
    /// for `status`/`result`, and restart every resumable one.
    fn restore(self: &Arc<Self>) -> std::io::Result<()> {
        let mut max_sid = 0u64;
        for entry in std::fs::read_dir(&self.config.state_dir)? {
            let entry = entry?;
            let Some(sid) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.parse::<u64>().ok())
            else {
                continue;
            };
            max_sid = max_sid.max(sid);
            let dir = entry.path();
            let spec = match std::fs::read_to_string(dir.join("spec.json"))
                .ok()
                .and_then(|text| SessionSpec::parse(&text).ok())
            {
                Some(spec) => spec,
                None => continue, // torn submit: no usable spec, skip
            };
            let state = if dir.join("cancelled").exists() {
                SessionState::Cancelled
            } else if dir.join("result.json").exists() {
                SessionState::Completed
            } else {
                SessionState::Queued
            };
            self.sessions
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .insert(sid, Arc::new(SessionHandle::new(sid, spec, state)));
        }
        self.next_sid.store(max_sid + 1, Ordering::SeqCst);
        // Resumable sessions rejoin through the admission queue like
        // fresh submits, so a restart under a pile of suspended work
        // respects `capacity` instead of stampeding.
        self.kick_queue();
        Ok(())
    }

    /// Admit a new session: validate, persist the spec, start the
    /// session thread, return the session ID.
    pub fn submit(self: &Arc<Self>, spec: SessionSpec) -> Result<u64, WireError> {
        if workload_by_name(&spec.program).is_none() {
            return Err(WireError::new(
                "invalid-spec",
                format!("unknown workload {:?}", spec.program),
            ));
        }
        if let Err(e) = spec.tuner_options().validate() {
            return Err(WireError::new("invalid-spec", e.to_string()));
        }
        let sid = {
            // Admission control under the registry lock so concurrent
            // submits cannot both squeeze past the load-shed check.
            let mut sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
            let resident = sessions
                .values()
                .filter(|h| !h.state().is_terminal())
                .count();
            let bound = self.config.capacity + self.config.queue;
            if resident >= bound {
                let hint = overload_hint(resident, bound);
                self.note_event(&TraceEvent::ConnectionRejected {
                    reason: "overloaded".to_string(),
                    retry_after_ms: hint,
                });
                return Err(WireError::new(
                    "overloaded",
                    format!(
                        "daemon overloaded ({resident} resident sessions, bound {bound}); \
                         retry after the hint"
                    ),
                )
                .with_retry_after(hint));
            }
            let sid = self.next_sid.fetch_add(1, Ordering::SeqCst);
            sessions.insert(
                sid,
                Arc::new(SessionHandle::new(sid, spec.clone(), SessionState::Queued)),
            );
            sid
        };
        // Persist the spec before acknowledging: a daemon crash after
        // the ack can always resume the session from disk.
        let dir = self.session_dir(sid);
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|()| write_atomic(&dir.join("spec.json"), &(spec.to_json() + "\n")))
        {
            if let Ok(handle) = self.handle_of(sid) {
                handle.set_state(SessionState::Failed(format!("cannot persist spec: {e}")));
            }
            return Err(WireError::new(
                "io-error",
                format!("cannot persist session state: {e}"),
            ));
        }
        self.kick_queue();
        Ok(sid)
    }

    /// Start queued sessions while running ones number fewer than
    /// `capacity`, oldest first. Runs at submit, at restore, and as the
    /// last act of every session thread, so the queue drains exactly as
    /// fast as capacity frees up. Claims (flips Queued → Running) under
    /// the sessions lock, so concurrent kicks never double-start a
    /// session or overshoot capacity.
    fn kick_queue(self: &Arc<Self>) {
        loop {
            if self.is_shutting_down() {
                return;
            }
            let claimed: Vec<Arc<SessionHandle>> = {
                let sessions = self.sessions.lock().unwrap_or_else(|p| p.into_inner());
                let running = sessions
                    .values()
                    .filter(|h| h.state() == SessionState::Running)
                    .count();
                let room = self.config.capacity.saturating_sub(running);
                let picked: Vec<Arc<SessionHandle>> = sessions
                    .values()
                    .filter(|h| h.state() == SessionState::Queued)
                    .take(room)
                    .cloned()
                    .collect();
                for h in &picked {
                    h.set_state(SessionState::Running);
                }
                picked
            };
            if claimed.is_empty() {
                return;
            }
            for handle in claimed {
                self.spawn_session(handle);
            }
            // A spawn can fail synchronously (bad executor spec, trace
            // file unwritable), freeing its claimed slot immediately —
            // loop to offer that slot to the next queued session.
        }
    }

    /// Start (or restart) a session's tuning thread.
    fn spawn_session(self: &Arc<Self>, handle: Arc<SessionHandle>) {
        let dir = self.session_dir(handle.sid);
        let journal = dir.join("journal.jsonl");
        let trace = dir.join("trace.jsonl");

        let base = match handle.spec.executor_spec() {
            Ok(spec) => spec.build(),
            Err(e) => {
                handle.set_state(SessionState::Failed(e));
                return;
            }
        };
        let sink = match JsonlSink::create(&trace) {
            Ok(sink) => sink,
            Err(e) => {
                handle.set_state(SessionState::Failed(format!(
                    "cannot create trace file: {e}"
                )));
                return;
            }
        };
        let executor: Arc<SessionExecutor> = Arc::new(MemoExecutor::new(
            GatedExecutor::new(
                RemoteExecutor::new(base, Arc::clone(&self.workers), handle.sid),
                Arc::clone(&self.sched),
                handle.sid,
            ),
            Arc::clone(&self.memo),
        ));
        *handle.executor.lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::clone(&executor));

        let mut opts = handle.spec.tuner_options();
        opts.checkpoint = Some(journal.clone());
        if journal.exists() {
            opts.resume = Some(journal);
        }
        opts.stop = Some(Arc::clone(&handle.stop));

        let mut bus = TelemetryBus::new().with_spans(self.config.spans);
        bus.add(Arc::new(sink));
        bus.add(Arc::clone(&handle.stream) as Arc<dyn jtune_telemetry::TuningObserver>);
        bus.add(Arc::clone(&handle.probe) as Arc<dyn jtune_telemetry::TuningObserver>);
        bus.add(Arc::clone(&handle.metrics) as Arc<dyn jtune_telemetry::TuningObserver>);

        handle.set_state(SessionState::Running);
        let thread_handle = Arc::clone(&handle);
        let result_path = dir.join("result.json");
        let cancelled_marker = dir.join("cancelled");
        // Weak: the session thread must not keep a dropped server alive
        // just to kick its queue.
        let server = Arc::downgrade(self);
        let join = std::thread::spawn(move || {
            let program = thread_handle.spec.program.clone();
            let outcome = Tuner::new(opts).try_run(executor.as_ref(), &program, &bus);
            let next = match outcome {
                Ok(result) if result.suspended => {
                    if cancelled_marker.exists() {
                        SessionState::Cancelled
                    } else {
                        SessionState::Suspended
                    }
                }
                Ok(result) => {
                    match write_atomic(&result_path, &(result.session.to_json() + "\n")) {
                        Ok(()) => SessionState::Completed,
                        Err(e) => SessionState::Failed(format!("cannot persist result: {e}")),
                    }
                }
                Err(e) => SessionState::Failed(e.to_string()),
            };
            thread_handle.set_state(next);
            thread_handle.stream.close();
            // This session's capacity slot is free: start the next
            // queued session, if any.
            if let Some(server) = server.upgrade() {
                server.kick_queue();
            }
        });
        *handle.join.lock().unwrap_or_else(|p| p.into_inner()) = Some(join);
    }

    /// Render the status payload (one session, or all in ID order): the
    /// raw JSON array carried by [`Response::Sessions`].
    pub fn status(&self, sid: Option<u64>) -> Result<String, WireError> {
        let handles: Vec<Arc<SessionHandle>> = match sid {
            Some(sid) => vec![self.handle_of(sid)?],
            None => self
                .sessions
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .values()
                .cloned()
                .collect(),
        };
        let rows: Vec<String> = handles
            .iter()
            .map(|h| {
                let state = h.state();
                let mut obj = jtune_util::json::JsonObject::new()
                    .u64("sid", h.sid)
                    .str("program", &h.spec.program)
                    .str("state", state.label());
                if let SessionState::Failed(why) = &state {
                    obj = obj.str("error", why);
                }
                obj.u64("seed", h.spec.seed)
                    .u64("budget_mins", h.spec.budget_mins)
                    .u64("trials", h.probe.trials())
                    .f64("spent_secs", h.probe.spent_secs())
                    .u64("screened", h.probe.screened())
                    .u64("model_fits", h.probe.model_fits())
                    .u64("shared_hits", h.shared_hits())
                    .u64("sched_runs", self.sched.grants(h.sid))
                    .f64("sched_cost_secs", self.sched.charged(h.sid).as_secs_f64())
                    .finish()
            })
            .collect();
        Ok(jtune_util::json::array_of(&rows))
    }

    /// The daemon-level metrics registry (frame-handling histogram and
    /// worker-plane counters).
    pub fn server_metrics(&self) -> &MetricsRegistry {
        self.metrics.as_ref()
    }

    /// Render the stats payloads for [`Response::Stats`]: the raw JSON
    /// array of per-session rows (ID order, each carrying its aggregated
    /// counters + histograms as rendered by [`MetricsRegistry::to_json`])
    /// and the raw JSON object of daemon-level metrics (frame-handling
    /// histogram, worker-plane counters).
    pub fn stats(&self, sid: Option<u64>) -> Result<(String, String), WireError> {
        let handles: Vec<Arc<SessionHandle>> = match sid {
            Some(sid) => vec![self.handle_of(sid)?],
            None => self
                .sessions
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .values()
                .cloned()
                .collect(),
        };
        let rows: Vec<String> = handles
            .iter()
            .map(|h| {
                jtune_util::json::JsonObject::new()
                    .u64("sid", h.sid)
                    .str("program", &h.spec.program)
                    .str("state", h.state().label())
                    .raw("metrics", &h.metrics.to_json())
                    .finish()
            })
            .collect();
        Ok((jtune_util::json::array_of(&rows), self.metrics.to_json()))
    }

    /// Fetch a completed session's record line (the bytes of
    /// `result.json`, which equal one-shot `jtune tune --json` output).
    pub fn result(&self, sid: u64) -> Result<String, WireError> {
        let handle = self.handle_of(sid)?;
        let state = handle.state();
        // Gate on the state, not the file: the record is renamed into
        // place before the state flips to completed, so a completed
        // session's `result.json` is always whole.
        if state != SessionState::Completed {
            return Err(WireError::new(
                "no-result",
                format!("session {sid} has no result (state: {})", state.label()),
            ));
        }
        let path = self.session_dir(sid).join("result.json");
        match std::fs::read_to_string(&path) {
            Ok(text) => Ok(text.trim_end().to_string()),
            Err(e) => Err(WireError::new(
                "io-error",
                format!("session {sid} result unreadable: {e}"),
            )),
        }
    }

    /// Cancel a session: raise its stop flag and leave a marker so it is
    /// never resumed.
    pub fn cancel(&self, sid: u64) -> Result<(), WireError> {
        let handle = self.handle_of(sid)?;
        if handle.state().is_terminal() {
            return Err(WireError::new(
                "no-session",
                format!(
                    "session {sid} already {}; nothing to cancel",
                    handle.state().label()
                ),
            ));
        }
        let marker = self.session_dir(sid).join("cancelled");
        if let Err(e) = std::fs::write(&marker, b"") {
            return Err(WireError::new(
                "io-error",
                format!("cannot mark session cancelled: {e}"),
            ));
        }
        handle.stop.store(true, Ordering::SeqCst);
        Ok(())
    }

    /// Begin shutdown. With `drain`, every running session is stopped at
    /// its next batch boundary and joined — its journal then resumes it
    /// on the next daemon start. Returns once sessions are down.
    pub fn shutdown(&self, drain: bool) {
        self.shutting_down.store(true, Ordering::SeqCst);
        // Stop offering trials to workers first: queued jobs fall back
        // to the local pool, long-polling workers are told to exit, and
        // in-flight leases may still stream their results back.
        self.workers.drain();
        let handles: Vec<Arc<SessionHandle>> = self
            .sessions
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .values()
            .cloned()
            .collect();
        if drain {
            for h in &handles {
                h.stop.store(true, Ordering::SeqCst);
            }
            for h in &handles {
                let join = h.join.lock().unwrap_or_else(|p| p.into_inner()).take();
                if let Some(join) = join {
                    let _ = join.join();
                }
            }
        }
        // Persist the daemon-level counters (overload, retries, worker
        // plane) so a post-mortem `jtune report` on the state directory
        // can explain a chaos run without a live daemon to ask.
        let _ = write_atomic(
            &self.config.state_dir.join("server-metrics.json"),
            &(self.metrics.to_json() + "\n"),
        );
    }

    /// Is the server past a shutdown request?
    pub fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::SeqCst)
    }

    /// Serve connections until a `shutdown` request arrives. Each
    /// connection is handled on its own thread; the accept loop itself
    /// is unblocked by a loopback connection after shutdown. With a
    /// connection limit set, over-limit connections are shed at accept
    /// with one `overloaded` error frame — no handler thread, no read.
    pub fn serve(self: &Arc<Self>, listener: TcpListener) -> std::io::Result<()> {
        let addr = listener.local_addr()?;
        for conn in listener.incoming() {
            if self.is_shutting_down() {
                break;
            }
            let mut stream = match conn {
                Ok(s) => s,
                Err(_) => continue,
            };
            if self.config.conn_limit > 0
                && self.connections.load(Ordering::SeqCst) >= self.config.conn_limit
            {
                self.note_event(&TraceEvent::ConnectionRejected {
                    reason: "conn-limit".to_string(),
                    retry_after_ms: 250,
                });
                let err = WireError::new(
                    "overloaded",
                    format!(
                        "connection limit ({}) reached; retry after the hint",
                        self.config.conn_limit
                    ),
                )
                .with_retry_after(250);
                let _ = writeln!(stream, "{}", wire::error_frame(&err));
                continue;
            }
            self.connections.fetch_add(1, Ordering::SeqCst);
            let server = Arc::clone(self);
            std::thread::spawn(move || {
                let _ = server.handle_connection(stream, addr);
                server.connections.fetch_sub(1, Ordering::SeqCst);
            });
        }
        Ok(())
    }

    fn handle_connection(
        self: &Arc<Self>,
        stream: TcpStream,
        self_addr: std::net::SocketAddr,
    ) -> std::io::Result<()> {
        // Socket deadlines are the slow-loris defence: a peer that
        // stalls mid-frame (or never drains its replies) trips the
        // timeout and this handler thread is reclaimed, instead of
        // being pinned until the peer deigns to finish.
        if self.config.io_timeout_ms > 0 {
            let deadline = Some(Duration::from_millis(self.config.io_timeout_ms));
            stream.set_read_timeout(deadline)?;
            stream.set_write_timeout(deadline)?;
        }
        let conn = self.next_conn.fetch_add(1, Ordering::SeqCst);
        let reader = BufReader::new(stream.try_clone()?);
        let mut writer = ChaosWriter::new(stream, self.config.net_faults, conn);
        // A worker's registration lives exactly as long as the
        // connection that registered it: when the socket drops — worker
        // killed, network gone, clean exit — its leases are reissued
        // immediately instead of waiting out their deadlines.
        let mut conn_wid: Option<u64> = None;
        let outcome = self.serve_frames(reader, &mut writer, self_addr, &mut conn_wid);
        if let Some(wid) = conn_wid {
            self.workers.deregister(wid);
        }
        outcome
    }

    /// Pump one connection's request/reply frames. Every reply goes
    /// through [`wire::render_reply`] — the single encode path the
    /// protocol tests pin byte-for-byte. Reads are bounded by the
    /// configured frame cap; replies pass through the connection's
    /// [`ChaosWriter`] (transparent unless a fault plan is active).
    fn serve_frames(
        self: &Arc<Self>,
        mut reader: BufReader<TcpStream>,
        writer: &mut ChaosWriter<TcpStream>,
        self_addr: std::net::SocketAddr,
        conn_wid: &mut Option<u64>,
    ) -> std::io::Result<()> {
        loop {
            let line = match net::read_frame(&mut reader, self.config.max_frame) {
                Ok(Some(line)) => line,
                Ok(None) => return Ok(()),
                Err(FrameReadError::Io(e)) => return Err(e),
                Err(e) => {
                    let bytes = match &e {
                        FrameReadError::TooLarge { bytes, .. } => *bytes as u64,
                        _ => 0,
                    };
                    self.note_event(&TraceEvent::FrameRejected {
                        code: e.code().to_string(),
                        bytes,
                    });
                    writer.write_frame(&wire::error_frame(&e.to_wire_error()))?;
                    if matches!(e, FrameReadError::TooLarge { .. }) {
                        // Past an oversized line the frame boundary is
                        // untrusted: close instead of resyncing.
                        return Ok(());
                    }
                    // A non-UTF-8 line was consumed whole up to its
                    // newline, so the stream is resynchronised.
                    continue;
                }
            };
            if line.trim().is_empty() {
                continue;
            }
            // Frame-handling wall time: from parse to reply written
            // (watch streams count until their stream closes).
            let frame_start = std::time::Instant::now();
            let request = match wire::parse_request(&line) {
                Ok(r) => r,
                Err(e) => {
                    self.note_event(&TraceEvent::FrameRejected {
                        code: e.code.clone(),
                        bytes: line.len() as u64,
                    });
                    writer.write_frame(&wire::error_frame(&e))?;
                    self.metrics
                        .record_wall("frame_wall", frame_start.elapsed().as_secs_f64());
                    continue;
                }
            };
            // Retried requests carry a retry tag (attempt, backoff) the
            // client spliced in; count them so `stats` shows how much
            // of the load is retry pressure.
            if line.contains("\"attempt\":") {
                if let Ok(v) = jtune_util::json::parse(&line) {
                    if let Some((attempt, delay_ms)) = wire::retry_tag(&v) {
                        self.note_event(&TraceEvent::ClientRetried { attempt, delay_ms });
                    }
                }
            }
            let reply: Result<Response, WireError> = match request {
                Request::Submit(spec) => self.submit(spec).map(|sid| Response::Sid { sid }),
                Request::Status { sid } => self
                    .status(sid)
                    .map(|sessions| Response::Sessions { sessions }),
                Request::Stats { sid } => self
                    .stats(sid)
                    .map(|(sessions, server)| Response::Stats { sessions, server }),
                Request::Cancel { sid } => self.cancel(sid).map(|()| Response::Sid { sid }),
                Request::Result { sid } => match self.result(sid) {
                    Ok(record) => {
                        writer.write_frame(&wire::render_response(&Response::RecordFollows))?;
                        writer.write_frame(&record)?;
                        self.metrics
                            .record_wall("frame_wall", frame_start.elapsed().as_secs_f64());
                        continue;
                    }
                    Err(e) => Err(e),
                },
                Request::Watch { sid } => match self.handle_of(sid) {
                    Ok(handle) => {
                        // Subscribe before checking for terminality so a
                        // session finishing right now cannot slip between
                        // the check and the subscription.
                        let events = handle.stream.subscribe();
                        writer.write_frame(&wire::render_response(&Response::Sid { sid }))?;
                        if !handle.state().is_terminal() {
                            for event in events {
                                writer.write_frame(&wire::watch_event_line(&event))?;
                            }
                        }
                        writer.write_frame(&wire::watch_done_frame())?;
                        self.metrics
                            .record_wall("frame_wall", frame_start.elapsed().as_secs_f64());
                        continue;
                    }
                    Err(e) => Err(e),
                },
                Request::Register {
                    executor,
                    slots,
                    reconnect,
                } => {
                    let wid = self.workers.register(&executor, slots);
                    // Re-registering on the same connection replaces the
                    // old identity (and releases its leases).
                    if let Some(old) = conn_wid.replace(wid) {
                        self.workers.deregister(old);
                    }
                    // A reconnecting worker names its previous identity:
                    // deregister it now so its leases reissue immediately
                    // instead of waiting out their deadlines.
                    if let Some(rc) = reconnect {
                        if rc.prev_wid != wid {
                            self.workers.deregister(rc.prev_wid);
                        }
                        self.note_event(&TraceEvent::WorkerReconnected {
                            wid,
                            attempts: rc.attempts,
                        });
                    }
                    Ok(Response::WorkerAck { wid })
                }
                Request::Lease { wid, wait_ms } => self
                    .workers
                    .lease(wid, Duration::from_millis(wait_ms))
                    .map(|grant| match grant {
                        LeaseGrant::Offer(offer) => Response::Leased(offer),
                        LeaseGrant::Idle => Response::Idle { draining: false },
                        LeaseGrant::Draining => Response::Idle { draining: true },
                    }),
                Request::Complete {
                    wid,
                    lease,
                    outcome,
                } => outcome.to_measurement().map(|measurement| {
                    self.workers.complete(wid, lease, measurement);
                    Response::LeaseAck { lease }
                }),
                Request::Fail { wid, lease, reason } => {
                    self.workers.fail(wid, lease, &reason);
                    Ok(Response::LeaseAck { lease })
                }
                Request::Heartbeat { wid, leases } => {
                    let extended = self.workers.heartbeat(wid, &leases);
                    Ok(Response::HeartbeatAck { leases: extended })
                }
                Request::Deregister { wid } => {
                    self.workers.deregister(wid);
                    if *conn_wid == Some(wid) {
                        *conn_wid = None;
                    }
                    Ok(Response::WorkerAck { wid })
                }
                Request::Shutdown { drain } => {
                    self.shutdown(drain);
                    writer.write_frame(&wire::render_response(&Response::ShuttingDown {
                        drain,
                    }))?;
                    self.metrics
                        .record_wall("frame_wall", frame_start.elapsed().as_secs_f64());
                    // Unblock the accept loop so `serve` returns.
                    let _ = TcpStream::connect(self_addr);
                    return Ok(());
                }
            };
            writer.write_frame(&wire::render_reply(&reply))?;
            self.metrics
                .record_wall("frame_wall", frame_start.elapsed().as_secs_f64());
        }
    }
}

/// Convenience for tests and embedders: pull a `u64` payload field out
/// of a parsed ok frame.
pub fn frame_u64(frame: &JsonValue, key: &str) -> Option<u64> {
    frame.get(key).and_then(JsonValue::as_u64)
}
