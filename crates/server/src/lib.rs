//! `jtune-server`: a concurrent multi-session tuning service.
//!
//! The one-shot `jtune tune` command runs a single tuning session to
//! completion in the foreground. This crate turns the same machinery
//! into a long-running daemon that many clients share:
//!
//! - **Session manager** ([`TuneServer`]): owns any number of
//!   concurrent tuning sessions, each with its own seed, budget,
//!   checkpoint journal and telemetry trace, addressed by a stable
//!   session ID and persisted under a state directory.
//! - **Fair-share scheduler** ([`FairScheduler`]): multiplexes a fixed
//!   pool of measurement slots across sessions round-robin, with
//!   per-session accounting, so one greedy session cannot starve the
//!   rest.
//! - **Wire protocol** ([`wire`]): versioned line-delimited JSON over
//!   TCP, spoken through one typed [`Request`]/[`Response`] pair —
//!   `submit`, `status`, `watch` (streamed events), `result`, `cancel`,
//!   `shutdown` with graceful drain, and the worker plane (`register`,
//!   `lease`, `complete`, `fail`, `heartbeat`, `deregister`) — built
//!   entirely on `jtune-util`'s deterministic JSON support (no external
//!   deps).
//! - **Remote trial leasing** ([`worker`]): `jtune worker` processes
//!   register capabilities, long-poll for leases and stream outcomes
//!   back; a [`WorkerRegistry`] reissues lost leases (dead connection,
//!   missed deadline) to surviving workers or the local pool, so a
//!   session always finishes.
//! - **Overload hardening** ([`net`]): bounded frame reads with a
//!   stable `frame-too-large` code, per-connection socket deadlines, a
//!   connection limit, an admission queue that sheds excess submits
//!   with `overloaded` + a `retry_after_ms` hint, and a seeded
//!   [`NetFaultPlan`] chaos schedule for drop/delay/garble/disconnect
//!   injection — all off by default, leaving the wire byte-identical.
//! - **Cross-session sharing**: all sessions measure through one shared
//!   [`MeasurementCache`](jtune_harness::MeasurementCache), so a
//!   `(program, config, seed)` measured by one session — on any worker —
//!   is free for every other; per-session hit counts appear in `status`
//!   replies.
//!
//! Determinism is the contract throughout: a session's trace and result
//! are a pure function of its spec, byte-identical to the one-shot
//! `jtune tune` run with the same flags, no matter how many sessions
//! run beside it, how the scheduler interleaves them, which workers
//! measured its trials, or whether the daemon was drained and restarted
//! mid-session.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod net;
pub mod scheduler;
pub mod server;
pub mod session;
pub mod wire;
pub mod worker;

pub use client::{with_retries, Client};
pub use net::{read_frame, ChaosWriter, FrameReadError, NetFault, NetFaultPlan};
pub use scheduler::{FairScheduler, GatedExecutor, SchedPermit};
pub use server::{ServerConfig, SessionHandle, TuneServer};
pub use session::{ProgressProbe, SessionSpec, SessionState};
pub use wire::{LeaseOffer, Reconnect, Request, Response, TrialOutcome, WireError};
pub use worker::{
    run_worker, LeaseGrant, RemoteExecutor, WorkerOptions, WorkerRegistry, WorkerStats,
};
