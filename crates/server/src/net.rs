//! Socket-level hardening between the TCP stream and the frame codec:
//! bounded frame reads and seeded network-fault injection.
//!
//! Two independent layers live here:
//!
//! - [`read_frame`] — the bounded replacement for `BufRead::read_line`
//!   used by the daemon, the client and the worker. It never buffers
//!   more than the configured cap, so a peer streaming one giant line
//!   (accidentally or maliciously) costs bounded memory and gets the
//!   stable `frame-too-large` error code instead of an allocation storm.
//!   Non-UTF-8 frames are rejected with `bad-frame` before they reach
//!   the JSON parser.
//! - [`NetFaultPlan`] — the network sibling of
//!   [`jtune_harness::FaultPlan`]: a seeded, bit-reproducible schedule
//!   of frame drops, delays, garbles and disconnects, applied on the
//!   *write* side of a connection by [`ChaosWriter`]. Dropping an
//!   outbound frame at one end is indistinguishable from losing it in
//!   flight, so write-side injection exercises both peers' recovery
//!   paths without a bespoke proxy. An inactive plan (all rates zero,
//!   the default) is byte-invisible: every frame passes through
//!   untouched, keeping the byte-identical-trace contract intact.

use std::io::{self, BufRead, Write};

use jtune_util::{Rng, SplitMix64};

use crate::wire::WireError;

/// Default cap on one *inbound request* frame, in bytes (1 MiB).
/// Requests are small by construction — the largest carries one
/// configuration delta — so the default leaves orders of magnitude of
/// headroom while still bounding a hostile line aimed at the daemon.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Cap on a *reply payload* frame read by a client or worker (1 GiB).
/// Reply lines legitimately scale with session size — a long session's
/// record is one multi-megabyte JSON line — so the client-side bound
/// exists only to keep a hostile or impersonated daemon from streaming
/// an endless unterminated line, not to police honest payloads.
pub const PAYLOAD_MAX_FRAME: usize = 1 << 30;

/// Why a bounded frame read failed.
#[derive(Debug)]
pub enum FrameReadError {
    /// The underlying socket read failed (includes read timeouts).
    Io(io::Error),
    /// The line exceeded the frame cap; `bytes` is how much of it was
    /// observed before the reader gave up (at least the cap).
    TooLarge {
        /// Bytes observed before the reject.
        bytes: usize,
        /// The cap that was exceeded.
        cap: usize,
    },
    /// The line was not valid UTF-8.
    NotUtf8,
}

impl FrameReadError {
    /// The stable wire error code for this failure.
    pub fn code(&self) -> &'static str {
        match self {
            FrameReadError::Io(_) => "io-error",
            FrameReadError::TooLarge { .. } => "frame-too-large",
            FrameReadError::NotUtf8 => "bad-frame",
        }
    }

    /// Convert into the structured wire error a reply frame carries.
    pub fn to_wire_error(&self) -> WireError {
        match self {
            FrameReadError::Io(e) => WireError::new("io-error", e.to_string()),
            FrameReadError::TooLarge { bytes, cap } => WireError::new(
                "frame-too-large",
                format!("frame exceeds the {cap}-byte cap ({bytes}+ bytes)"),
            ),
            FrameReadError::NotUtf8 => WireError::new("bad-frame", "frame is not valid UTF-8"),
        }
    }
}

impl std::fmt::Display for FrameReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let e = self.to_wire_error();
        write!(f, "{}: {}", e.code, e.message)
    }
}

/// Read one newline-terminated frame, buffering at most `max_frame`
/// bytes. Returns `Ok(None)` at a clean EOF (connection closed between
/// frames). A final unterminated line at EOF is returned as a frame,
/// matching `BufRead::read_line` semantics. On [`FrameReadError::TooLarge`]
/// the stream is left mid-line; callers should reply with the
/// `frame-too-large` code and drop the connection, since frame
/// boundaries can no longer be trusted.
pub fn read_frame<R: BufRead>(
    reader: &mut R,
    max_frame: usize,
) -> Result<Option<String>, FrameReadError> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let (used, done) = {
            let chunk = match reader.fill_buf() {
                Ok(c) => c,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FrameReadError::Io(e)),
            };
            if chunk.is_empty() {
                (0, true)
            } else {
                match chunk.iter().position(|&b| b == b'\n') {
                    Some(pos) => {
                        buf.extend_from_slice(&chunk[..pos]);
                        (pos + 1, true)
                    }
                    None => {
                        buf.extend_from_slice(chunk);
                        (chunk.len(), false)
                    }
                }
            }
        };
        reader.consume(used);
        if buf.len() > max_frame {
            return Err(FrameReadError::TooLarge {
                bytes: buf.len(),
                cap: max_frame,
            });
        }
        if done {
            if buf.is_empty() && used == 0 {
                return Ok(None);
            }
            if buf.last() == Some(&b'\r') {
                buf.pop();
            }
            return match String::from_utf8(buf) {
                Ok(s) => Ok(Some(s)),
                Err(_) => Err(FrameReadError::NotUtf8),
            };
        }
    }
}

/// One injected network fault, decided per outbound frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetFault {
    /// Deliver the frame untouched.
    None,
    /// Deliver the frame after sleeping this many milliseconds.
    DelayMs(u64),
    /// Deliver a corrupted copy of the frame (the peer sees a torn
    /// frame and answers `bad-frame`).
    Garble,
    /// Lose the frame and kill the connection (the peer sees EOF and
    /// its reconnect/retry path runs).
    Drop,
    /// Deliver the frame, then kill the connection.
    Disconnect,
}

/// A seeded network-chaos schedule, mirroring
/// [`jtune_harness::FaultPlan`]: which fault (if any) hits frame *n* of
/// connection *c* is a pure function of `(plan, c, n)`, so a chaos run
/// is bit-reproducible given the same connection ordering.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetFaultPlan {
    /// Seed of the fault schedule.
    pub seed: u64,
    /// Probability a frame is dropped (connection killed with it).
    pub drop_rate: f64,
    /// Probability a frame is delayed.
    pub delay_rate: f64,
    /// Probability a frame is garbled in flight.
    pub garble_rate: f64,
    /// Probability the connection is killed after the frame.
    pub disconnect_rate: f64,
    /// Upper bound on one injected delay, milliseconds.
    pub max_delay_ms: u64,
}

impl Default for NetFaultPlan {
    fn default() -> Self {
        NetFaultPlan::inactive()
    }
}

impl NetFaultPlan {
    /// The no-op plan: every frame passes through byte-identical.
    pub fn inactive() -> NetFaultPlan {
        NetFaultPlan {
            seed: 0,
            drop_rate: 0.0,
            delay_rate: 0.0,
            garble_rate: 0.0,
            disconnect_rate: 0.0,
            max_delay_ms: 0,
        }
    }

    /// A mixed-chaos plan faulting roughly `rate` of all frames,
    /// split 30% drops, 30% delays, 20% garbles, 20% disconnects —
    /// the network analogue of [`jtune_harness::FaultPlan::transient`].
    pub fn chaotic(rate: f64, seed: u64) -> NetFaultPlan {
        let rate = rate.clamp(0.0, 1.0);
        NetFaultPlan {
            seed,
            drop_rate: rate * 0.3,
            delay_rate: rate * 0.3,
            garble_rate: rate * 0.2,
            disconnect_rate: rate * 0.2,
            max_delay_ms: 25,
        }
    }

    /// Does this plan ever fault a frame?
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0
            || self.delay_rate > 0.0
            || self.garble_rate > 0.0
            || self.disconnect_rate > 0.0
    }

    /// The fault (if any) injected on frame `frame` of connection
    /// `conn`. Pure: same plan, connection and frame index always give
    /// the same fault (same mixing recipe as
    /// [`jtune_harness::FaultPlan::roll`]).
    pub fn roll(&self, conn: u64, frame: u64) -> NetFault {
        if !self.is_active() {
            return NetFault::None;
        }
        let mut rng = SplitMix64::new(
            self.seed ^ conn.rotate_left(32) ^ frame.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        let u = rng.next_f64();
        if u < self.drop_rate {
            NetFault::Drop
        } else if u < self.drop_rate + self.delay_rate {
            let ms = 1 + (rng.next_u64() % self.max_delay_ms.max(1));
            NetFault::DelayMs(ms)
        } else if u < self.drop_rate + self.delay_rate + self.garble_rate {
            NetFault::Garble
        } else if u < self.drop_rate + self.delay_rate + self.garble_rate + self.disconnect_rate {
            NetFault::Disconnect
        } else {
            NetFault::None
        }
    }
}

/// Frame-writing wrapper applying a [`NetFaultPlan`] between the codec
/// and the socket. With an inactive plan it is a transparent
/// `writeln!`; with an active one, each outbound frame rolls the
/// schedule and may be delayed, garbled, dropped or followed by a
/// connection kill. Injected kills surface as `ConnectionAborted`
/// errors so callers take their ordinary dead-connection path.
#[derive(Debug)]
pub struct ChaosWriter<W: Write> {
    inner: W,
    plan: NetFaultPlan,
    conn: u64,
    frame: u64,
    killed: bool,
}

impl<W: Write> ChaosWriter<W> {
    /// Wrap `inner` as connection `conn` of `plan`'s schedule.
    pub fn new(inner: W, plan: NetFaultPlan, conn: u64) -> ChaosWriter<W> {
        ChaosWriter {
            inner,
            plan,
            conn,
            frame: 0,
            killed: false,
        }
    }

    /// The wrapped writer (for flushes or socket-level calls).
    pub fn get_mut(&mut self) -> &mut W {
        &mut self.inner
    }

    fn injected_kill(&mut self, what: &str) -> io::Error {
        self.killed = true;
        io::Error::new(
            io::ErrorKind::ConnectionAborted,
            format!("injected network fault: {what}"),
        )
    }

    /// Write one frame (a line, newline appended) through the fault
    /// schedule.
    pub fn write_frame(&mut self, line: &str) -> io::Result<()> {
        if self.killed {
            return Err(self.injected_kill("connection already killed"));
        }
        let fault = self.plan.roll(self.conn, self.frame);
        self.frame += 1;
        match fault {
            NetFault::None => writeln!(self.inner, "{line}"),
            NetFault::DelayMs(ms) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
                writeln!(self.inner, "{line}")
            }
            NetFault::Garble => {
                // Corrupt the frame but keep it one line: flip a byte in
                // the middle to break the JSON without hiding the tear.
                let mut garbled = line.as_bytes().to_vec();
                let mid = garbled.len() / 2;
                if let Some(b) = garbled.get_mut(mid) {
                    *b = if *b == b'!' { b'?' } else { b'!' };
                }
                garbled.retain(|&b| b != b'\n');
                self.inner.write_all(&garbled)?;
                self.inner.write_all(b"\n")
            }
            NetFault::Drop => Err(self.injected_kill("frame dropped")),
            NetFault::Disconnect => {
                writeln!(self.inner, "{line}")?;
                let _ = self.inner.flush();
                Err(self.injected_kill("disconnect after frame"))
            }
        }
    }

    /// Flush the wrapped writer.
    pub fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn frame_from(bytes: &[u8], cap: usize) -> Result<Option<String>, FrameReadError> {
        read_frame(&mut BufReader::with_capacity(8, bytes), cap)
    }

    #[test]
    fn reads_frames_like_read_line_but_bounded() {
        let mut r = BufReader::with_capacity(8, &b"{\"v\":1}\nsecond line\npartial"[..]);
        assert_eq!(read_frame(&mut r, 64).unwrap().as_deref(), Some("{\"v\":1}"));
        assert_eq!(
            read_frame(&mut r, 64).unwrap().as_deref(),
            Some("second line")
        );
        // A final unterminated line still parses (read_line semantics).
        assert_eq!(read_frame(&mut r, 64).unwrap().as_deref(), Some("partial"));
        assert_eq!(read_frame(&mut r, 64).unwrap(), None);
    }

    #[test]
    fn oversized_frames_fail_without_unbounded_buffering() {
        let big = vec![b'x'; 1024];
        match frame_from(&big, 100) {
            Err(FrameReadError::TooLarge { bytes, cap }) => {
                assert_eq!(cap, 100);
                // The reader gave up near the cap, not at the full line:
                // memory stays bounded however long the line runs.
                assert!(bytes <= 100 + 8 + 1, "buffered {bytes} bytes");
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        assert_eq!(
            frame_from(&big, 100).unwrap_err().code(),
            "frame-too-large"
        );
    }

    #[test]
    fn exact_cap_frames_pass() {
        let mut line = vec![b'y'; 100];
        line.push(b'\n');
        let want = "y".repeat(100);
        assert_eq!(
            frame_from(&line, 100).unwrap().as_deref(),
            Some(want.as_str())
        );
    }

    #[test]
    fn non_utf8_frames_are_bad_frames() {
        let err = frame_from(&[0xFF, 0xFE, b'\n'], 64).unwrap_err();
        assert!(matches!(err, FrameReadError::NotUtf8));
        assert_eq!(err.code(), "bad-frame");
        assert_eq!(err.to_wire_error().code, "bad-frame");
    }

    #[test]
    fn crlf_line_endings_are_trimmed() {
        assert_eq!(
            frame_from(b"{\"v\":1}\r\n", 64).unwrap().as_deref(),
            Some("{\"v\":1}")
        );
    }

    #[test]
    fn fault_plan_is_pure_and_inactive_by_default() {
        let off = NetFaultPlan::inactive();
        assert!(!off.is_active());
        for frame in 0..100 {
            assert_eq!(off.roll(1, frame), NetFault::None);
        }
        let plan = NetFaultPlan::chaotic(0.5, 42);
        assert!(plan.is_active());
        let a: Vec<NetFault> = (0..200).map(|f| plan.roll(3, f)).collect();
        let b: Vec<NetFault> = (0..200).map(|f| plan.roll(3, f)).collect();
        assert_eq!(a, b, "schedule must be a pure function");
        // The mix covers every fault kind at a 50% aggregate rate.
        assert!(a.contains(&NetFault::Drop));
        assert!(a.contains(&NetFault::Garble));
        assert!(a.contains(&NetFault::Disconnect));
        assert!(a.iter().any(|f| matches!(f, NetFault::DelayMs(_))));
        assert!(a.contains(&NetFault::None));
        // Different connections draw different schedules.
        let c: Vec<NetFault> = (0..200).map(|f| plan.roll(4, f)).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn chaos_writer_with_inactive_plan_is_byte_transparent() {
        let mut out = Vec::new();
        let mut w = ChaosWriter::new(&mut out, NetFaultPlan::inactive(), 7);
        w.write_frame("{\"v\":1,\"ok\":true}").unwrap();
        w.write_frame("{\"v\":1,\"sid\":2}").unwrap();
        assert_eq!(out, b"{\"v\":1,\"ok\":true}\n{\"v\":1,\"sid\":2}\n");
    }

    #[test]
    fn chaos_writer_injects_faults_and_stays_dead_after_a_kill() {
        // A plan that always drops: the first write dies, and the
        // writer refuses further frames like a closed socket would.
        let plan = NetFaultPlan {
            seed: 1,
            drop_rate: 1.0,
            ..NetFaultPlan::inactive()
        };
        let mut out = Vec::new();
        let mut w = ChaosWriter::new(&mut out, plan, 0);
        let err = w.write_frame("{\"v\":1}").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionAborted);
        assert!(w.write_frame("{\"v\":1}").is_err());
        assert!(out.is_empty(), "dropped frames never reach the wire");

        // A plan that always garbles: the frame arrives as one torn
        // line that no longer parses as the original bytes.
        let plan = NetFaultPlan {
            seed: 1,
            garble_rate: 1.0,
            ..NetFaultPlan::inactive()
        };
        let mut out = Vec::new();
        let mut w = ChaosWriter::new(&mut out, plan, 0);
        w.write_frame("{\"v\":1,\"ok\":true}").unwrap();
        let line = String::from_utf8(out).unwrap();
        assert!(line.ends_with('\n'));
        assert_eq!(line.matches('\n').count(), 1);
        assert_ne!(line, "{\"v\":1,\"ok\":true}\n");
    }
}
