//! Session specs, the lifecycle state machine, and progress probing.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use autotuner_core::{ModelPolicy, TunerOptions};
use jtune_harness::ExecutorSpec;
use jtune_telemetry::{TraceEvent, TuningObserver};
use jtune_util::json::{self, JsonObject, JsonValue};
use jtune_util::SimDuration;

/// What a client submits: the session-defining knobs of a tuning run.
///
/// A spec maps to [`TunerOptions`] exactly the way the one-shot
/// `jtune tune` command line does, so a daemon session with a given
/// `(program, budget, seed)` produces a trace byte-identical to
/// `jtune tune <program> --budget <mins> --seed <seed> --checkpoint ...`.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionSpec {
    /// Workload name (`compress`, `dacapo:h2`, ...).
    pub program: String,
    /// Tuning budget in virtual minutes (the paper used 200).
    pub budget_mins: u64,
    /// Master seed: the session is a pure function of it.
    pub seed: u64,
    /// Optional hard cap on evaluations (small smoke sessions).
    pub max_evaluations: Option<u64>,
    /// Surrogate screening over-proposal factor; `Some` enables
    /// model-guided screening (the one-shot `--screen-ratio` /
    /// `--model`). `None` keeps the legacy byte-stable pipeline, and the
    /// field is omitted from spec JSON so old `spec.json` files and
    /// clients round-trip unchanged.
    pub screen_ratio: Option<f64>,
    /// Search technique override (e.g. `portfolio`, `model:ensemble`);
    /// `None` means the default ensemble and is omitted from spec JSON.
    pub technique: Option<String>,
}

impl SessionSpec {
    /// A spec with the same defaults as one-shot `jtune tune <program>`.
    pub fn new(program: impl Into<String>) -> SessionSpec {
        let defaults = TunerOptions::default();
        SessionSpec {
            program: program.into(),
            budget_mins: defaults.budget.as_mins_f64() as u64,
            seed: defaults.seed,
            max_evaluations: None,
            screen_ratio: None,
            technique: None,
        }
    }

    /// Append this spec's fields to a JSON object under construction
    /// (used by both the submit frame and the persisted `spec.json`).
    pub fn fill(&self, obj: JsonObject) -> JsonObject {
        let obj = obj
            .str("program", &self.program)
            .u64("budget_mins", self.budget_mins)
            .u64("seed", self.seed);
        let obj = match self.max_evaluations {
            Some(cap) => obj.u64("max_evals", cap),
            None => obj,
        };
        let obj = match self.screen_ratio {
            Some(ratio) => obj.f64("screen_ratio", ratio),
            None => obj,
        };
        match &self.technique {
            Some(name) => obj.str("technique", name),
            None => obj,
        }
    }

    /// Render as a standalone JSON object (the `spec.json` format).
    pub fn to_json(&self) -> String {
        self.fill(JsonObject::new()).finish()
    }

    /// Read the spec fields out of a parsed JSON object (a submit frame
    /// or a persisted `spec.json`).
    pub fn from_json_value(v: &JsonValue) -> Result<SessionSpec, String> {
        let program = v
            .get("program")
            .and_then(JsonValue::as_str)
            .ok_or("missing 'program'")?
            .to_string();
        if program.is_empty() {
            return Err("'program' must not be empty".to_string());
        }
        let defaults = SessionSpec::new(&program);
        let u64_or = |k: &str, default: u64| -> Result<u64, String> {
            match v.get(k) {
                None => Ok(default),
                Some(raw) => raw.as_u64().ok_or(format!("'{k}' must be an integer")),
            }
        };
        Ok(SessionSpec {
            budget_mins: u64_or("budget_mins", defaults.budget_mins)?,
            seed: u64_or("seed", defaults.seed)?,
            max_evaluations: match v.get("max_evals") {
                None => None,
                Some(raw) => Some(raw.as_u64().ok_or("'max_evals' must be an integer")?),
            },
            screen_ratio: match v.get("screen_ratio") {
                None => None,
                Some(raw) => Some(raw.as_f64().ok_or("'screen_ratio' must be a number")?),
            },
            technique: match v.get("technique") {
                None => None,
                Some(raw) => Some(
                    raw.as_str()
                        .ok_or("'technique' must be a string")?
                        .to_string(),
                ),
            },
            program,
        })
    }

    /// Parse a standalone `spec.json` document.
    pub fn parse(text: &str) -> Result<SessionSpec, String> {
        SessionSpec::from_json_value(&json::parse(text)?)
    }

    /// The [`TunerOptions`] this spec denotes — identical to what
    /// `jtune tune` builds for the equivalent flags. The caller wires in
    /// the server-side extras (checkpoint path, resume path, stop flag),
    /// none of which affect the trial stream.
    pub fn tuner_options(&self) -> TunerOptions {
        let mut opts = TunerOptions {
            budget: SimDuration::from_mins(self.budget_mins),
            seed: self.seed,
            ..TunerOptions::default()
        };
        opts.max_evaluations = self.max_evaluations;
        if let Some(ratio) = self.screen_ratio {
            opts.model = Some(ModelPolicy {
                screen_ratio: ratio,
                ..ModelPolicy::default()
            });
        }
        if let Some(name) = &self.technique {
            opts.technique = name.clone();
        }
        opts
    }

    /// The [`ExecutorSpec`] this session measures on — the same
    /// description the one-shot CLI and remote workers build from, so
    /// the executor tag (and with it the memo key and journal resume
    /// signature) is identical wherever a trial runs. Daemon sessions
    /// are simulator-backed, so this resolves `sim:<program>`.
    pub fn executor_spec(&self) -> Result<ExecutorSpec, String> {
        ExecutorSpec::named(&format!("sim:{}", self.program))
    }
}

/// Where a session is in its life. Terminal states keep their dirs (and
/// results) on disk; `Suspended` sessions resume on daemon restart.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionState {
    /// Accepted, thread not yet running.
    Queued,
    /// Tuning loop in flight.
    Running,
    /// Stopped at a batch boundary by a drain; resumable from its
    /// journal.
    Suspended,
    /// Finished; `result.json` holds the session record.
    Completed,
    /// Cancelled by a client; never resumed.
    Cancelled,
    /// Died on a session error (bad spec surfaced late, unreadable
    /// journal, ...). The message says why.
    Failed(String),
}

impl SessionState {
    /// Stable label for status payloads.
    pub fn label(&self) -> &'static str {
        match self {
            SessionState::Queued => "queued",
            SessionState::Running => "running",
            SessionState::Suspended => "suspended",
            SessionState::Completed => "completed",
            SessionState::Cancelled => "cancelled",
            SessionState::Failed(_) => "failed",
        }
    }

    /// Terminal states never change again.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            SessionState::Completed | SessionState::Cancelled | SessionState::Failed(_)
        )
    }
}

/// A cheap observer that tracks a session's live progress for `status`
/// replies: trials evaluated, budget spent, and whether the terminal
/// event has been seen.
#[derive(Debug, Default)]
pub struct ProgressProbe {
    trials: AtomicU64,
    spent_secs_bits: AtomicU64,
    screened: AtomicU64,
    model_fits: AtomicU64,
    finished: AtomicBool,
}

impl ProgressProbe {
    /// Fresh probe.
    pub fn new() -> ProgressProbe {
        ProgressProbe::default()
    }

    /// Evaluations observed so far.
    pub fn trials(&self) -> u64 {
        self.trials.load(Ordering::Relaxed)
    }

    /// Budget spent so far, virtual seconds.
    pub fn spent_secs(&self) -> f64 {
        f64::from_bits(self.spent_secs_bits.load(Ordering::Relaxed))
    }

    /// Proposals the surrogate screened out before measurement.
    pub fn screened(&self) -> u64 {
        self.screened.load(Ordering::Relaxed)
    }

    /// Surrogate refits observed so far.
    pub fn model_fits(&self) -> u64 {
        self.model_fits.load(Ordering::Relaxed)
    }

    /// Has the session emitted its terminal event?
    pub fn finished(&self) -> bool {
        self.finished.load(Ordering::Relaxed)
    }
}

impl TuningObserver for ProgressProbe {
    fn on_event(&self, event: &TraceEvent) {
        match event {
            TraceEvent::TrialEvaluated {
                index,
                budget_spent_secs,
                ..
            } => {
                self.trials.store(index + 1, Ordering::Relaxed);
                self.spent_secs_bits
                    .store(budget_spent_secs.to_bits(), Ordering::Relaxed);
            }
            TraceEvent::CandidateScreened { .. } => {
                self.screened.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::ModelFit { refit: true, .. } => {
                self.model_fits.fetch_add(1, Ordering::Relaxed);
            }
            TraceEvent::SessionFinished { .. } => {
                self.finished.store(true, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trips_and_defaults_match_the_one_shot_cli() {
        let spec = SessionSpec {
            program: "compress".into(),
            budget_mins: 2,
            seed: 7,
            max_evaluations: Some(10),
            screen_ratio: None,
            technique: None,
        };
        assert_eq!(SessionSpec::parse(&spec.to_json()).unwrap(), spec);

        let defaults = SessionSpec::new("avrora");
        let opts = defaults.tuner_options();
        let baseline = TunerOptions::default();
        assert_eq!(opts.budget, baseline.budget);
        assert_eq!(opts.seed, baseline.seed);
        assert_eq!(opts.signature(), baseline.signature());
    }

    #[test]
    fn model_spec_fields_round_trip_and_reach_the_tuner() {
        let mut spec = SessionSpec::new("compress");
        // Legacy specs (no model fields) serialize without the new keys,
        // so pre-model daemons and spec.json files stay compatible.
        assert!(!spec.to_json().contains("screen_ratio"));
        assert!(!spec.to_json().contains("technique"));

        spec.screen_ratio = Some(6.0);
        spec.technique = Some("portfolio".to_string());
        let parsed = SessionSpec::parse(&spec.to_json()).unwrap();
        assert_eq!(parsed, spec);
        let opts = parsed.tuner_options();
        assert_eq!(opts.model.map(|m| m.screen_ratio), Some(6.0));
        assert_eq!(opts.technique, "portfolio");
    }

    #[test]
    fn spec_parsing_rejects_malformed_fields() {
        assert!(SessionSpec::parse("{}").is_err());
        assert!(SessionSpec::parse("{\"program\":\"\"}").is_err());
        assert!(SessionSpec::parse("{\"program\":\"c\",\"seed\":\"x\"}").is_err());
        assert!(SessionSpec::parse("{\"program\":\"c\",\"budget_mins\":-1}").is_err());
    }

    #[test]
    fn probe_tracks_trials_and_completion() {
        let probe = ProgressProbe::new();
        probe.on_event(&TraceEvent::TrialEvaluated {
            index: 4,
            technique: "t".into(),
            delta: vec![],
            repeat_secs: vec![],
            score_secs: Some(1.0),
            cost_secs: 2.0,
            budget_spent_secs: 12.5,
            gc_pause_total_ms: None,
            gc_collections: None,
            jit_compile_ms: None,
            jit_compiles: None,
            error: None,
            error_kind: None,
        });
        assert_eq!(probe.trials(), 5);
        assert!((probe.spent_secs() - 12.5).abs() < 1e-12);
        assert!(!probe.finished());
        probe.on_event(&TraceEvent::ModelFit {
            round: 1,
            samples: 16,
            refit: true,
        });
        probe.on_event(&TraceEvent::ModelFit {
            round: 2,
            samples: 16,
            refit: false,
        });
        probe.on_event(&TraceEvent::CandidateScreened {
            round: 2,
            fingerprint: 9,
            predicted_secs: 1.5,
            acquisition: 1.2,
        });
        assert_eq!(probe.model_fits(), 1, "cached fits are not refits");
        assert_eq!(probe.screened(), 1);
        probe.on_event(&TraceEvent::SessionFinished {
            program: "p".into(),
            default_secs: 2.0,
            best_secs: 1.0,
            improvement_percent: 50.0,
            evaluations: 5,
            spent_secs: 12.5,
            best_delta: vec![],
        });
        assert!(probe.finished());
    }
}
