//! The wire protocol: versioned, line-delimited JSON frames.
//!
//! Every request and reply is one JSON object on one line, carrying the
//! protocol version in `"v"`. Requests name their operation in `"op"`;
//! replies carry `"ok": true` plus an op-specific payload, or
//! `"ok": false` with a stable machine-readable `"code"` and a human
//! `"error"` message. Frames are rendered with `jtune-util`'s
//! deterministic JSON writer, so a given reply is always the same bytes.
//!
//! Operations:
//!
//! | op         | request fields                         | reply payload |
//! |------------|----------------------------------------|---------------|
//! | `submit`   | session spec (see [`SessionSpec`])     | `sid`         |
//! | `status`   | optional `sid`                         | `sessions` array |
//! | `watch`    | `sid`                                  | event stream (see below) |
//! | `result`   | `sid`                                  | record line (see below) |
//! | `cancel`   | `sid`                                  | `sid`         |
//! | `stats`    | optional `sid`                         | aggregated counters + histograms |
//! | `shutdown` | optional `drain` (default `true`)      | `draining`    |
//!
//! Two replies carry raw payload lines so clients (and CI scripts) can
//! byte-compare them against one-shot `jtune` output without a lossy
//! re-serialisation round trip:
//!
//! - `result`: an ok frame with `"follows": "record"`, then the
//!   [`SessionRecord`](jtune_harness::SessionRecord) JSON on its own line.
//! - `watch`: an ok frame, then each trace event wrapped as
//!   `{"v":1,"event":<event>}` ([`WATCH_EVENT_PREFIX`]), terminated by a
//!   `{"v":1,"ok":true,"done":true}` frame when the session ends.

use jtune_util::json::{self, JsonObject, JsonValue};

use crate::session::SessionSpec;

/// Protocol version spoken by this build. Requests with any other
/// version are rejected with code `bad-version`.
pub const VERSION: u64 = 1;

/// Exact prefix of a streamed watch-event line; the raw
/// [`TraceEvent`](jtune_telemetry::TraceEvent) JSON sits between this
/// prefix and a closing `}`.
pub const WATCH_EVENT_PREFIX: &str = "{\"v\":1,\"event\":";

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a new tuning session.
    Submit(SessionSpec),
    /// Report sessions (all, or one when `sid` is given).
    Status {
        /// Restrict to one session.
        sid: Option<u64>,
    },
    /// Stream a running session's trace events.
    Watch {
        /// The session to watch.
        sid: u64,
    },
    /// Fetch a completed session's record.
    Result {
        /// The session whose record to fetch.
        sid: u64,
    },
    /// Cancel a session (stops it at the next batch boundary).
    Cancel {
        /// The session to cancel.
        sid: u64,
    },
    /// Report aggregated metrics (all sessions, or one when `sid` is
    /// given): per-session event counters plus wall-clock histograms,
    /// and the daemon's frame-handling histogram.
    Stats {
        /// Restrict to one session.
        sid: Option<u64>,
    },
    /// Stop the daemon; with `drain`, suspend + checkpoint in-flight
    /// sessions first so a restart resumes them.
    Shutdown {
        /// Checkpoint in-flight sessions before exiting.
        drain: bool,
    },
}

/// A structured protocol error: a stable code plus a human message.
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// Stable machine-readable error code.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Build an error with the given stable code.
    pub fn new(code: &'static str, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// Parse one request line into a [`Request`].
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let v = json::parse(line).map_err(|e| WireError::new("bad-frame", e))?;
    match v.get("v").and_then(JsonValue::as_u64) {
        Some(VERSION) => {}
        Some(other) => {
            return Err(WireError::new(
                "bad-version",
                format!("protocol version {other} not supported (this daemon speaks {VERSION})"),
            ))
        }
        None => return Err(WireError::new("bad-frame", "missing 'v' field")),
    }
    let op = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| WireError::new("bad-frame", "missing 'op' field"))?;
    let sid_of = |v: &JsonValue| -> Result<u64, WireError> {
        v.get("sid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| WireError::new("bad-frame", format!("op {op:?} requires a 'sid'")))
    };
    match op {
        "submit" => {
            let spec =
                SessionSpec::from_json_value(&v).map_err(|e| WireError::new("invalid-spec", e))?;
            Ok(Request::Submit(spec))
        }
        "status" => Ok(Request::Status {
            sid: v.get("sid").and_then(JsonValue::as_u64),
        }),
        "watch" => Ok(Request::Watch { sid: sid_of(&v)? }),
        "result" => Ok(Request::Result { sid: sid_of(&v)? }),
        "cancel" => Ok(Request::Cancel { sid: sid_of(&v)? }),
        "stats" => Ok(Request::Stats {
            sid: v.get("sid").and_then(JsonValue::as_u64),
        }),
        "shutdown" => Ok(Request::Shutdown {
            drain: v
                .get("drain")
                .map(|d| d.as_bool().unwrap_or(true))
                .unwrap_or(true),
        }),
        other => Err(WireError::new(
            "unknown-op",
            format!("unknown op {other:?}"),
        )),
    }
}

/// Render a request (the client side of [`parse_request`]).
pub fn render_request(request: &Request) -> String {
    let base = JsonObject::new().u64("v", VERSION);
    match request {
        Request::Submit(spec) => spec.fill(base.str("op", "submit")).finish(),
        Request::Status { sid } => {
            let o = base.str("op", "status");
            match sid {
                Some(s) => o.u64("sid", *s).finish(),
                None => o.finish(),
            }
        }
        Request::Watch { sid } => base.str("op", "watch").u64("sid", *sid).finish(),
        Request::Result { sid } => base.str("op", "result").u64("sid", *sid).finish(),
        Request::Cancel { sid } => base.str("op", "cancel").u64("sid", *sid).finish(),
        Request::Stats { sid } => {
            let o = base.str("op", "stats");
            match sid {
                Some(s) => o.u64("sid", *s).finish(),
                None => o.finish(),
            }
        }
        Request::Shutdown { drain } => base.str("op", "shutdown").bool("drain", *drain).finish(),
    }
}

/// Start an ok reply frame; callers add their payload and `finish()`.
pub fn ok_frame() -> JsonObject {
    JsonObject::new().u64("v", VERSION).bool("ok", true)
}

/// Render a complete error reply frame.
pub fn error_frame(error: &WireError) -> String {
    JsonObject::new()
        .u64("v", VERSION)
        .bool("ok", false)
        .str("code", error.code)
        .str("error", &error.message)
        .finish()
}

/// Render one watch-stream event line wrapping the raw event JSON.
pub fn watch_event_line(event_json: &str) -> String {
    format!("{WATCH_EVENT_PREFIX}{event_json}}}")
}

/// Extract the raw event JSON from a watch-stream line, if it is one.
pub fn unwrap_watch_event(line: &str) -> Option<&str> {
    line.strip_prefix(WATCH_EVENT_PREFIX)?.strip_suffix('}')
}

/// The terminal frame of a watch stream.
pub fn watch_done_frame() -> String {
    ok_frame().bool("done", true).finish()
}

/// Parse a reply line; `Ok` gives the parsed frame, `Err` a decoded
/// server error (or a `bad-frame` error for unparseable lines).
pub fn parse_reply(line: &str) -> Result<JsonValue, WireError> {
    let v = json::parse(line).map_err(|e| WireError::new("bad-frame", e))?;
    if v.get("ok").and_then(JsonValue::as_bool) == Some(false) {
        let message = v
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown error")
            .to_string();
        // The code survives only as part of the message (codes are
        // 'static on the server side); clients match on message text or
        // treat any server error uniformly.
        let code = v.get("code").and_then(JsonValue::as_str).unwrap_or("error");
        return Err(WireError::new("server-error", format!("{code}: {message}")));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit(SessionSpec {
                program: "compress".into(),
                budget_mins: 2,
                seed: 7,
                max_evaluations: Some(12),
                screen_ratio: Some(4.0),
                technique: Some("portfolio".into()),
            }),
            Request::Status { sid: None },
            Request::Status { sid: Some(3) },
            Request::Watch { sid: 1 },
            Request::Result { sid: 2 },
            Request::Cancel { sid: 9 },
            Request::Stats { sid: None },
            Request::Stats { sid: Some(5) },
            Request::Shutdown { drain: false },
        ];
        for req in reqs {
            let line = render_request(&req);
            assert_eq!(parse_request(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn structured_errors_have_stable_codes() {
        assert_eq!(parse_request("not json").unwrap_err().code, "bad-frame");
        assert_eq!(
            parse_request("{\"op\":\"status\"}").unwrap_err().code,
            "bad-frame"
        );
        assert_eq!(
            parse_request("{\"v\":2,\"op\":\"status\"}")
                .unwrap_err()
                .code,
            "bad-version"
        );
        assert_eq!(
            parse_request("{\"v\":1,\"op\":\"fly\"}").unwrap_err().code,
            "unknown-op"
        );
        assert_eq!(
            parse_request("{\"v\":1,\"op\":\"watch\"}")
                .unwrap_err()
                .code,
            "bad-frame"
        );
        assert_eq!(
            parse_request("{\"v\":1,\"op\":\"submit\"}")
                .unwrap_err()
                .code,
            "invalid-spec"
        );
    }

    #[test]
    fn watch_event_lines_unwrap_to_the_exact_payload() {
        let event = "{\"type\":\"RoundProposed\",\"round\":3}";
        let line = watch_event_line(event);
        assert_eq!(unwrap_watch_event(&line), Some(event));
        assert_eq!(unwrap_watch_event(&watch_done_frame()), None);
    }

    #[test]
    fn error_frames_decode_as_errors() {
        let line = error_frame(&WireError::new("capacity", "daemon full"));
        let err = parse_reply(&line).unwrap_err();
        assert!(err.message.contains("capacity"));
        assert!(err.message.contains("daemon full"));
        let ok = parse_reply(&ok_frame().u64("sid", 4).finish()).unwrap();
        assert_eq!(ok.get("sid").and_then(JsonValue::as_u64), Some(4));
    }
}
