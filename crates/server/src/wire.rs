//! The wire protocol: versioned, line-delimited JSON frames.
//!
//! Every request and reply is one JSON object on one line, carrying the
//! protocol version in `"v"`. Requests name their operation in `"op"`;
//! replies carry `"ok": true` plus an op-specific payload, or
//! `"ok": false` with a stable machine-readable `"code"` and a human
//! `"error"` message. Frames are rendered with `jtune-util`'s
//! deterministic JSON writer, so a given reply is always the same bytes.
//!
//! Both directions are typed: requests parse into [`Request`] and every
//! reply the daemon can send is a [`Response`] variant. The server
//! encodes exclusively through [`render_response`], and the client and
//! worker decode exclusively through [`parse_response`] — one parse path
//! and one encode path for all three parties.
//!
//! Client plane:
//!
//! | op         | request fields                         | reply payload |
//! |------------|----------------------------------------|---------------|
//! | `submit`   | session spec (see [`SessionSpec`])     | `sid`         |
//! | `status`   | optional `sid`                         | `sessions` array |
//! | `watch`    | `sid`                                  | event stream (see below) |
//! | `result`   | `sid`                                  | record line (see below) |
//! | `cancel`   | `sid`                                  | `sid`         |
//! | `stats`    | optional `sid`                         | aggregated counters + histograms |
//! | `shutdown` | optional `drain` (default `true`)      | `draining`    |
//!
//! Worker plane (see [`crate::worker`] for the lease state machine):
//!
//! | op           | request fields                       | reply payload |
//! |--------------|--------------------------------------|---------------|
//! | `register`   | `executor` capability tag, `slots`   | `wid`         |
//! | `lease`      | `wid`, `wait_ms` long-poll bound     | lease offer, or `idle` (+ `draining`) |
//! | `complete`   | `wid`, `lease`, trial outcome        | `lease`       |
//! | `fail`       | `wid`, `lease`, `reason`             | `lease`       |
//! | `heartbeat`  | `wid`, in-flight `leases` array      | `leases` count extended |
//! | `deregister` | `wid`                                | `wid`         |
//!
//! Two replies carry raw payload lines so clients (and CI scripts) can
//! byte-compare them against one-shot `jtune` output without a lossy
//! re-serialisation round trip:
//!
//! - `result`: an ok frame with `"follows": "record"`, then the
//!   [`SessionRecord`](jtune_harness::SessionRecord) JSON on its own line.
//! - `watch`: an ok frame, then each trace event wrapped as
//!   `{"v":1,"event":<event>}` ([`WATCH_EVENT_PREFIX`]), terminated by a
//!   `{"v":1,"ok":true,"done":true}` frame when the session ends.

use jtune_harness::{Measurement, RunCounters, TrialError};
use jtune_util::json::{self, JsonObject, JsonValue};
use jtune_util::SimDuration;

use crate::session::SessionSpec;

/// Protocol version spoken by this build. Requests with any other
/// version are rejected with code `bad-version`.
pub const VERSION: u64 = 1;

/// Exact prefix of a streamed watch-event line; the raw
/// [`TraceEvent`](jtune_telemetry::TraceEvent) JSON sits between this
/// prefix and a closing `}`.
pub const WATCH_EVENT_PREFIX: &str = "{\"v\":1,\"event\":";

/// A parsed client or worker request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a new tuning session.
    Submit(SessionSpec),
    /// Report sessions (all, or one when `sid` is given).
    Status {
        /// Restrict to one session.
        sid: Option<u64>,
    },
    /// Stream a running session's trace events.
    Watch {
        /// The session to watch.
        sid: u64,
    },
    /// Fetch a completed session's record.
    Result {
        /// The session whose record to fetch.
        sid: u64,
    },
    /// Cancel a session (stops it at the next batch boundary).
    Cancel {
        /// The session to cancel.
        sid: u64,
    },
    /// Report aggregated metrics (all sessions, or one when `sid` is
    /// given): per-session event counters plus wall-clock histograms,
    /// and the daemon's frame-handling histogram.
    Stats {
        /// Restrict to one session.
        sid: Option<u64>,
    },
    /// Stop the daemon; with `drain`, suspend + checkpoint in-flight
    /// sessions first so a restart resumes them.
    Shutdown {
        /// Checkpoint in-flight sessions before exiting.
        drain: bool,
    },
    /// Register a remote worker's capabilities.
    Register {
        /// Executor-kind capability tag (e.g. `"sim"`): the worker can
        /// serve any lease whose executor tag starts `"<tag>:"`.
        executor: String,
        /// Concurrent trial slots the worker offers.
        slots: u64,
        /// Present when this registration replaces a lost connection:
        /// the daemon reissues the previous identity's leases at once
        /// and counts a worker reconnect. Absent on first registration
        /// (and from all pre-reconnect frames, whose bytes are pinned).
        reconnect: Option<Reconnect>,
    },
    /// Ask for work; the daemon long-polls up to `wait_ms` before
    /// answering `idle`.
    Lease {
        /// The worker id issued by `register`.
        wid: u64,
        /// Upper bound on how long the daemon may hold the request open.
        wait_ms: u64,
    },
    /// Stream a finished trial's outcome back.
    Complete {
        /// The worker id issued by `register`.
        wid: u64,
        /// The lease being fulfilled.
        lease: u64,
        /// The measurement, losslessly serialised.
        outcome: TrialOutcome,
    },
    /// Report a lease the worker could not run (unknown workload,
    /// capability mismatch); the daemon reissues the slot.
    Fail {
        /// The worker id issued by `register`.
        wid: u64,
        /// The lease being returned.
        lease: u64,
        /// Why the worker could not run it.
        reason: String,
    },
    /// Liveness ping extending the deadlines of in-flight leases.
    Heartbeat {
        /// The worker id issued by `register`.
        wid: u64,
        /// Leases the worker is still executing.
        leases: Vec<u64>,
    },
    /// Graceful worker exit; outstanding leases are reissued immediately.
    Deregister {
        /// The worker id issued by `register`.
        wid: u64,
    },
}

/// Retry metadata a re-registering worker attaches to its `register`
/// frame after losing its daemon connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Reconnect {
    /// The worker id the lost connection held; its leases are reissued
    /// immediately instead of waiting out their deadlines.
    pub prev_wid: u64,
    /// Reconnect attempts it took to get back in (1 = first retry).
    pub attempts: u64,
}

/// A lease offer: everything a worker needs to run one trial.
///
/// The configuration travels as its canonical `-XX:` argument delta
/// ([`JvmConfig::to_args`](jtune_flags::JvmConfig::to_args)); both ends
/// share the built-in registry, so
/// [`JvmConfig::parse_args`](jtune_flags::JvmConfig::parse_args)
/// reconstructs the exact configuration and `fingerprint` lets the
/// worker verify it did.
#[derive(Clone, Debug, PartialEq)]
pub struct LeaseOffer {
    /// Unique lease id; quoted back in `complete`/`fail`/`heartbeat`.
    pub lease: u64,
    /// The session the trial belongs to.
    pub sid: u64,
    /// The batch slot (diagnostic; the seed already encodes position).
    pub slot: u64,
    /// The positional measurement seed for this slot.
    pub seed: u64,
    /// Canonical fingerprint of the configuration, for verification.
    pub fingerprint: u64,
    /// The executor tag the trial must run under (e.g. `"sim:compress"`).
    pub executor: String,
    /// Milliseconds the worker has before the lease expires and the
    /// slot is reissued.
    pub deadline_ms: u64,
    /// The configuration as `-XX:` arguments (delta from defaults).
    pub config: Vec<String>,
}

/// A [`Measurement`] in wire form: exact u64 nanosecond fields, so the
/// round trip is lossless and remote trials merge byte-identically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrialOutcome {
    /// Run time in nanoseconds.
    pub time_ns: u64,
    /// p99 GC pause in nanoseconds, if observed.
    pub pause_p99_ns: Option<u64>,
    /// Total GC pause time in nanoseconds (present iff counters are).
    pub gc_pause_ns: Option<u64>,
    /// GC collections (present iff counters are).
    pub gc_collections: Option<u64>,
    /// JIT compile-stall time in nanoseconds (present iff counters are).
    pub jit_ns: Option<u64>,
    /// Methods JIT-compiled (present iff counters are).
    pub jit_compiles: Option<u64>,
    /// Failure kind tag ([`TrialError::kind`]), if the trial failed.
    pub error_kind: Option<String>,
    /// Failure message, if the trial failed.
    pub error: Option<String>,
}

impl TrialOutcome {
    /// Wire form of a finished measurement.
    pub fn from_measurement(m: &Measurement) -> TrialOutcome {
        TrialOutcome {
            time_ns: m.time.as_nanos(),
            pause_p99_ns: m.pause_p99.map(SimDuration::as_nanos),
            gc_pause_ns: m.counters.map(|c| c.gc_pause_total.as_nanos()),
            gc_collections: m.counters.map(|c| c.gc_collections),
            jit_ns: m.counters.map(|c| c.jit_compile_time.as_nanos()),
            jit_compiles: m.counters.map(|c| c.jit_compiles),
            error_kind: m.error.as_ref().map(|e| e.kind().to_string()),
            error: m.error.as_ref().map(|e| e.message().to_string()),
        }
    }

    /// Reconstruct the exact measurement. Fails (`bad-frame`) on an
    /// unknown error kind — the tags are a closed set.
    pub fn to_measurement(&self) -> Result<Measurement, WireError> {
        let error = match (&self.error_kind, &self.error) {
            (Some(kind), message) => {
                let message = message.clone().unwrap_or_default();
                Some(match kind.as_str() {
                    "crash" => TrialError::Crash(message),
                    "oom" => TrialError::Oom(message),
                    "timeout" => TrialError::Timeout(message),
                    "flag-conflict" => TrialError::FlagConflict(message),
                    other => {
                        return Err(WireError::new(
                            "bad-frame",
                            format!("unknown error kind {other:?}"),
                        ))
                    }
                })
            }
            (None, _) => None,
        };
        let counters = self.gc_pause_ns.map(|gc_pause| RunCounters {
            gc_pause_total: SimDuration::from_nanos(gc_pause),
            gc_collections: self.gc_collections.unwrap_or(0),
            jit_compile_time: SimDuration::from_nanos(self.jit_ns.unwrap_or(0)),
            jit_compiles: self.jit_compiles.unwrap_or(0),
        });
        Ok(Measurement {
            time: SimDuration::from_nanos(self.time_ns),
            pause_p99: self.pause_p99_ns.map(SimDuration::from_nanos),
            counters,
            error,
        })
    }

    fn fill(&self, o: JsonObject) -> JsonObject {
        let mut o = o.u64("time_ns", self.time_ns);
        if let Some(p) = self.pause_p99_ns {
            o = o.u64("pause_p99_ns", p);
        }
        if let Some(gc) = self.gc_pause_ns {
            o = o
                .u64("gc_pause_ns", gc)
                .u64("gc_collections", self.gc_collections.unwrap_or(0))
                .u64("jit_ns", self.jit_ns.unwrap_or(0))
                .u64("jit_compiles", self.jit_compiles.unwrap_or(0));
        }
        if let Some(kind) = &self.error_kind {
            o = o
                .str("error_kind", kind)
                .str("error", self.error.as_deref().unwrap_or(""));
        }
        o
    }

    fn from_json(v: &JsonValue) -> Result<TrialOutcome, WireError> {
        let u = |key: &str| v.get(key).and_then(JsonValue::as_u64);
        let s = |key: &str| v.get(key).and_then(JsonValue::as_str).map(str::to_string);
        Ok(TrialOutcome {
            time_ns: u("time_ns")
                .ok_or_else(|| WireError::new("bad-frame", "outcome requires 'time_ns'"))?,
            pause_p99_ns: u("pause_p99_ns"),
            gc_pause_ns: u("gc_pause_ns"),
            gc_collections: u("gc_collections"),
            jit_ns: u("jit_ns"),
            jit_compiles: u("jit_compiles"),
            error_kind: s("error_kind"),
            error: s("error"),
        })
    }
}

/// A structured protocol error: a stable code plus a human message.
///
/// The stable codes: `bad-frame`, `bad-version`, `unknown-op`,
/// `invalid-spec`, `overloaded` (admission reject, carries a
/// [`WireError::retry_after_ms`] backoff hint), `frame-too-large`
/// (frame-size cap exceeded), `io-error`, `no-result`,
/// `unknown-session`, `unknown-worker`, `no-session`.
#[derive(Clone, Debug, PartialEq)]
pub struct WireError {
    /// Stable machine-readable error code.
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// Server backoff hint, milliseconds: attached to `overloaded`
    /// rejects so a retrying peer knows how long to stand off. Absent
    /// from every other error (and from all pre-existing frames, whose
    /// bytes are pinned).
    pub retry_after_ms: Option<u64>,
}

impl WireError {
    /// Build an error with the given stable code.
    pub fn new(code: impl Into<String>, message: impl Into<String>) -> WireError {
        WireError {
            code: code.into(),
            message: message.into(),
            retry_after_ms: None,
        }
    }

    /// Attach a `retry_after_ms` backoff hint (for `overloaded`).
    pub fn with_retry_after(mut self, ms: u64) -> WireError {
        self.retry_after_ms = Some(ms);
        self
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for WireError {}

/// Parse one request line into a [`Request`].
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    let v = json::parse(line).map_err(|e| WireError::new("bad-frame", e))?;
    match v.get("v").and_then(JsonValue::as_u64) {
        Some(VERSION) => {}
        Some(other) => {
            return Err(WireError::new(
                "bad-version",
                format!("protocol version {other} not supported (this daemon speaks {VERSION})"),
            ))
        }
        None => return Err(WireError::new("bad-frame", "missing 'v' field")),
    }
    let op = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| WireError::new("bad-frame", "missing 'op' field"))?;
    let field = |key: &str| -> Result<u64, WireError> {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| WireError::new("bad-frame", format!("op {op:?} requires a {key:?}")))
    };
    match op {
        "submit" => {
            let spec =
                SessionSpec::from_json_value(&v).map_err(|e| WireError::new("invalid-spec", e))?;
            Ok(Request::Submit(spec))
        }
        "status" => Ok(Request::Status {
            sid: v.get("sid").and_then(JsonValue::as_u64),
        }),
        "watch" => Ok(Request::Watch { sid: field("sid")? }),
        "result" => Ok(Request::Result { sid: field("sid")? }),
        "cancel" => Ok(Request::Cancel { sid: field("sid")? }),
        "stats" => Ok(Request::Stats {
            sid: v.get("sid").and_then(JsonValue::as_u64),
        }),
        "shutdown" => Ok(Request::Shutdown {
            drain: v
                .get("drain")
                .map(|d| d.as_bool().unwrap_or(true))
                .unwrap_or(true),
        }),
        "register" => Ok(Request::Register {
            executor: v
                .get("executor")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| WireError::new("bad-frame", "register requires an 'executor'"))?
                .to_string(),
            slots: field("slots")?,
            reconnect: match v.get("prev_wid").and_then(JsonValue::as_u64) {
                Some(prev_wid) => Some(Reconnect {
                    prev_wid,
                    attempts: v.get("attempts").and_then(JsonValue::as_u64).unwrap_or(1),
                }),
                None => None,
            },
        }),
        "lease" => Ok(Request::Lease {
            wid: field("wid")?,
            wait_ms: field("wait_ms")?,
        }),
        "complete" => Ok(Request::Complete {
            wid: field("wid")?,
            lease: field("lease")?,
            outcome: TrialOutcome::from_json(&v)?,
        }),
        "fail" => Ok(Request::Fail {
            wid: field("wid")?,
            lease: field("lease")?,
            reason: v
                .get("reason")
                .and_then(JsonValue::as_str)
                .unwrap_or("")
                .to_string(),
        }),
        "heartbeat" => {
            let leases = match v.get("leases").and_then(JsonValue::as_array) {
                Some(items) => items
                    .iter()
                    .map(|i| {
                        i.as_u64().ok_or_else(|| {
                            WireError::new("bad-frame", "heartbeat 'leases' must be integers")
                        })
                    })
                    .collect::<Result<Vec<u64>, WireError>>()?,
                None => Vec::new(),
            };
            Ok(Request::Heartbeat {
                wid: field("wid")?,
                leases,
            })
        }
        "deregister" => Ok(Request::Deregister { wid: field("wid")? }),
        other => Err(WireError::new(
            "unknown-op",
            format!("unknown op {other:?}"),
        )),
    }
}

/// Render a request (the client side of [`parse_request`]).
pub fn render_request(request: &Request) -> String {
    let base = JsonObject::new().u64("v", VERSION);
    match request {
        Request::Submit(spec) => spec.fill(base.str("op", "submit")).finish(),
        Request::Status { sid } => {
            let o = base.str("op", "status");
            match sid {
                Some(s) => o.u64("sid", *s).finish(),
                None => o.finish(),
            }
        }
        Request::Watch { sid } => base.str("op", "watch").u64("sid", *sid).finish(),
        Request::Result { sid } => base.str("op", "result").u64("sid", *sid).finish(),
        Request::Cancel { sid } => base.str("op", "cancel").u64("sid", *sid).finish(),
        Request::Stats { sid } => {
            let o = base.str("op", "stats");
            match sid {
                Some(s) => o.u64("sid", *s).finish(),
                None => o.finish(),
            }
        }
        Request::Shutdown { drain } => base.str("op", "shutdown").bool("drain", *drain).finish(),
        Request::Register {
            executor,
            slots,
            reconnect,
        } => {
            let o = base
                .str("op", "register")
                .str("executor", executor)
                .u64("slots", *slots);
            match reconnect {
                Some(rc) => o
                    .u64("prev_wid", rc.prev_wid)
                    .u64("attempts", rc.attempts)
                    .finish(),
                None => o.finish(),
            }
        }
        Request::Lease { wid, wait_ms } => base
            .str("op", "lease")
            .u64("wid", *wid)
            .u64("wait_ms", *wait_ms)
            .finish(),
        Request::Complete {
            wid,
            lease,
            outcome,
        } => outcome
            .fill(
                base.str("op", "complete")
                    .u64("wid", *wid)
                    .u64("lease", *lease),
            )
            .finish(),
        Request::Fail { wid, lease, reason } => base
            .str("op", "fail")
            .u64("wid", *wid)
            .u64("lease", *lease)
            .str("reason", reason)
            .finish(),
        Request::Heartbeat { wid, leases } => base
            .str("op", "heartbeat")
            .u64("wid", *wid)
            .u64_array("leases", leases)
            .finish(),
        Request::Deregister { wid } => base.str("op", "deregister").u64("wid", *wid).finish(),
    }
}

/// Every reply the daemon can send (except streamed watch-event lines,
/// which carry raw payload between an opening [`Response::Sid`] ack and
/// a closing [`Response::WatchDone`]).
///
/// `Sessions`/`Stats` hold their payloads as raw pre-rendered JSON so
/// the round trip through [`render_response`]/[`parse_response`] is
/// byte-exact — status rows and metric objects pass through untouched.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// `submit`/`cancel` ack, and the frame opening a watch stream.
    Sid {
        /// The session acted on.
        sid: u64,
    },
    /// `status`: raw array of per-session row objects.
    Sessions {
        /// Pre-rendered JSON array, passed through byte-exact.
        sessions: String,
    },
    /// `result`: the raw record JSON follows on the next line.
    RecordFollows,
    /// `stats`: raw per-session rows plus daemon-wide metrics.
    Stats {
        /// Pre-rendered JSON array of per-session metric rows.
        sessions: String,
        /// Pre-rendered JSON object of daemon-wide metrics.
        server: String,
    },
    /// `shutdown` ack.
    ShuttingDown {
        /// Whether in-flight sessions are being checkpointed first.
        drain: bool,
    },
    /// Terminal frame of a watch stream.
    WatchDone,
    /// `register`/`deregister` ack.
    WorkerAck {
        /// The worker id (issued on register, confirmed on deregister).
        wid: u64,
    },
    /// `lease` grant.
    Leased(LeaseOffer),
    /// `lease` without work; with `draining`, the worker should exit.
    Idle {
        /// The daemon is shutting down — finish up and disconnect.
        draining: bool,
    },
    /// `complete`/`fail` ack (also sent for stale leases, which the
    /// daemon discards silently — the slot was already reissued).
    LeaseAck {
        /// The lease acknowledged.
        lease: u64,
    },
    /// `heartbeat` ack.
    HeartbeatAck {
        /// How many of the reported leases had their deadline extended.
        leases: u64,
    },
}

/// Render a reply frame (the single server-side encode path).
pub fn render_response(response: &Response) -> String {
    match response {
        Response::Sid { sid } => ok_frame().u64("sid", *sid).finish(),
        Response::Sessions { sessions } => ok_frame().raw("sessions", sessions).finish(),
        Response::RecordFollows => ok_frame().str("follows", "record").finish(),
        Response::Stats { sessions, server } => ok_frame()
            .raw("sessions", sessions)
            .raw("server", server)
            .finish(),
        Response::ShuttingDown { drain } => ok_frame().bool("draining", *drain).finish(),
        Response::WatchDone => ok_frame().bool("done", true).finish(),
        Response::WorkerAck { wid } => ok_frame().u64("wid", *wid).finish(),
        Response::Leased(offer) => ok_frame()
            .u64("lease", offer.lease)
            .u64("sid", offer.sid)
            .u64("slot", offer.slot)
            .u64("seed", offer.seed)
            .u64("fingerprint", offer.fingerprint)
            .str("executor", &offer.executor)
            .u64("deadline_ms", offer.deadline_ms)
            .str_array("config", &offer.config)
            .finish(),
        Response::Idle { draining } => {
            let o = ok_frame().bool("idle", true);
            if *draining {
                o.bool("draining", true).finish()
            } else {
                o.finish()
            }
        }
        Response::LeaseAck { lease } => ok_frame().u64("lease", *lease).finish(),
        Response::HeartbeatAck { leases } => ok_frame().u64("leases", *leases).finish(),
    }
}

/// Parse a reply line into a typed [`Response`] (the single client- and
/// worker-side decode path). Error frames surface the server's stable
/// code verbatim.
pub fn parse_response(line: &str) -> Result<Response, WireError> {
    let v = parse_reply(line)?;
    let u = |key: &str| v.get(key).and_then(JsonValue::as_u64);
    if let Some(lease) = u("lease") {
        if u("sid").is_some() {
            let req = |key: &str| {
                u(key).ok_or_else(|| {
                    WireError::new("bad-frame", format!("lease offer missing {key:?}"))
                })
            };
            let config = match v.get("config").and_then(JsonValue::as_array) {
                Some(items) => items
                    .iter()
                    .map(|i| {
                        i.as_str().map(str::to_string).ok_or_else(|| {
                            WireError::new("bad-frame", "lease 'config' must be strings")
                        })
                    })
                    .collect::<Result<Vec<String>, WireError>>()?,
                None => Vec::new(),
            };
            return Ok(Response::Leased(LeaseOffer {
                lease,
                sid: req("sid")?,
                slot: req("slot")?,
                seed: req("seed")?,
                fingerprint: req("fingerprint")?,
                executor: v
                    .get("executor")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| WireError::new("bad-frame", "lease offer missing 'executor'"))?
                    .to_string(),
                deadline_ms: req("deadline_ms")?,
                config,
            }));
        }
        return Ok(Response::LeaseAck { lease });
    }
    if let Some(leases) = u("leases") {
        return Ok(Response::HeartbeatAck { leases });
    }
    if let Some(wid) = u("wid") {
        return Ok(Response::WorkerAck { wid });
    }
    if v.get("idle").and_then(JsonValue::as_bool) == Some(true) {
        return Ok(Response::Idle {
            draining: v.get("draining").and_then(JsonValue::as_bool) == Some(true),
        });
    }
    if v.get("follows").and_then(JsonValue::as_str) == Some("record") {
        return Ok(Response::RecordFollows);
    }
    if v.get("done").and_then(JsonValue::as_bool) == Some(true) {
        return Ok(Response::WatchDone);
    }
    if v.get("server").is_some() {
        let slice = |key: &str| {
            raw_field_slice(line, key)
                .map(str::to_string)
                .ok_or_else(|| WireError::new("bad-frame", format!("stats reply missing {key:?}")))
        };
        return Ok(Response::Stats {
            sessions: slice("sessions")?,
            server: slice("server")?,
        });
    }
    if v.get("sessions").is_some() {
        let sessions = raw_field_slice(line, "sessions")
            .map(str::to_string)
            .ok_or_else(|| WireError::new("bad-frame", "status reply missing 'sessions'"))?;
        return Ok(Response::Sessions { sessions });
    }
    if let Some(drain) = v.get("draining").and_then(JsonValue::as_bool) {
        return Ok(Response::ShuttingDown { drain });
    }
    if let Some(sid) = u("sid") {
        return Ok(Response::Sid { sid });
    }
    Err(WireError::new("bad-frame", "unrecognised reply shape"))
}

/// The raw text of a top-level field's value inside one JSON object
/// line, string- and nesting-aware. This is how `Sessions`/`Stats`
/// payloads survive [`parse_response`] byte-exact.
fn raw_field_slice<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let bytes = line.as_bytes();
    let needle = format!("\"{key}\":");
    let mut depth = 0usize;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'"' => {
                if depth == 1 && line[i..].starts_with(needle.as_str()) {
                    let start = i + needle.len();
                    return scan_value(line, start).map(|end| &line[start..end]);
                }
                i = scan_value(line, i)?;
            }
            b'{' | b'[' => {
                depth += 1;
                i += 1;
            }
            b'}' | b']' => {
                depth = depth.saturating_sub(1);
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// End index (exclusive) of the JSON value starting at `start`.
fn scan_value(s: &str, start: usize) -> Option<usize> {
    let bytes = s.as_bytes();
    let mut i = start;
    match *bytes.get(i)? {
        b'"' => {
            i += 1;
            let mut escaped = false;
            while i < bytes.len() {
                match bytes[i] {
                    _ if escaped => escaped = false,
                    b'\\' => escaped = true,
                    b'"' => return Some(i + 1),
                    _ => {}
                }
                i += 1;
            }
            None
        }
        b'{' | b'[' => {
            let mut depth = 0usize;
            let mut in_string = false;
            let mut escaped = false;
            while i < bytes.len() {
                let b = bytes[i];
                if in_string {
                    match b {
                        _ if escaped => escaped = false,
                        b'\\' => escaped = true,
                        b'"' => in_string = false,
                        _ => {}
                    }
                } else {
                    match b {
                        b'"' => in_string = true,
                        b'{' | b'[' => depth += 1,
                        b'}' | b']' => {
                            depth -= 1;
                            if depth == 0 {
                                return Some(i + 1);
                            }
                        }
                        _ => {}
                    }
                }
                i += 1;
            }
            None
        }
        _ => {
            while i < bytes.len() && !matches!(bytes[i], b',' | b'}' | b']') {
                i += 1;
            }
            Some(i)
        }
    }
}

/// Start an ok reply frame; [`render_response`] adds the payload.
pub fn ok_frame() -> JsonObject {
    JsonObject::new().u64("v", VERSION).bool("ok", true)
}

/// Render a complete error reply frame.
pub fn error_frame(error: &WireError) -> String {
    let o = JsonObject::new()
        .u64("v", VERSION)
        .bool("ok", false)
        .str("code", &error.code)
        .str("error", &error.message);
    match error.retry_after_ms {
        Some(ms) => o.u64("retry_after_ms", ms).finish(),
        None => o.finish(),
    }
}

/// Render a reply: the response on success, an error frame otherwise.
pub fn render_reply(reply: &Result<Response, WireError>) -> String {
    match reply {
        Ok(response) => render_response(response),
        Err(error) => error_frame(error),
    }
}

/// Render one watch-stream event line wrapping the raw event JSON.
pub fn watch_event_line(event_json: &str) -> String {
    format!("{WATCH_EVENT_PREFIX}{event_json}}}")
}

/// Extract the raw event JSON from a watch-stream line, if it is one.
pub fn unwrap_watch_event(line: &str) -> Option<&str> {
    line.strip_prefix(WATCH_EVENT_PREFIX)?.strip_suffix('}')
}

/// The terminal frame of a watch stream.
pub fn watch_done_frame() -> String {
    render_response(&Response::WatchDone)
}

/// Parse a reply line; `Ok` gives the parsed frame, `Err` a decoded
/// server error carrying the server's stable code verbatim (or a
/// `bad-frame` error for unparseable lines).
pub fn parse_reply(line: &str) -> Result<JsonValue, WireError> {
    let v = json::parse(line).map_err(|e| WireError::new("bad-frame", e))?;
    if v.get("ok").and_then(JsonValue::as_bool) == Some(false) {
        let message = v
            .get("error")
            .and_then(JsonValue::as_str)
            .unwrap_or("unknown error")
            .to_string();
        let code = v
            .get("code")
            .and_then(JsonValue::as_str)
            .unwrap_or("server-error")
            .to_string();
        let mut err = WireError::new(code, message);
        if let Some(ms) = v.get("retry_after_ms").and_then(JsonValue::as_u64) {
            err = err.with_retry_after(ms);
        }
        return Err(err);
    }
    Ok(v)
}

/// Tag a rendered request frame with retry metadata: `attempt` (≥ 1)
/// and the backoff delay the peer just slept. First attempts are never
/// tagged, so pre-retry request frames keep their exact bytes; the
/// daemon reads the tag with [`retry_tag`] to count client retries.
pub fn tag_retry(frame: &str, attempt: u64, delay_ms: u64) -> String {
    match frame.strip_suffix('}') {
        Some(body) => format!("{body},\"attempt\":{attempt},\"delay_ms\":{delay_ms}}}"),
        None => frame.to_string(),
    }
}

/// Retry metadata from a parsed request frame, if the peer tagged it:
/// `(attempt, delay_ms)`.
pub fn retry_tag(v: &JsonValue) -> Option<(u64, u64)> {
    let attempt = v.get("attempt").and_then(JsonValue::as_u64)?;
    let delay_ms = v.get("delay_ms").and_then(JsonValue::as_u64).unwrap_or(0);
    (attempt >= 1).then_some((attempt, delay_ms))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit(SessionSpec {
                program: "compress".into(),
                budget_mins: 2,
                seed: 7,
                max_evaluations: Some(12),
                screen_ratio: Some(4.0),
                technique: Some("portfolio".into()),
            }),
            Request::Status { sid: None },
            Request::Status { sid: Some(3) },
            Request::Watch { sid: 1 },
            Request::Result { sid: 2 },
            Request::Cancel { sid: 9 },
            Request::Stats { sid: None },
            Request::Stats { sid: Some(5) },
            Request::Shutdown { drain: false },
            Request::Register {
                executor: "sim".into(),
                slots: 4,
                reconnect: None,
            },
            Request::Register {
                executor: "sim".into(),
                slots: 2,
                reconnect: Some(Reconnect {
                    prev_wid: 3,
                    attempts: 2,
                }),
            },
            Request::Lease {
                wid: 7,
                wait_ms: 500,
            },
            Request::Complete {
                wid: 7,
                lease: 41,
                outcome: TrialOutcome {
                    time_ns: 123_456_789,
                    pause_p99_ns: Some(42_000),
                    gc_pause_ns: Some(9_000_000),
                    gc_collections: Some(17),
                    jit_ns: Some(1_000_000),
                    jit_compiles: Some(230),
                    error_kind: None,
                    error: None,
                },
            },
            Request::Complete {
                wid: 7,
                lease: 42,
                outcome: TrialOutcome {
                    time_ns: 5_000,
                    error_kind: Some("oom".into()),
                    error: Some("heap exhausted at 93% live".into()),
                    ..TrialOutcome::default()
                },
            },
            Request::Fail {
                wid: 7,
                lease: 43,
                reason: "unknown workload".into(),
            },
            Request::Heartbeat {
                wid: 7,
                leases: vec![41, 42],
            },
            Request::Deregister { wid: 7 },
        ];
        for req in reqs {
            let line = render_request(&req);
            let parsed = parse_request(&line).expect("rendered requests must parse");
            assert_eq!(parsed, req, "line: {line}");
        }
    }

    #[test]
    fn first_registration_frames_keep_their_exact_bytes() {
        // The reconnect fields must be invisible until a worker
        // actually reconnects: first registrations are byte-pinned.
        assert_eq!(
            render_request(&Request::Register {
                executor: "sim".into(),
                slots: 4,
                reconnect: None,
            }),
            "{\"v\":1,\"op\":\"register\",\"executor\":\"sim\",\"slots\":4}"
        );
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Sid { sid: 4 },
            Response::Sessions {
                sessions: "[{\"sid\":1,\"state\":\"running\"}]".into(),
            },
            Response::RecordFollows,
            Response::Stats {
                sessions: "[{\"sid\":1,\"counters\":{\"trials_measured\":12}}]".into(),
                server: "{\"frame_wall\":{\"total\":3}}".into(),
            },
            Response::ShuttingDown { drain: true },
            Response::ShuttingDown { drain: false },
            Response::WatchDone,
            Response::WorkerAck { wid: 2 },
            Response::Leased(LeaseOffer {
                lease: 41,
                sid: 1,
                slot: 3,
                seed: 0xDEAD_BEEF,
                fingerprint: 0xFEED_F00D,
                executor: "sim:compress".into(),
                deadline_ms: 10_000,
                config: vec!["-XX:+UseParallelGC".into(), "-XX:MaxHeapSize=512m".into()],
            }),
            Response::Idle { draining: false },
            Response::Idle { draining: true },
            Response::LeaseAck { lease: 41 },
            Response::HeartbeatAck { leases: 2 },
        ];
        for response in responses {
            let line = render_response(&response);
            let parsed = parse_response(&line).expect("rendered responses must parse");
            assert_eq!(parsed, response, "line: {line}");
        }
    }

    #[test]
    fn legacy_frames_are_byte_identical() {
        // The typed encode path must keep every pre-existing frame's
        // exact bytes: CI scripts byte-compare them.
        assert_eq!(
            render_response(&Response::Sid { sid: 4 }),
            "{\"v\":1,\"ok\":true,\"sid\":4}"
        );
        assert_eq!(
            render_response(&Response::RecordFollows),
            "{\"v\":1,\"ok\":true,\"follows\":\"record\"}"
        );
        assert_eq!(
            render_response(&Response::ShuttingDown { drain: true }),
            "{\"v\":1,\"ok\":true,\"draining\":true}"
        );
        assert_eq!(watch_done_frame(), "{\"v\":1,\"ok\":true,\"done\":true}");
        assert_eq!(
            render_response(&Response::Sessions {
                sessions: "[{\"sid\":1}]".into()
            }),
            "{\"v\":1,\"ok\":true,\"sessions\":[{\"sid\":1}]}"
        );
    }

    #[test]
    fn raw_payloads_survive_the_round_trip_byte_exact() {
        // Hostile row content: nested braces, escaped quotes, and text
        // that looks like the field delimiters themselves.
        let sessions = "[{\"sid\":1,\"error\":\"bad \\\"x\\\", \\\"server\\\": {}\"}]";
        let server = "{\"frame_wall\":{\"buckets\":[1,2,3]}}";
        let response = Response::Stats {
            sessions: sessions.into(),
            server: server.into(),
        };
        match parse_response(&render_response(&response)).expect("stats reply must parse") {
            Response::Stats {
                sessions: s,
                server: v,
            } => {
                assert_eq!(s, sessions);
                assert_eq!(v, server);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn outcomes_reconstruct_measurements_losslessly() {
        let m = Measurement {
            time: SimDuration::from_nanos(987_654_321),
            pause_p99: Some(SimDuration::from_nanos(1_234)),
            counters: Some(RunCounters {
                gc_pause_total: SimDuration::from_nanos(55),
                gc_collections: 3,
                jit_compile_time: SimDuration::from_nanos(77),
                jit_compiles: 9,
            }),
            error: Some(TrialError::Timeout("hung past the watchdog".into())),
        };
        let outcome = TrialOutcome::from_measurement(&m);
        let back = outcome
            .to_measurement()
            .expect("round-tripped outcome must reconstruct");
        assert_eq!(back.time, m.time);
        assert_eq!(back.pause_p99, m.pause_p99);
        assert_eq!(back.counters, m.counters);
        assert_eq!(back.error, m.error);
        assert!(TrialOutcome {
            time_ns: 1,
            error_kind: Some("martian".into()),
            ..TrialOutcome::default()
        }
        .to_measurement()
        .is_err());
    }

    #[test]
    fn structured_errors_have_stable_codes() {
        assert_eq!(parse_request("not json").unwrap_err().code, "bad-frame");
        assert_eq!(
            parse_request("{\"op\":\"status\"}").unwrap_err().code,
            "bad-frame"
        );
        assert_eq!(
            parse_request("{\"v\":2,\"op\":\"status\"}")
                .unwrap_err()
                .code,
            "bad-version"
        );
        assert_eq!(
            parse_request("{\"v\":1,\"op\":\"fly\"}").unwrap_err().code,
            "unknown-op"
        );
        assert_eq!(
            parse_request("{\"v\":1,\"op\":\"watch\"}")
                .unwrap_err()
                .code,
            "bad-frame"
        );
        assert_eq!(
            parse_request("{\"v\":1,\"op\":\"submit\"}")
                .unwrap_err()
                .code,
            "invalid-spec"
        );
        assert_eq!(
            parse_request("{\"v\":1,\"op\":\"lease\",\"wid\":1}")
                .unwrap_err()
                .code,
            "bad-frame"
        );
    }

    #[test]
    fn error_frames_surface_the_servers_code_verbatim() {
        let line = error_frame(&WireError::new("capacity", "daemon full"));
        let err = parse_reply(&line).unwrap_err();
        assert_eq!(err.code, "capacity");
        assert_eq!(err.message, "daemon full");
        let err = parse_response(&line).unwrap_err();
        assert_eq!(err.code, "capacity");
        assert_eq!(err.message, "daemon full");
        let ok = parse_reply(&ok_frame().u64("sid", 4).finish()).expect("ok frame must parse");
        assert_eq!(ok.get("sid").and_then(JsonValue::as_u64), Some(4));
    }

    #[test]
    fn overloaded_errors_round_trip_their_retry_hint() {
        let err = WireError::new("overloaded", "admission queue full").with_retry_after(250);
        let line = error_frame(&err);
        assert!(line.contains("\"retry_after_ms\":250"), "{line}");
        let back = parse_reply(&line).expect_err("error frame must decode as an error");
        assert_eq!(back.code, "overloaded");
        assert_eq!(back.retry_after_ms, Some(250));
        // Errors without a hint keep their legacy bytes exactly.
        assert_eq!(
            error_frame(&WireError::new("no-result", "not yet")),
            "{\"v\":1,\"ok\":false,\"code\":\"no-result\",\"error\":\"not yet\"}"
        );
    }

    #[test]
    fn retry_tags_splice_into_frames_and_parse_back() {
        let frame = render_request(&Request::Status { sid: None });
        assert_eq!(
            retry_tag(&json::parse(&frame).expect("frame parses")),
            None,
            "untagged frames carry no retry metadata"
        );
        let tagged = tag_retry(&frame, 2, 310);
        let v = json::parse(&tagged).expect("tagged frame still parses");
        assert_eq!(retry_tag(&v), Some((2, 310)));
        // The tag must not confuse the request decoder.
        assert_eq!(
            parse_request(&tagged).expect("tagged request parses"),
            Request::Status { sid: None }
        );
    }

    #[test]
    fn watch_event_lines_unwrap_to_the_exact_payload() {
        let event = "{\"type\":\"RoundProposed\",\"round\":3}";
        let line = watch_event_line(event);
        assert_eq!(unwrap_watch_event(&line), Some(event));
        assert_eq!(unwrap_watch_event(&watch_done_frame()), None);
    }
}
