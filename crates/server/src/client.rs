//! Blocking TCP client for the daemon's JSONL protocol.
//!
//! One [`Client`] wraps one connection; each helper sends a request
//! frame and decodes the reply through the shared typed path
//! ([`wire::parse_response`]). Server-side errors surface as
//! [`WireError`]s carrying the server's stable code verbatim — a
//! `capacity` rejection arrives as `code == "capacity"`, not folded
//! into the message text.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

use jtune_util::json::JsonValue;

use crate::session::SessionSpec;
use crate::wire::{self, Request, Response, WireError};

/// A blocking connection to a tuning daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to a daemon at `addr` (e.g. `127.0.0.1:7171`).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn read_line(&mut self) -> Result<String, WireError> {
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| WireError::new("io-error", format!("read failed: {e}")))?;
        if n == 0 {
            return Err(WireError::new(
                "io-error",
                "server closed the connection".to_string(),
            ));
        }
        Ok(line.trim_end().to_string())
    }

    fn write_request(&mut self, request: &Request) -> Result<(), WireError> {
        writeln!(self.writer, "{}", wire::render_request(request))
            .map_err(|e| WireError::new("io-error", format!("write failed: {e}")))
    }

    /// Send a request and decode the typed reply; server errors come
    /// back as `Err` with the server's stable code.
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        self.write_request(request)?;
        wire::parse_response(&self.read_line()?)
    }

    /// Send a request and return the raw ok-frame line verbatim (for
    /// byte-exact printing of `status`/`stats` payloads); server errors
    /// come back as `Err`.
    pub fn round_trip_raw(&mut self, request: &Request) -> Result<String, WireError> {
        self.write_request(request)?;
        let line = self.read_line()?;
        wire::parse_response(&line)?;
        Ok(line)
    }

    /// Send a request and return the parsed ok frame; server errors
    /// come back as `Err`.
    pub fn round_trip(&mut self, request: &Request) -> Result<JsonValue, WireError> {
        self.write_request(request)?;
        wire::parse_reply(&self.read_line()?)
    }

    /// Submit a session; returns its ID.
    pub fn submit(&mut self, spec: SessionSpec) -> Result<u64, WireError> {
        match self.request(&Request::Submit(spec))? {
            Response::Sid { sid } => Ok(sid),
            other => Err(unexpected("submit", &other)),
        }
    }

    /// Fetch status (all sessions, or one); returns the ok frame, whose
    /// `sessions` field is an array of per-session objects.
    pub fn status(&mut self, sid: Option<u64>) -> Result<JsonValue, WireError> {
        self.round_trip(&Request::Status { sid })
    }

    /// Fetch a completed session's record: the raw JSON line, byte-equal
    /// to one-shot `jtune tune ... --json` output for the same spec.
    pub fn result(&mut self, sid: u64) -> Result<String, WireError> {
        match self.request(&Request::Result { sid })? {
            Response::RecordFollows => self.read_line(),
            other => Err(unexpected("result", &other)),
        }
    }

    /// Cancel a session.
    pub fn cancel(&mut self, sid: u64) -> Result<(), WireError> {
        match self.request(&Request::Cancel { sid })? {
            Response::Sid { .. } => Ok(()),
            other => Err(unexpected("cancel", &other)),
        }
    }

    /// Fetch aggregated metrics (all sessions, or one): the ok frame's
    /// `sessions` array carries one row per session with its counters
    /// and wall histograms, and `server` carries the daemon's own
    /// frame-handling histogram.
    pub fn stats(&mut self, sid: Option<u64>) -> Result<JsonValue, WireError> {
        self.round_trip(&Request::Stats { sid })
    }

    /// Stop the daemon; `drain` checkpoints in-flight sessions first.
    pub fn shutdown(&mut self, drain: bool) -> Result<(), WireError> {
        match self.request(&Request::Shutdown { drain })? {
            Response::ShuttingDown { .. } => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }

    /// Watch a session's live trace: `on_event` receives each raw event
    /// JSON line until the session ends (the done frame). Returns the
    /// number of events streamed.
    pub fn watch(&mut self, sid: u64, mut on_event: impl FnMut(&str)) -> Result<u64, WireError> {
        match self.request(&Request::Watch { sid })? {
            Response::Sid { .. } => {}
            other => return Err(unexpected("watch", &other)),
        }
        let mut count = 0u64;
        loop {
            let line = self.read_line()?;
            match wire::unwrap_watch_event(&line) {
                Some(event) => {
                    on_event(event);
                    count += 1;
                }
                None => {
                    // Anything that is not an event line must be the
                    // done frame (or a server error).
                    wire::parse_response(&line)?;
                    return Ok(count);
                }
            }
        }
    }
}

fn unexpected(op: &str, response: &Response) -> WireError {
    WireError::new("bad-frame", format!("unexpected {op} reply: {response:?}"))
}
