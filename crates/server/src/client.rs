//! Blocking TCP client for the daemon's JSONL protocol.
//!
//! One [`Client`] wraps one connection; each helper sends a request
//! frame and decodes the reply through the shared typed path
//! ([`wire::parse_response`]). Server-side errors surface as
//! [`WireError`]s carrying the server's stable code verbatim — an
//! `overloaded` rejection arrives as `code == "overloaded"` with its
//! `retry_after_ms` hint intact, not folded into the message text.
//!
//! Reads are bounded by [`net::PAYLOAD_MAX_FRAME`] — generous, because
//! reply lines legitimately scale with session size (a long session's
//! record is one multi-megabyte JSON line), but still finite so a
//! misbehaving (or impersonated) daemon cannot make a client buffer an
//! endless unterminated line. The strict 1 MiB request cap is the
//! daemon's; see [`net::DEFAULT_MAX_FRAME`].
//! [`with_retries`] layers jittered exponential backoff on top:
//! `overloaded` rejections and connection failures are always retried,
//! mid-flight I/O errors only when the caller marks the operation
//! idempotent (a `submit` cut off after the frame was sent may have
//! been admitted — blind resubmission would duplicate the session).

use std::io::BufReader;
use std::net::{TcpStream, ToSocketAddrs};

use jtune_harness::BackoffPolicy;
use jtune_util::json::JsonValue;

use crate::net::{self, ChaosWriter, FrameReadError, NetFaultPlan};
use crate::session::SessionSpec;
use crate::wire::{self, Request, Response, WireError};

/// A blocking connection to a tuning daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: ChaosWriter<TcpStream>,
    /// Set by [`with_retries`] on a retry attempt: spliced into the next
    /// outbound frame so the daemon can count retry pressure.
    retry_tag: Option<(u64, u64)>,
}

impl Client {
    /// Connect to a daemon at `addr` (e.g. `127.0.0.1:7171`).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        Client::connect_chaotic(addr, NetFaultPlan::inactive(), 0)
    }

    /// Connect with a seeded network-fault plan applied to this
    /// connection's outbound frames (chaos testing); `conn` indexes the
    /// connection into the plan's schedule. An inactive plan makes this
    /// identical to [`Client::connect`].
    pub fn connect_chaotic(
        addr: impl ToSocketAddrs,
        plan: NetFaultPlan,
        conn: u64,
    ) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: ChaosWriter::new(stream, plan, conn),
            retry_tag: None,
        })
    }

    /// Apply read/write deadlines to this connection; a daemon that
    /// stalls mid-reply then surfaces as an `io-error` instead of
    /// hanging the caller forever.
    pub fn set_io_timeout(&mut self, timeout: std::time::Duration) -> std::io::Result<()> {
        let stream = self.writer.get_mut();
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))
    }

    fn read_line(&mut self) -> Result<String, WireError> {
        match net::read_frame(&mut self.reader, net::PAYLOAD_MAX_FRAME) {
            Ok(Some(line)) => Ok(line),
            Ok(None) => Err(WireError::new(
                "io-error",
                "server closed the connection".to_string(),
            )),
            Err(FrameReadError::Io(e)) => {
                Err(WireError::new("io-error", format!("read failed: {e}")))
            }
            Err(e) => Err(e.to_wire_error()),
        }
    }

    fn write_request(&mut self, request: &Request) -> Result<(), WireError> {
        let mut frame = wire::render_request(request);
        if let Some((attempt, delay_ms)) = self.retry_tag.take() {
            frame = wire::tag_retry(&frame, attempt, delay_ms);
        }
        self.writer
            .write_frame(&frame)
            .map_err(|e| WireError::new("io-error", format!("write failed: {e}")))
    }

    /// Send a request and decode the typed reply; server errors come
    /// back as `Err` with the server's stable code.
    pub fn request(&mut self, request: &Request) -> Result<Response, WireError> {
        self.write_request(request)?;
        wire::parse_response(&self.read_line()?)
    }

    /// Send a request and return the raw ok-frame line verbatim (for
    /// byte-exact printing of `status`/`stats` payloads); server errors
    /// come back as `Err`.
    pub fn round_trip_raw(&mut self, request: &Request) -> Result<String, WireError> {
        self.write_request(request)?;
        let line = self.read_line()?;
        wire::parse_response(&line)?;
        Ok(line)
    }

    /// Send a request and return the parsed ok frame; server errors
    /// come back as `Err`.
    pub fn round_trip(&mut self, request: &Request) -> Result<JsonValue, WireError> {
        self.write_request(request)?;
        wire::parse_reply(&self.read_line()?)
    }

    /// Submit a session; returns its ID.
    pub fn submit(&mut self, spec: SessionSpec) -> Result<u64, WireError> {
        match self.request(&Request::Submit(spec))? {
            Response::Sid { sid } => Ok(sid),
            other => Err(unexpected("submit", &other)),
        }
    }

    /// Fetch status (all sessions, or one); returns the ok frame, whose
    /// `sessions` field is an array of per-session objects.
    pub fn status(&mut self, sid: Option<u64>) -> Result<JsonValue, WireError> {
        self.round_trip(&Request::Status { sid })
    }

    /// Fetch a completed session's record: the raw JSON line, byte-equal
    /// to one-shot `jtune tune ... --json` output for the same spec.
    pub fn result(&mut self, sid: u64) -> Result<String, WireError> {
        match self.request(&Request::Result { sid })? {
            Response::RecordFollows => self.read_line(),
            other => Err(unexpected("result", &other)),
        }
    }

    /// Cancel a session.
    pub fn cancel(&mut self, sid: u64) -> Result<(), WireError> {
        match self.request(&Request::Cancel { sid })? {
            Response::Sid { .. } => Ok(()),
            other => Err(unexpected("cancel", &other)),
        }
    }

    /// Fetch aggregated metrics (all sessions, or one): the ok frame's
    /// `sessions` array carries one row per session with its counters
    /// and wall histograms, and `server` carries the daemon's own
    /// frame-handling histogram.
    pub fn stats(&mut self, sid: Option<u64>) -> Result<JsonValue, WireError> {
        self.round_trip(&Request::Stats { sid })
    }

    /// Stop the daemon; `drain` checkpoints in-flight sessions first.
    pub fn shutdown(&mut self, drain: bool) -> Result<(), WireError> {
        match self.request(&Request::Shutdown { drain })? {
            Response::ShuttingDown { .. } => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }

    /// Watch a session's live trace: `on_event` receives each raw event
    /// JSON line until the session ends (the done frame). Returns the
    /// number of events streamed.
    pub fn watch(&mut self, sid: u64, mut on_event: impl FnMut(&str)) -> Result<u64, WireError> {
        match self.request(&Request::Watch { sid })? {
            Response::Sid { .. } => {}
            other => return Err(unexpected("watch", &other)),
        }
        let mut count = 0u64;
        loop {
            let line = self.read_line()?;
            match wire::unwrap_watch_event(&line) {
                Some(event) => {
                    on_event(event);
                    count += 1;
                }
                None => {
                    // Anything that is not an event line must be the
                    // done frame (or a server error).
                    wire::parse_response(&line)?;
                    return Ok(count);
                }
            }
        }
    }
}

/// Is this failure worth a fresh connection and another try?
///
/// `overloaded` always is — the daemon explicitly asked us to come back,
/// and its `retry_after_ms` hint rides along in the error. A connection
/// failure always is: nothing was sent, so retrying cannot duplicate
/// anything. A mid-flight `io-error` is retried only for idempotent
/// operations — a `submit` whose connection died after the frame left
/// may already be running server-side.
fn retryable(error: &WireError, idempotent: bool) -> bool {
    match error.code.as_str() {
        "overloaded" => true,
        "connect-error" => true,
        "io-error" => idempotent,
        _ => false,
    }
}

/// Run `op` against a fresh connection, retrying per `policy` on
/// retryable failures (see [`retryable`]). Each retry waits the
/// policy's jittered exponential backoff, floored by the server's
/// `retry_after_ms` hint when one came back; retried requests carry a
/// retry tag so the daemon's `clients_retried` counter sees them. A
/// progress note per retry goes to stderr (stdout stays parseable).
pub fn with_retries<T>(
    addr: &str,
    policy: &BackoffPolicy,
    idempotent: bool,
    mut op: impl FnMut(&mut Client) -> Result<T, WireError>,
) -> Result<T, WireError> {
    let mut attempt: u32 = 0;
    let mut last_delay: u64 = 0;
    loop {
        let outcome = match Client::connect(addr) {
            Ok(mut client) => {
                if attempt > 0 {
                    // Tag the first frame of a retry attempt with the
                    // backoff we just served, for daemon-side counters.
                    client.retry_tag = Some((attempt as u64, last_delay));
                }
                op(&mut client)
            }
            Err(e) => Err(WireError::new(
                "connect-error",
                format!("cannot connect to {addr}: {e}"),
            )),
        };
        match outcome {
            Ok(value) => return Ok(value),
            Err(e) => {
                if !retryable(&e, idempotent) || !policy.should_retry(attempt) {
                    return Err(e);
                }
                let delay = policy.delay_ms(attempt, e.retry_after_ms);
                last_delay = delay;
                eprintln!(
                    "jtune client: attempt {} failed ({}); retrying in {delay} ms",
                    attempt + 1,
                    e.code
                );
                std::thread::sleep(std::time::Duration::from_millis(delay));
                attempt += 1;
            }
        }
    }
}

fn unexpected(op: &str, response: &Response) -> WireError {
    WireError::new("bad-frame", format!("unexpected {op} reply: {response:?}"))
}
